//! Session-scoped cache of **validated** logical plans and their operator
//! decisions.
//!
//! Planner and operator-mapping LLM calls are the dominant per-query cost of
//! the CAESURA pipeline and — before this module — were re-paid in full even
//! when a structurally identical query had just been answered. The
//! [`PlanCache`] remembers, per session, every `(LogicalPlan,
//! Vec<OperatorDecision>)` pair whose execution completed **without any
//! replan or per-step recovery** (insert-after-success), keyed on:
//!
//! * a **schema fingerprint** of the catalog the planner saw — table names
//!   and column name/type pairs in catalog order
//!   ([`schema_fingerprint`]) — so a hit is only possible against the exact
//!   schema the cached plan was validated on, and
//! * a **query template**: the query text with quoted string literals and
//!   standalone numbers slotted out ([`normalize_query`]). Two queries that
//!   differ only in such literals share one template; on a hit the *probe's*
//!   literals are substituted back into the cached plan's step descriptions
//!   and operator arguments, so `movement = 'Baroque'` becomes
//!   `movement = 'Renaissance'` without a single model call.
//!
//! ## Why a hit cannot be worse than planning live
//!
//! A hit skips the planning *and* per-step mapping phases entirely — zero
//! planner LLM calls on repeat traffic. The safety argument has four legs:
//!
//! * **Only validated plans enter.** A plan is inserted only after its
//!   execution completed with no replan and no step retry, so every cached
//!   entry has run end to end at least once against this exact schema.
//! * **Literal substitution is structural.** Slots are cut from the query
//!   text itself, and a template only matches when the probe's literal
//!   *pattern* matches too (distinct literals stay distinct slots — see
//!   [`normalize_query`]), so re-substitution is a pure find/replace of
//!   values the plan provably threaded through from the original query.
//! * **Threading is verified at insert time.** Before an entry is stored,
//!   every template literal must appear as a slot marker in the normalized
//!   plan + decisions, and no un-slotted occurrence of a literal value may
//!   remain (occurrences that equal a catalog identifier are exempt — a bare
//!   `status` in SQL is a column reference, not the string literal
//!   `'status'`, and must survive re-substitution untouched). A plan that
//!   paraphrases, reformats, or drops a literal is **rejected**
//!   ([`PlanInsertOutcome::Rejected`]) rather than cached, so a later probe
//!   with different literals can never silently replay the original values.
//! * **Failures fall back.** If a cached plan errors at execution, the entry
//!   is evicted ([`PlanCache::invalidate`]) and the session re-plans live —
//!   exactly the pre-cache path, one executor attempt later.
//!
//! ## Bounded memory, sharded locking
//!
//! Same shape as the perception answer cache (`caesura_modal::cache`): at
//! most [`PlanCacheConfig::capacity`] entries over up to
//! [`PlanCache::MAX_SHARDS`] independently locked shards whose capacities sum
//! to the configured total, per-shard LRU eviction, and lifetime
//! hit/miss/insertion/eviction/invalidation counters. The session shares one
//! cache across the scheduler pool's concurrent in-flight queries via `Arc`.
//!
//! ## Knobs
//!
//! [`PlanCacheConfig`] defaults to the `CAESURA_PLAN_CACHE` environment
//! variable: unset uses [`PlanCacheConfig::DEFAULT_CAPACITY`], a number sets
//! the entry capacity, and `0` / `off` / `false` disables plan caching
//! entirely — byte-for-byte preserving the always-plan-live behaviour.
//! Sessions pin the knob via `CaesuraConfig::plan_cache`.

use crate::plan::{LogicalPlan, LogicalStep, OperatorDecision};
use caesura_engine::Catalog;
use caesura_modal::OperatorKind;
use caesura_store::CacheStore;
use std::collections::{BTreeMap, HashMap, HashSet};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Configuration of the session-scoped validated-plan cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlanCacheConfig {
    /// Maximum number of cached plans across all shards. `0` disables the
    /// cache entirely (the byte-for-byte always-plan-live behaviour).
    pub capacity: usize,
}

impl PlanCacheConfig {
    /// Default entry capacity when `CAESURA_PLAN_CACHE` is unset.
    ///
    /// Entries are one plan plus its decisions — a few kilobytes of text —
    /// so the default is sized for the distinct query *shapes* of a serving
    /// workload, not its raw query count (literal-only variants share one
    /// entry).
    pub const DEFAULT_CAPACITY: usize = 1024;

    /// A configuration with an explicit entry capacity (`0` = off).
    pub fn new(capacity: usize) -> Self {
        PlanCacheConfig { capacity }
    }

    /// The disabled configuration: no cache is created and every query plans
    /// live, exactly as before this subsystem existed.
    pub fn off() -> Self {
        PlanCacheConfig { capacity: 0 }
    }

    /// Whether this configuration creates a cache at all.
    pub fn is_enabled(&self) -> bool {
        self.capacity > 0
    }

    /// The configuration described by the environment: `CAESURA_PLAN_CACHE`
    /// — unset uses [`Self::DEFAULT_CAPACITY`], `0` / `off` / `false`
    /// disables the cache, any other number is the entry capacity
    /// (unparseable values fall back to the default, mirroring the other
    /// `CAESURA_*` knobs).
    pub fn from_env() -> Self {
        match std::env::var("CAESURA_PLAN_CACHE") {
            Err(_) => PlanCacheConfig::new(Self::DEFAULT_CAPACITY),
            Ok(raw) => {
                let value = raw.trim().to_lowercase();
                if value == "off" || value == "false" || value == "0" {
                    PlanCacheConfig::off()
                } else {
                    value
                        .parse::<usize>()
                        .ok()
                        .filter(|&c| c > 0)
                        .map(PlanCacheConfig::new)
                        .unwrap_or(PlanCacheConfig::new(Self::DEFAULT_CAPACITY))
                }
            }
        }
    }

    /// Build the cache this configuration describes (`None` when disabled).
    pub fn build(&self) -> Option<PlanCache> {
        if self.is_enabled() {
            Some(PlanCache::with_capacity(self.capacity))
        } else {
            None
        }
    }
}

impl Default for PlanCacheConfig {
    /// The environment-described configuration, read once per process (the
    /// same caching pattern as the perception-cache `CacheConfig`); use
    /// [`PlanCacheConfig::from_env`] directly to re-read the environment.
    fn default() -> Self {
        static DEFAULT: OnceLock<PlanCacheConfig> = OnceLock::new();
        *DEFAULT.get_or_init(PlanCacheConfig::from_env)
    }
}

/// Lifetime counters of one [`PlanCache`].
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct PlanCacheStats {
    /// Probes answered from the cache (planning + mapping phases skipped).
    pub hits: usize,
    /// Probes that fell through to live planning.
    pub misses: usize,
    /// Validated plans stored (one per clean first execution).
    pub insertions: usize,
    /// Entries evicted to respect the capacity bound.
    pub evictions: usize,
    /// Entries removed because their cached plan failed at execution.
    pub invalidations: usize,
    /// Insert attempts refused because the plan did not verifiably thread
    /// every query literal through its text (see
    /// [`PlanInsertOutcome::Rejected`]).
    pub rejections: usize,
    /// Memory-tier misses answered from the attached disk store.
    pub disk_hits: usize,
    /// Disk-tier probes that found nothing (true cold misses).
    pub disk_misses: usize,
    /// Validated plans written through to the attached disk store.
    pub disk_writes: usize,
    /// Disk-tier entries tombstoned because their cached plan failed at
    /// execution.
    pub disk_invalidations: usize,
}

impl PlanCacheStats {
    /// Fraction of probes answered by either tier (memory or disk), in
    /// `[0, 1]`; `0.0` when nothing was probed. A disk hit is also counted
    /// as a memory miss, so the denominator is `hits + misses`.
    pub fn hit_rate(&self) -> f64 {
        let probes = self.hits + self.misses;
        if probes == 0 {
            0.0
        } else {
            (self.hits + self.disk_hits) as f64 / probes as f64
        }
    }
}

/// A query normalized for plan-cache lookup: the text with quoted string
/// literals and standalone numbers replaced by slot markers, plus the
/// extracted literals in slot order.
///
/// Produced by [`normalize_query`]; equal templates (under equal schema
/// fingerprints) select the same cache entry, and the literals are what a hit
/// substitutes back into the cached plan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryTemplate {
    /// The query text with each literal occurrence replaced by its slot
    /// marker.
    pub template: String,
    /// The distinct literals, indexed by slot.
    pub literals: Vec<Literal>,
}

/// One literal extracted from a query by [`normalize_query`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Literal {
    /// The literal's text, without surrounding quotes.
    pub value: String,
    /// Whether the literal was quoted in the query (`'...'` / `"..."`).
    /// Quoted literals are strings; unquoted ones are standalone numbers.
    pub quoted: bool,
}

/// Slot markers use a Unicode private-use character that cannot appear in
/// real queries or model output, so marker substitution is collision-free.
const SLOT_MARK: char = '\u{F8FF}';

fn slot_marker(index: usize) -> String {
    format!("{SLOT_MARK}{index}{SLOT_MARK}")
}

// The two `glued_*` helpers require token boundaries around bare-number
// literals (and around bare literal occurrences inside plan text), so `1990`
// never matches inside `1990s` or `x1990`.

/// Whether the byte *before* position `i` glues onto a token starting at `i`.
/// A `.` glues only as a decimal continuation (`1.30`); a sentence period or
/// ellipsis does not.
fn glued_before(bytes: &[u8], i: usize) -> bool {
    if i == 0 {
        return false;
    }
    let byte = bytes[i - 1];
    if byte.is_ascii_alphanumeric() || byte == b'_' {
        return true;
    }
    byte == b'.' && i >= 2 && bytes[i - 2].is_ascii_digit()
}

/// Whether the byte *at* position `end` glues onto a token ending at `end`.
/// A `.` glues only when it continues a decimal number (`30.5`); a `30` at
/// the end of a sentence (`points > 30.`) sits at a token boundary.
fn glued_after(bytes: &[u8], end: usize) -> bool {
    if end >= bytes.len() {
        return false;
    }
    let byte = bytes[end];
    if byte.is_ascii_alphanumeric() || byte == b'_' {
        return true;
    }
    byte == b'.' && end + 1 < bytes.len() && bytes[end + 1].is_ascii_digit()
}

/// Normalize a query into its plan-cache template: quoted string literals
/// (`'...'` or `"..."`) and standalone numbers (digits with an optional
/// single decimal point) are replaced by slot markers; everything else is
/// kept verbatim.
///
/// Slots are **deduplicated by value**: every occurrence of one literal maps
/// to one slot, so the template itself encodes the equality pattern of the
/// literals. Two queries share a template only when their literals are
/// equal/distinct in the same positions — which is what makes by-value
/// re-substitution into a cached plan unambiguous. An unterminated quote is
/// treated as plain text (apostrophes in prose never swallow the query).
pub fn normalize_query(query: &str) -> QueryTemplate {
    let bytes = query.as_bytes();
    let mut template = String::with_capacity(query.len());
    let mut literals: Vec<Literal> = Vec::new();
    let slot_of = |value: &str, quoted: bool, literals: &mut Vec<Literal>| -> String {
        let position = literals
            .iter()
            .position(|l| l.value == value && l.quoted == quoted);
        let index = match position {
            Some(index) => index,
            None => {
                literals.push(Literal {
                    value: value.to_string(),
                    quoted,
                });
                literals.len() - 1
            }
        };
        slot_marker(index)
    };
    let mut i = 0;
    while i < bytes.len() {
        let byte = bytes[i];
        if byte == b'\'' || byte == b'"' {
            // A quoted literal — but only if the quote is terminated.
            if let Some(rel) = query[i + 1..].find(byte as char) {
                let end = i + 1 + rel;
                let inner = &query[i + 1..end];
                let marker = slot_of(inner, true, &mut literals);
                template.push(byte as char);
                template.push_str(&marker);
                template.push(byte as char);
                i = end + 1;
                continue;
            }
            template.push(byte as char);
            i += 1;
            continue;
        }
        if byte.is_ascii_digit() && !glued_before(bytes, i) {
            // A standalone number: digits with at most one interior decimal
            // point, bounded by non-token bytes on both sides.
            let mut end = i;
            let mut seen_dot = false;
            while end < bytes.len() {
                let b = bytes[end];
                if b.is_ascii_digit() {
                    end += 1;
                } else if b == b'.'
                    && !seen_dot
                    && end + 1 < bytes.len()
                    && bytes[end + 1].is_ascii_digit()
                {
                    seen_dot = true;
                    end += 1;
                } else {
                    break;
                }
            }
            if !glued_after(bytes, end) {
                let marker = slot_of(&query[i..end], false, &mut literals);
                template.push_str(&marker);
                i = end;
                continue;
            }
            // Part of a larger token (`1990s`, `top10list`): keep verbatim.
            template.push_str(&query[i..end]);
            i = end;
            continue;
        }
        // Plain text: advance one full UTF-8 character.
        let ch = query[i..].chars().next().expect("in-bounds char");
        template.push(ch);
        i += ch.len_utf8();
    }
    QueryTemplate { template, literals }
}

/// Replace every occurrence of each literal in `text` with its slot marker.
///
/// Two passes, each longest-literal first so a literal that is a substring
/// of another never clobbers it:
///
/// 1. **Quoted occurrences** (`'lit'` / `"lit"`) of quoted literals — a
///    quoted occurrence is unambiguously the literal, never an identifier.
/// 2. **Bare occurrences** at token boundaries, which also reaches numbers
///    that the plan quoted (the quote itself is a token boundary). Skipped
///    when the value collides with a catalog `identifier` — a bare `status`
///    in SQL is a column reference, not the string literal `'status'`, and
///    rewriting it would corrupt the plan for every later probe — and for
///    one-character *string* literals (a bare `a` is almost always prose).
///    Single-character numbers **are** substituted: a standalone `5` in plan
///    text is the threaded-through literal, and leaving it baked in would
///    silently replay `5` for a probe asking about `9`.
fn slot_out(text: &str, literals: &[Literal], identifiers: &HashSet<&str>) -> String {
    let mut order: Vec<usize> = (0..literals.len()).collect();
    order.sort_by_key(|&i| std::cmp::Reverse(literals[i].value.len()));
    let mut out = text.to_string();
    for &index in &order {
        let literal = &literals[index];
        if !literal.quoted {
            continue;
        }
        let marker = slot_marker(index);
        out = out.replace(&format!("'{}'", literal.value), &format!("'{marker}'"));
        out = out.replace(&format!("\"{}\"", literal.value), &format!("\"{marker}\""));
    }
    for &index in &order {
        let literal = &literals[index];
        if literal.value.is_empty()
            || identifiers.contains(literal.value.as_str())
            || (literal.quoted && literal.value.len() < 2)
        {
            continue;
        }
        out = replace_bare(&out, &literal.value, &slot_marker(index));
    }
    out
}

/// Replace bare (unquoted) occurrences of `needle` that sit at token
/// boundaries on both sides. Never matches inside an existing slot marker:
/// a digit literal like `0` must not rewrite the index digits of another
/// slot's marker.
fn replace_bare(text: &str, needle: &str, replacement: &str) -> String {
    let bytes = text.as_bytes();
    let mut out = String::with_capacity(text.len());
    let mut i = 0;
    while i < bytes.len() {
        if text[i..].starts_with(needle) {
            let end = i + needle.len();
            if !glued_before(bytes, i)
                && !glued_after(bytes, end)
                && !text[..i].ends_with(SLOT_MARK)
                && !text[end..].starts_with(SLOT_MARK)
            {
                out.push_str(replacement);
                i = end;
                continue;
            }
        }
        let ch = text[i..].chars().next().expect("in-bounds char");
        out.push(ch);
        i += ch.len_utf8();
    }
    out
}

/// Replace every slot marker in `text` with the probe's literal for that
/// slot. Markers use a private-use character, so this is collision-free.
fn fill_slots(text: &str, literals: &[Literal]) -> String {
    let mut out = text.to_string();
    for (index, literal) in literals.iter().enumerate() {
        out = out.replace(&slot_marker(index), &literal.value);
    }
    out
}

/// The table and column identifiers recorded in a schema fingerprint
/// ([`schema_fingerprint`] renders `table(col:type,...);` segments). Probes
/// and inserts under one key share one fingerprint, so both sides of a cache
/// entry see the same identifier set.
fn fingerprint_identifiers(fingerprint: &str) -> HashSet<&str> {
    let mut out = HashSet::new();
    for segment in fingerprint.split(';') {
        let segment = segment.trim();
        if segment.is_empty() {
            continue;
        }
        match segment.split_once('(') {
            Some((table, columns)) => {
                out.insert(table);
                for pair in columns.trim_end_matches(')').split(',') {
                    let name = pair.split_once(':').map_or(pair, |(name, _)| name);
                    if !name.is_empty() {
                        out.insert(name);
                    }
                }
            }
            // Not in fingerprint form (tests use opaque keys): treat the
            // whole segment as one identifier.
            None => {
                out.insert(segment);
            }
        }
    }
    out
}

/// Whether a *normalized* plan + decisions verifiably threaded every
/// template literal through: each literal's slot marker appears somewhere in
/// the text, and no un-slotted occurrence of the literal value remains that
/// a future probe's different value should have replaced. Occurrences equal
/// to a catalog identifier are exempt — they are schema references that must
/// survive re-substitution untouched.
///
/// A plan that fails this check (the planner paraphrased `'Baroque'` into
/// `baroque`, reformatted `98.5` into `98.50`, or simply never used the
/// literal) must not be cached: replaying it under different probe literals
/// would silently answer for the original values.
fn literals_threaded(
    template: &QueryTemplate,
    plan: &LogicalPlan,
    decisions: &[OperatorDecision],
    identifiers: &HashSet<&str>,
) -> bool {
    let mut segments: Vec<&str> = Vec::with_capacity(1 + plan.steps.len() + decisions.len() * 2);
    segments.push(&plan.thought);
    segments.extend(plan.steps.iter().map(|s| s.description.as_str()));
    for decision in decisions {
        segments.push(&decision.reasoning);
        segments.extend(decision.arguments.iter().map(String::as_str));
    }
    template
        .literals
        .iter()
        .enumerate()
        .all(|(index, literal)| {
            let marker = slot_marker(index);
            if !segments.iter().any(|s| s.contains(&marker)) {
                // The plan does not visibly carry this literal, so substitution
                // cannot reach whatever form it took.
                return false;
            }
            if literal.value.is_empty() || identifiers.contains(literal.value.as_str()) {
                return true;
            }
            let single = format!("'{}'", literal.value);
            let double = format!("\"{}\"", literal.value);
            segments.iter().all(|segment| {
                !segment.contains(&single)
                    && !segment.contains(&double)
                    && replace_bare(segment, &literal.value, &marker) == **segment
            })
        })
}

/// A plan with its literals slotted out, as stored in the cache.
fn normalize_plan(
    plan: &LogicalPlan,
    literals: &[Literal],
    identifiers: &HashSet<&str>,
) -> LogicalPlan {
    LogicalPlan {
        thought: slot_out(&plan.thought, literals, identifiers),
        steps: plan
            .steps
            .iter()
            .map(|step| crate::plan::LogicalStep {
                number: step.number,
                description: slot_out(&step.description, literals, identifiers),
                inputs: step.inputs.clone(),
                output: step.output.clone(),
                new_columns: step.new_columns.clone(),
            })
            .collect(),
    }
}

fn instantiate_plan(plan: &LogicalPlan, literals: &[Literal]) -> LogicalPlan {
    LogicalPlan {
        thought: fill_slots(&plan.thought, literals),
        steps: plan
            .steps
            .iter()
            .map(|step| crate::plan::LogicalStep {
                number: step.number,
                description: fill_slots(&step.description, literals),
                inputs: step.inputs.clone(),
                output: step.output.clone(),
                new_columns: step.new_columns.clone(),
            })
            .collect(),
    }
}

fn normalize_decisions(
    decisions: &[OperatorDecision],
    literals: &[Literal],
    identifiers: &HashSet<&str>,
) -> Vec<OperatorDecision> {
    decisions
        .iter()
        .map(|d| OperatorDecision {
            step_number: d.step_number,
            reasoning: slot_out(&d.reasoning, literals, identifiers),
            operator: d.operator,
            arguments: d
                .arguments
                .iter()
                .map(|a| slot_out(a, literals, identifiers))
                .collect(),
        })
        .collect()
}

fn instantiate_decisions(
    decisions: &[OperatorDecision],
    literals: &[Literal],
) -> Vec<OperatorDecision> {
    decisions
        .iter()
        .map(|d| OperatorDecision {
            step_number: d.step_number,
            reasoning: fill_slots(&d.reasoning, literals),
            operator: d.operator,
            arguments: d
                .arguments
                .iter()
                .map(|a| fill_slots(a, literals))
                .collect(),
        })
        .collect()
}

/// Fingerprint of the catalog a planner saw: every table with its column
/// name/type pairs, in catalog (name-sorted, deterministic) order. The full
/// string is the key component — no hashing, so distinct schemas can never
/// collide.
pub fn schema_fingerprint(catalog: &Catalog) -> String {
    let mut out = String::new();
    for table in catalog.tables() {
        out.push_str(table.name());
        out.push('(');
        for (i, field) in table.schema().fields().iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&field.name);
            out.push(':');
            out.push_str(field.data_type.prompt_name());
        }
        out.push_str(");");
    }
    out
}

/// Outcome of one [`PlanCache::insert`] attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlanInsertOutcome {
    /// The plan was stored; `evictions` (0 or 1) entries were evicted to
    /// respect the capacity bound.
    Inserted {
        /// Number of entries evicted to make room.
        evictions: usize,
    },
    /// An equivalent entry was already present (a concurrent query with the
    /// same shape stored it first); its LRU position was refreshed.
    AlreadyPresent,
    /// The plan did not verifiably thread every query literal through its
    /// text, so it was **not** stored: replaying it under different probe
    /// literals could silently answer for the original values. The query
    /// itself still succeeded — it just plans live next time too.
    Rejected,
}

/// A cached validated plan, instantiated with the probe's literals.
#[derive(Debug, Clone, PartialEq)]
pub struct CachedPlan {
    /// The logical plan, with the probe's literals substituted in.
    pub plan: LogicalPlan,
    /// The operator decisions, one per plan step, literals substituted.
    pub decisions: Vec<OperatorDecision>,
}

/// One stored entry plus its position in the shard's LRU order.
#[derive(Debug)]
struct Entry {
    plan: LogicalPlan,
    decisions: Vec<OperatorDecision>,
    tick: u64,
}

/// One independently locked slice of the cache. Keys are the concatenation
/// of schema fingerprint and query template (separated by a byte neither can
/// contain).
#[derive(Debug, Default)]
struct Shard {
    /// Entry capacity of this shard (the shard capacities sum to the
    /// configured total).
    capacity: usize,
    /// Monotonic access clock; higher tick = more recently used.
    tick: u64,
    index: HashMap<String, Entry>,
    /// LRU order: access tick → key of the entry touched at that tick.
    lru: BTreeMap<u64, String>,
}

impl Shard {
    /// Move an entry's tick to the front of the LRU order.
    fn touch(lru: &mut BTreeMap<u64, String>, entry: &mut Entry, tick: u64) {
        let key = lru
            .remove(&entry.tick)
            .expect("a live plan-cache entry has an LRU slot");
        entry.tick = tick;
        lru.insert(tick, key);
    }
}

/// A bounded, sharded, LRU map from `(schema fingerprint, query template)`
/// keys to validated `(LogicalPlan, Vec<OperatorDecision>)` entries. See the
/// [module docs](self) for the correctness argument and locking model.
#[derive(Debug)]
pub struct PlanCache {
    shards: Vec<Mutex<Shard>>,
    hits: AtomicUsize,
    misses: AtomicUsize,
    insertions: AtomicUsize,
    evictions: AtomicUsize,
    invalidations: AtomicUsize,
    rejections: AtomicUsize,
    disk_hits: AtomicUsize,
    disk_misses: AtomicUsize,
    disk_writes: AtomicUsize,
    disk_invalidations: AtomicUsize,
    capacity: usize,
    /// Optional durable tier below the shards (see [`caesura_store`]).
    disk: Option<DiskPlanTier>,
}

/// The attached durable tier of a [`PlanCache`]: the store plus the planner
/// identity that namespaces every key.
#[derive(Debug)]
struct DiskPlanTier {
    store: Arc<CacheStore>,
    /// A stable version string for the *planning configuration* — LLM client
    /// name plus every prompt knob that changes planner output. Entries
    /// written under one identity can never answer for another.
    identity: String,
}

/// Which tier answered a [`PlanCache::lookup_tiered`] probe.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlanTier {
    /// The in-memory shards.
    Memory,
    /// The durable on-disk store (the memory tier was warmed on the way).
    Disk,
}

impl PlanCache {
    /// Upper bound on the number of lock shards. Small capacities use fewer
    /// shards (down to one) so the configured bound stays exact.
    pub const MAX_SHARDS: usize = 16;

    /// Separator between the fingerprint and template halves of a key; a
    /// control byte that appears in neither.
    const KEY_SEP: char = '\u{1f}';

    /// A cache holding at most `capacity` plans (clamped to ≥ 1; use
    /// [`PlanCacheConfig::build`] to express "off" as the absence of a
    /// cache).
    pub fn with_capacity(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        let shard_count = (capacity / 4).clamp(1, Self::MAX_SHARDS);
        let base = capacity / shard_count;
        let extra = capacity % shard_count;
        let shards = (0..shard_count)
            .map(|i| {
                Mutex::new(Shard {
                    capacity: base + usize::from(i < extra),
                    ..Shard::default()
                })
            })
            .collect();
        PlanCache {
            shards,
            hits: AtomicUsize::new(0),
            misses: AtomicUsize::new(0),
            insertions: AtomicUsize::new(0),
            evictions: AtomicUsize::new(0),
            invalidations: AtomicUsize::new(0),
            rejections: AtomicUsize::new(0),
            disk_hits: AtomicUsize::new(0),
            disk_misses: AtomicUsize::new(0),
            disk_writes: AtomicUsize::new(0),
            disk_invalidations: AtomicUsize::new(0),
            capacity,
            disk: None,
        }
    }

    /// Attach a durable tier below the in-memory shards. Memory misses then
    /// probe the store before planning live, validated inserts are written
    /// through, and invalidations tombstone the disk entry too.
    ///
    /// `identity` must change whenever the planning configuration changes —
    /// LLM client name plus every prompt knob that affects planner output —
    /// so plans validated under one configuration never replay under
    /// another.
    pub fn attach_disk(&mut self, store: Arc<CacheStore>, identity: impl Into<String>) {
        self.disk = Some(DiskPlanTier {
            store,
            identity: identity.into(),
        });
    }

    /// Whether a disk tier is attached.
    pub fn has_disk(&self) -> bool {
        self.disk.is_some()
    }

    /// The configured entry capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of plans currently cached (across all shards; a racing
    /// snapshot under concurrent use).
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("plan cache shard lock").lru.len())
            .sum()
    }

    /// Whether no plan is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Lifetime hit/miss/insertion/eviction/invalidation counters.
    pub fn stats(&self) -> PlanCacheStats {
        PlanCacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            insertions: self.insertions.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            invalidations: self.invalidations.load(Ordering::Relaxed),
            rejections: self.rejections.load(Ordering::Relaxed),
            disk_hits: self.disk_hits.load(Ordering::Relaxed),
            disk_misses: self.disk_misses.load(Ordering::Relaxed),
            disk_writes: self.disk_writes.load(Ordering::Relaxed),
            disk_invalidations: self.disk_invalidations.load(Ordering::Relaxed),
        }
    }

    fn key(fingerprint: &str, template: &QueryTemplate) -> String {
        format!("{fingerprint}{}{}", Self::KEY_SEP, template.template)
    }

    /// FNV-1a over the key, used only to pick a shard (entry identity is the
    /// exact key string, never this hash).
    fn shard_of(&self, key: &str) -> usize {
        let mut hash: u64 = 0xcbf29ce484222325;
        for byte in key.bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x100000001b3);
        }
        (hash % self.shards.len() as u64) as usize
    }

    /// Look up the validated plan for a `(fingerprint, template)` probe,
    /// refreshing its LRU position on a hit. The returned plan and decisions
    /// carry the **probe's** literals.
    pub fn lookup(&self, fingerprint: &str, template: &QueryTemplate) -> Option<CachedPlan> {
        self.lookup_tiered(fingerprint, template)
            .map(|(plan, _)| plan)
    }

    /// [`PlanCache::lookup`], additionally reporting which tier answered.
    ///
    /// A memory miss probes the attached disk store (when one is attached);
    /// a disk hit decodes the stored normalized entry, warms the memory
    /// tier, and instantiates it with the probe's literals — still zero
    /// planner/mapping LLM calls.
    pub fn lookup_tiered(
        &self,
        fingerprint: &str,
        template: &QueryTemplate,
    ) -> Option<(CachedPlan, PlanTier)> {
        let key = Self::key(fingerprint, template);
        {
            let mut guard = self.shards[self.shard_of(&key)]
                .lock()
                .expect("plan cache shard lock");
            let shard = &mut *guard;
            shard.tick += 1;
            let tick = shard.tick;
            if let Some(entry) = shard.index.get_mut(&key) {
                Shard::touch(&mut shard.lru, entry, tick);
                self.hits.fetch_add(1, Ordering::Relaxed);
                return Some((
                    CachedPlan {
                        plan: instantiate_plan(&entry.plan, &template.literals),
                        decisions: instantiate_decisions(&entry.decisions, &template.literals),
                    },
                    PlanTier::Memory,
                ));
            }
            self.misses.fetch_add(1, Ordering::Relaxed);
        }
        // Memory miss: probe the disk tier outside the shard lock (the store
        // has its own synchronization, and a racing warm-up is idempotent).
        let disk = self.disk.as_ref()?;
        let decoded = disk
            .store
            .get(&disk_entry_key(&disk.identity, &key))
            .and_then(|bytes| decode_entry(&bytes));
        let Some((plan, decisions)) = decoded else {
            self.disk_misses.fetch_add(1, Ordering::Relaxed);
            return None;
        };
        self.disk_hits.fetch_add(1, Ordering::Relaxed);
        let cached = CachedPlan {
            plan: instantiate_plan(&plan, &template.literals),
            decisions: instantiate_decisions(&decisions, &template.literals),
        };
        self.store_normalized(key, plan, decisions);
        Some((cached, PlanTier::Disk))
    }

    /// Insert an already-normalized entry into the memory tier (used to warm
    /// it from disk). Counts as an insertion; evicts per the capacity bound.
    fn store_normalized(&self, key: String, plan: LogicalPlan, decisions: Vec<OperatorDecision>) {
        let mut guard = self.shards[self.shard_of(&key)]
            .lock()
            .expect("plan cache shard lock");
        let shard = &mut *guard;
        shard.tick += 1;
        let tick = shard.tick;
        if let Some(entry) = shard.index.get_mut(&key) {
            // A concurrent probe warmed this key first.
            Shard::touch(&mut shard.lru, entry, tick);
            return;
        }
        shard.index.insert(
            key.clone(),
            Entry {
                plan,
                decisions,
                tick,
            },
        );
        shard.lru.insert(tick, key);
        self.insertions.fetch_add(1, Ordering::Relaxed);
        if shard.lru.len() > shard.capacity {
            let (_, victim) = shard
                .lru
                .pop_first()
                .expect("a full shard has an LRU entry");
            shard.index.remove(&victim);
            self.evictions.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Store a **validated** plan for a `(fingerprint, template)` key,
    /// slotting the template's literals out of the plan text so future
    /// probes can substitute their own. The normalized plan is only stored
    /// when `literals_threaded` confirms every literal was actually
    /// slotted out — a plan that paraphrased or reformatted a literal is
    /// rejected instead of cached, because a later hit would silently replay
    /// the original values. Evicts the shard's least-recently-used entry if
    /// the shard is full.
    ///
    /// Callers must only insert plans whose execution completed without any
    /// replan or per-step recovery — the insert-after-success contract the
    /// module docs argue correctness from.
    pub fn insert(
        &self,
        fingerprint: &str,
        template: &QueryTemplate,
        plan: &LogicalPlan,
        decisions: &[OperatorDecision],
    ) -> PlanInsertOutcome {
        let identifiers = fingerprint_identifiers(fingerprint);
        let normalized_plan = normalize_plan(plan, &template.literals, &identifiers);
        let normalized_decisions = normalize_decisions(decisions, &template.literals, &identifiers);
        if !literals_threaded(
            template,
            &normalized_plan,
            &normalized_decisions,
            &identifiers,
        ) {
            self.rejections.fetch_add(1, Ordering::Relaxed);
            return PlanInsertOutcome::Rejected;
        }
        let key = Self::key(fingerprint, template);
        // Encode for the disk tier before the entry is moved into the map;
        // the write itself happens after the shard lock is released.
        let encoded = self
            .disk
            .as_ref()
            .map(|_| encode_entry(&normalized_plan, &normalized_decisions));
        let outcome = {
            let mut guard = self.shards[self.shard_of(&key)]
                .lock()
                .expect("plan cache shard lock");
            let shard = &mut *guard;
            shard.tick += 1;
            let tick = shard.tick;
            if let Some(entry) = shard.index.get_mut(&key) {
                // A concurrent query with the same shape stored this entry
                // already; both plans were validated, so only the LRU
                // position needs refreshing.
                Shard::touch(&mut shard.lru, entry, tick);
                return PlanInsertOutcome::AlreadyPresent;
            }
            shard.index.insert(
                key.clone(),
                Entry {
                    plan: normalized_plan,
                    decisions: normalized_decisions,
                    tick,
                },
            );
            shard.lru.insert(tick, key.clone());
            self.insertions.fetch_add(1, Ordering::Relaxed);
            if shard.lru.len() <= shard.capacity {
                PlanInsertOutcome::Inserted { evictions: 0 }
            } else {
                let (_, victim) = shard
                    .lru
                    .pop_first()
                    .expect("a full shard has an LRU entry");
                shard.index.remove(&victim);
                self.evictions.fetch_add(1, Ordering::Relaxed);
                PlanInsertOutcome::Inserted { evictions: 1 }
            }
        };
        // Write the validated entry through to the disk tier. Errors are
        // swallowed: the disk tier is an optimization, and a failed write
        // costs at most a future cold (live-planned) miss. Memory-tier
        // eviction deliberately does NOT remove the disk entry — the durable
        // tier is the larger one, and a later probe re-warms from it.
        if let (Some(disk), Some(bytes)) = (self.disk.as_ref(), encoded) {
            if disk
                .store
                .put(&disk_entry_key(&disk.identity, &key), &bytes)
                .is_ok()
            {
                self.disk_writes.fetch_add(1, Ordering::Relaxed);
            }
        }
        outcome
    }

    /// Remove the entry for a `(fingerprint, template)` key because its
    /// cached plan failed at execution. Returns whether an entry was removed
    /// (a concurrent invalidation may have beaten this one).
    pub fn invalidate(&self, fingerprint: &str, template: &QueryTemplate) -> bool {
        let key = Self::key(fingerprint, template);
        let removed_from_memory = {
            let mut guard = self.shards[self.shard_of(&key)]
                .lock()
                .expect("plan cache shard lock");
            let shard = &mut *guard;
            match shard.index.remove(&key) {
                Some(entry) => {
                    shard.lru.remove(&entry.tick);
                    self.invalidations.fetch_add(1, Ordering::Relaxed);
                    true
                }
                None => false,
            }
        };
        // A failed plan must not survive on disk either — the entry may have
        // been warmed from there (or may outlive this process otherwise).
        let mut removed_from_disk = false;
        if let Some(disk) = self.disk.as_ref() {
            if disk
                .store
                .remove(&disk_entry_key(&disk.identity, &key))
                .unwrap_or(false)
            {
                self.disk_invalidations.fetch_add(1, Ordering::Relaxed);
                removed_from_disk = true;
            }
        }
        removed_from_memory || removed_from_disk
    }
}

/// The on-disk key of a plan-cache entry: the planner identity and the
/// in-memory `(fingerprint, template)` key, length-prefixed so neither part
/// can masquerade as the other.
fn disk_entry_key(identity: &str, key: &str) -> Vec<u8> {
    let mut out = Vec::with_capacity(8 + identity.len() + key.len());
    out.extend_from_slice(&(identity.len() as u32).to_le_bytes());
    out.extend_from_slice(identity.as_bytes());
    out.extend_from_slice(&(key.len() as u32).to_le_bytes());
    out.extend_from_slice(key.as_bytes());
    out
}

// --- entry codec -----------------------------------------------------------
//
// Entries are stored *normalized* (literals slotted out), exactly as the
// memory tier holds them, in a hand-rolled length-prefixed binary framing:
// no serde in this workspace, and the textual plan grammar is a prompt
// format, not a storage format (its parser is deliberately lenient). The
// codec version rides on the first byte; unknown versions decode to `None`,
// which the lookup path treats as a cold miss.

const ENTRY_CODEC_VERSION: u8 = 1;

fn push_str(out: &mut Vec<u8>, s: &str) {
    out.extend_from_slice(&(s.len() as u32).to_le_bytes());
    out.extend_from_slice(s.as_bytes());
}

fn push_u32(out: &mut Vec<u8>, v: usize) {
    out.extend_from_slice(&(v as u32).to_le_bytes());
}

fn push_str_list(out: &mut Vec<u8>, items: &[String]) {
    push_u32(out, items.len());
    for item in items {
        push_str(out, item);
    }
}

/// Serialize a normalized `(plan, decisions)` entry.
fn encode_entry(plan: &LogicalPlan, decisions: &[OperatorDecision]) -> Vec<u8> {
    let mut out = vec![ENTRY_CODEC_VERSION];
    push_str(&mut out, &plan.thought);
    push_u32(&mut out, plan.steps.len());
    for step in &plan.steps {
        push_u32(&mut out, step.number);
        push_str(&mut out, &step.description);
        push_str_list(&mut out, &step.inputs);
        push_str(&mut out, &step.output);
        push_str_list(&mut out, &step.new_columns);
    }
    push_u32(&mut out, decisions.len());
    for decision in decisions {
        push_u32(&mut out, decision.step_number);
        push_str(&mut out, &decision.reasoning);
        push_str(&mut out, decision.operator.name());
        push_str_list(&mut out, &decision.arguments);
    }
    out
}

/// Byte-slice cursor for [`decode_entry`].
struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn u32(&mut self) -> Option<usize> {
        let raw = self.bytes.get(self.pos..self.pos + 4)?;
        self.pos += 4;
        Some(u32::from_le_bytes(raw.try_into().ok()?) as usize)
    }

    fn str(&mut self) -> Option<String> {
        let len = self.u32()?;
        let raw = self.bytes.get(self.pos..self.pos + len)?;
        self.pos += len;
        Some(std::str::from_utf8(raw).ok()?.to_string())
    }

    fn str_list(&mut self) -> Option<Vec<String>> {
        let count = self.u32()?;
        // An absurd count (corruption) must not preallocate gigabytes.
        if count > 4096 {
            return None;
        }
        (0..count).map(|_| self.str()).collect()
    }
}

/// Inverse of [`encode_entry`]. `None` on any malformed payload — including
/// a future codec version — which the caller treats as a cold miss.
fn decode_entry(bytes: &[u8]) -> Option<(LogicalPlan, Vec<OperatorDecision>)> {
    let (&version, rest) = bytes.split_first()?;
    if version != ENTRY_CODEC_VERSION {
        return None;
    }
    let mut cursor = Cursor {
        bytes: rest,
        pos: 0,
    };
    let thought = cursor.str()?;
    let step_count = cursor.u32()?;
    if step_count > 4096 {
        return None;
    }
    let mut steps = Vec::with_capacity(step_count);
    for _ in 0..step_count {
        let number = cursor.u32()?;
        let description = cursor.str()?;
        let inputs = cursor.str_list()?;
        let output = cursor.str()?;
        let new_columns = cursor.str_list()?;
        steps.push(LogicalStep::new(
            number,
            description,
            inputs,
            output,
            new_columns,
        ));
    }
    let decision_count = cursor.u32()?;
    if decision_count > 4096 {
        return None;
    }
    let mut decisions = Vec::with_capacity(decision_count);
    for _ in 0..decision_count {
        let step_number = cursor.u32()?;
        let reasoning = cursor.str()?;
        let operator = OperatorKind::from_name(&cursor.str()?)?;
        let arguments = cursor.str_list()?;
        decisions.push(OperatorDecision {
            step_number,
            reasoning,
            operator,
            arguments,
        });
    }
    if cursor.pos != cursor.bytes.len() {
        return None;
    }
    Some((LogicalPlan { thought, steps }, decisions))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::LogicalStep;
    use caesura_modal::OperatorKind;

    fn plan_with(description: &str) -> LogicalPlan {
        LogicalPlan {
            thought: "think".into(),
            steps: vec![LogicalStep::new(
                1,
                description,
                vec!["t".into()],
                "out",
                vec![],
            )],
        }
    }

    fn decision_with(argument: &str) -> Vec<OperatorDecision> {
        vec![OperatorDecision {
            step_number: 1,
            reasoning: "because".into(),
            operator: OperatorKind::SqlSelection,
            arguments: vec![argument.into()],
        }]
    }

    fn literal_values(template: &QueryTemplate) -> Vec<&str> {
        template.literals.iter().map(|l| l.value.as_str()).collect()
    }

    #[test]
    fn config_parses_capacity_and_off_modes() {
        assert!(PlanCacheConfig::new(10).is_enabled());
        assert!(!PlanCacheConfig::off().is_enabled());
        assert!(PlanCacheConfig::off().build().is_none());
        assert_eq!(PlanCacheConfig::new(10).build().unwrap().capacity(), 10);
    }

    #[test]
    fn normalize_slots_quoted_strings_and_numbers() {
        let t = normalize_query("How many paintings of the 'Baroque' movement sold above 1000?");
        assert_eq!(literal_values(&t), vec!["Baroque", "1000"]);
        assert!(t.literals[0].quoted);
        assert!(!t.literals[1].quoted);
        assert!(!t.template.contains("Baroque"));
        assert!(!t.template.contains("1000"));
        // Same shape, different literals → same template.
        let u = normalize_query("How many paintings of the 'Rococo' movement sold above 250?");
        assert_eq!(t.template, u.template);
        // Different shape → different template.
        let v = normalize_query("How many sculptures of the 'Rococo' movement sold above 250?");
        assert_ne!(t.template, v.template);
    }

    #[test]
    fn normalize_keeps_numbers_inside_tokens_and_unclosed_quotes() {
        let t = normalize_query("List the 1990s hits from the team's top10 songs");
        assert!(t.literals.is_empty(), "literals: {:?}", t.literals);
        assert_eq!(
            t.template,
            "List the 1990s hits from the team's top10 songs"
        );
        let u = normalize_query("Scores above 98.5 in 2024");
        assert_eq!(literal_values(&u), vec!["98.5", "2024"]);
    }

    #[test]
    fn repeated_literals_share_a_slot_so_patterns_must_match() {
        let twice = normalize_query("between 3 and 3");
        assert_eq!(literal_values(&twice), vec!["3"]);
        let distinct = normalize_query("between 3 and 5");
        assert_eq!(distinct.literals.len(), 2);
        // The equality pattern is part of the template itself.
        assert_ne!(twice.template, distinct.template);
    }

    #[test]
    fn hit_substitutes_probe_literals_into_plan_and_decisions() {
        let cache = PlanCache::with_capacity(8);
        let stored = normalize_query("Filter paintings of the 'Baroque' movement");
        cache.insert(
            "fp",
            &stored,
            &plan_with("Keep only rows where movement = 'Baroque'."),
            &decision_with("SELECT * FROM t WHERE movement = 'Baroque'"),
        );
        let probe = normalize_query("Filter paintings of the 'Renaissance' movement");
        let hit = cache.lookup("fp", &probe).expect("template must hit");
        assert_eq!(
            hit.plan.steps[0].description,
            "Keep only rows where movement = 'Renaissance'."
        );
        assert_eq!(
            hit.decisions[0].arguments[0],
            "SELECT * FROM t WHERE movement = 'Renaissance'"
        );
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.insertions), (1, 0, 1));
    }

    #[test]
    fn bare_literal_occurrences_substitute_only_at_token_boundaries() {
        let cache = PlanCache::with_capacity(8);
        let stored = normalize_query("Keep games where points above 30");
        cache.insert(
            "fp",
            &stored,
            &plan_with("Keep rows with points > 30."),
            &decision_with("SELECT * FROM t WHERE points > 30 AND id <> 301"),
        );
        let probe = normalize_query("Keep games where points above 55");
        let hit = cache.lookup("fp", &probe).unwrap();
        assert_eq!(hit.plan.steps[0].description, "Keep rows with points > 55.");
        // `30` inside `301` must survive.
        assert_eq!(
            hit.decisions[0].arguments[0],
            "SELECT * FROM t WHERE points > 55 AND id <> 301"
        );
    }

    #[test]
    fn identical_query_round_trips_bit_for_bit() {
        // Even when a literal coincides with a column name, probing with the
        // *same* literals restores the stored text exactly.
        let cache = PlanCache::with_capacity(8);
        let template = normalize_query("Show rows where status is 'status'");
        let plan = plan_with("Filter on status = 'status' via the status column.");
        let decisions = decision_with("SELECT status FROM t WHERE status = 'status'");
        cache.insert("t(status:str);", &template, &plan, &decisions);
        let hit = cache.lookup("t(status:str);", &template).unwrap();
        assert_eq!(hit.plan, plan);
        assert_eq!(hit.decisions, decisions);
    }

    #[test]
    fn literals_colliding_with_identifiers_keep_schema_references() {
        // A quoted literal that coincides with a column name must not
        // rewrite the bare column references when a later probe substitutes
        // a different value: only the quoted value occurrences change.
        let cache = PlanCache::with_capacity(8);
        let fingerprint = "t(status:str,id:int);";
        let stored = normalize_query("Show rows where status is 'status'");
        let outcome = cache.insert(
            fingerprint,
            &stored,
            &plan_with("Filter on status = 'status' via the status column."),
            &decision_with("SELECT status FROM t WHERE status = 'status'"),
        );
        assert_eq!(outcome, PlanInsertOutcome::Inserted { evictions: 0 });
        let probe = normalize_query("Show rows where status is 'archived'");
        let hit = cache.lookup(fingerprint, &probe).expect("same template");
        assert_eq!(
            hit.plan.steps[0].description,
            "Filter on status = 'archived' via the status column."
        );
        assert_eq!(
            hit.decisions[0].arguments[0],
            "SELECT status FROM t WHERE status = 'archived'"
        );
    }

    #[test]
    fn single_character_number_literals_substitute_on_hit() {
        // A bare single-digit number in the plan text must be slotted out —
        // otherwise a probe with a different digit would match the template
        // and silently execute the stored `> 5`.
        let cache = PlanCache::with_capacity(8);
        let stored = normalize_query("Keep games with points above 5");
        let outcome = cache.insert(
            "fp",
            &stored,
            &plan_with("Keep rows where points > 5."),
            &decision_with("SELECT * FROM t WHERE points > 5"),
        );
        assert_eq!(outcome, PlanInsertOutcome::Inserted { evictions: 0 });
        let probe = normalize_query("Keep games with points above 9");
        let hit = cache.lookup("fp", &probe).expect("same template");
        assert_eq!(hit.plan.steps[0].description, "Keep rows where points > 9.");
        assert_eq!(
            hit.decisions[0].arguments[0],
            "SELECT * FROM t WHERE points > 9"
        );
    }

    #[test]
    fn plans_that_do_not_thread_a_literal_are_rejected() {
        // The planner paraphrased the literal ('Baroque' → lowercase prose):
        // nothing was slotted out, so caching the plan would replay Baroque
        // answers for every other movement. The insert must refuse.
        let cache = PlanCache::with_capacity(8);
        let template = normalize_query("Filter paintings of the 'Baroque' movement");
        let outcome = cache.insert(
            "fp",
            &template,
            &plan_with("Keep only the baroque-era rows."),
            &decision_with("SELECT * FROM t WHERE era = 'baroque'"),
        );
        assert_eq!(outcome, PlanInsertOutcome::Rejected);
        assert!(cache.lookup("fp", &template).is_none());
        let stats = cache.stats();
        assert_eq!((stats.rejections, stats.insertions), (1, 0));
        assert_eq!(cache.len(), 0);
    }

    #[test]
    fn reformatted_number_literals_are_rejected_not_cached() {
        // `98.5` became `98.50` in the plan: substitution cannot find it, so
        // the entry must be refused rather than baked in.
        let cache = PlanCache::with_capacity(8);
        let template = normalize_query("Scores above 98.5");
        let outcome = cache.insert(
            "fp",
            &template,
            &plan_with("Keep scores above 98.50."),
            &decision_with("SELECT * FROM t WHERE score > 98.50"),
        );
        assert_eq!(outcome, PlanInsertOutcome::Rejected);
        assert_eq!(cache.stats().rejections, 1);
    }

    #[test]
    fn digit_literals_never_corrupt_other_slot_markers() {
        // Slot markers embed digit indices; a digit literal must not rewrite
        // another marker's index digits during the bare-substitution pass.
        let cache = PlanCache::with_capacity(8);
        let stored = normalize_query("values between 1 and 0");
        let outcome = cache.insert(
            "fp",
            &stored,
            &plan_with("Keep rows between 1 and 0."),
            &decision_with("SELECT * FROM t WHERE x BETWEEN 1 AND 0"),
        );
        assert_eq!(outcome, PlanInsertOutcome::Inserted { evictions: 0 });
        let probe = normalize_query("values between 4 and 9");
        let hit = cache.lookup("fp", &probe).unwrap();
        assert_eq!(hit.plan.steps[0].description, "Keep rows between 4 and 9.");
        assert_eq!(
            hit.decisions[0].arguments[0],
            "SELECT * FROM t WHERE x BETWEEN 4 AND 9"
        );
    }

    #[test]
    fn different_fingerprints_never_share_entries() {
        let cache = PlanCache::with_capacity(8);
        let template = normalize_query("count rows");
        cache.insert(
            "schema-a",
            &template,
            &plan_with("count"),
            &decision_with("SELECT COUNT(*) FROM t"),
        );
        assert!(cache.lookup("schema-b", &template).is_none());
        assert!(cache.lookup("schema-a", &template).is_some());
    }

    #[test]
    fn invalidate_removes_the_entry_and_counts() {
        let cache = PlanCache::with_capacity(8);
        let template = normalize_query("count rows");
        cache.insert("fp", &template, &plan_with("count"), &decision_with("x"));
        assert!(cache.invalidate("fp", &template));
        assert!(!cache.invalidate("fp", &template), "already gone");
        assert!(cache.lookup("fp", &template).is_none());
        let stats = cache.stats();
        assert_eq!(stats.invalidations, 1);
        assert_eq!(cache.len(), 0);
    }

    #[test]
    fn capacity_bound_holds_with_lru_eviction() {
        let cache = PlanCache::with_capacity(2);
        let (a, b, c) = (
            normalize_query("alpha"),
            normalize_query("beta"),
            normalize_query("gamma"),
        );
        assert_eq!(
            cache.insert("fp", &a, &plan_with("a"), &decision_with("a")),
            PlanInsertOutcome::Inserted { evictions: 0 }
        );
        assert_eq!(
            cache.insert("fp", &b, &plan_with("b"), &decision_with("b")),
            PlanInsertOutcome::Inserted { evictions: 0 }
        );
        // Touch `a` so `b` becomes the LRU victim.
        assert!(cache.lookup("fp", &a).is_some());
        assert_eq!(
            cache.insert("fp", &c, &plan_with("c"), &decision_with("c")),
            PlanInsertOutcome::Inserted { evictions: 1 }
        );
        assert!(cache.lookup("fp", &b).is_none(), "b was LRU");
        assert!(cache.lookup("fp", &a).is_some());
        assert!(cache.lookup("fp", &c).is_some());
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.stats().evictions, 1);
    }

    #[test]
    fn reinserting_an_existing_key_does_not_grow_or_evict() {
        let cache = PlanCache::with_capacity(1);
        let template = normalize_query("alpha");
        cache.insert("fp", &template, &plan_with("a"), &decision_with("a"));
        assert_eq!(
            cache.insert("fp", &template, &plan_with("a"), &decision_with("a")),
            PlanInsertOutcome::AlreadyPresent
        );
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.stats().insertions, 1);
        assert_eq!(cache.stats().evictions, 0);
    }

    #[test]
    fn shard_capacities_sum_to_the_configured_total() {
        for capacity in [1, 2, 5, 16, 17, 100, 4096] {
            let cache = PlanCache::with_capacity(capacity);
            let total: usize = cache
                .shards
                .iter()
                .map(|s| s.lock().unwrap().capacity)
                .sum();
            assert_eq!(total, capacity, "capacity {capacity}");
            assert!(cache.shards.len() <= PlanCache::MAX_SHARDS);
        }
    }

    #[test]
    fn schema_fingerprint_is_exact_and_order_stable() {
        use caesura_engine::{DataType, Schema, TableBuilder};
        let mut catalog = Catalog::new();
        let zeta = Schema::from_pairs(&[("id", DataType::Int)]);
        catalog.register(TableBuilder::new("zeta", zeta).build());
        let alpha = Schema::from_pairs(&[("name", DataType::Str)]);
        catalog.register(TableBuilder::new("alpha", alpha).build());
        let fp = schema_fingerprint(&catalog);
        // Catalog iteration is name-sorted, so registration order does not
        // perturb the fingerprint.
        assert_eq!(fp, "alpha(name:str);zeta(id:int);");
        let beta = Schema::from_pairs(&[("id", DataType::Int)]);
        catalog.register(TableBuilder::new("beta", beta).build());
        assert_ne!(schema_fingerprint(&catalog), fp);
    }

    #[test]
    fn concurrent_mixed_use_stays_bounded_and_consistent() {
        let cache = std::sync::Arc::new(PlanCache::with_capacity(8));
        std::thread::scope(|scope| {
            for t in 0..4 {
                let cache = std::sync::Arc::clone(&cache);
                scope.spawn(move || {
                    for i in 0..100 {
                        // `variantN` keeps the digit inside a token, so the
                        // 12 shapes stay 12 distinct templates.
                        let query = format!("shape variant{} with 'x'", (t * 13 + i) % 12);
                        let template = normalize_query(&query);
                        if let Some(hit) = cache.lookup("fp", &template) {
                            assert_eq!(hit.decisions[0].arguments[0], "arg 'x'");
                        } else {
                            cache.insert(
                                "fp",
                                &template,
                                &plan_with("step"),
                                &decision_with("arg 'x'"),
                            );
                        }
                    }
                });
            }
        });
        assert!(cache.len() <= 8, "capacity bound violated: {}", cache.len());
        let stats = cache.stats();
        assert_eq!(stats.hits + stats.misses, 400);
    }

    #[test]
    fn entry_codec_round_trips() {
        let plan = LogicalPlan {
            thought: format!("filter by {}", slot_marker(0)),
            steps: vec![
                LogicalStep::new(
                    1,
                    format!("Keep rows where movement = '{}'", slot_marker(0)),
                    vec!["paintings".into(), "artists".into()],
                    "filtered",
                    vec![],
                ),
                LogicalStep::new(
                    2,
                    "Plot it",
                    vec!["filtered".into()],
                    "plot",
                    vec!["x".into(), "y".into()],
                ),
            ],
        };
        let decisions = vec![
            OperatorDecision {
                step_number: 1,
                reasoning: "a filter".into(),
                operator: OperatorKind::SqlSelection,
                arguments: vec![
                    format!("movement = '{}'", slot_marker(0)),
                    "; tricky".into(),
                ],
            },
            OperatorDecision {
                step_number: 2,
                reasoning: String::new(),
                operator: OperatorKind::Plot,
                arguments: vec![],
            },
        ];
        let encoded = encode_entry(&plan, &decisions);
        let (plan2, decisions2) = decode_entry(&encoded).expect("decode");
        assert_eq!(plan, plan2);
        assert_eq!(decisions, decisions2);
        // Damaged payloads are misses, never panics.
        assert_eq!(decode_entry(&encoded[..encoded.len() - 1]), None);
        assert_eq!(decode_entry(&[]), None);
        let mut wrong_version = encoded.clone();
        wrong_version[0] = 99;
        assert_eq!(decode_entry(&wrong_version), None);
    }

    fn temp_store(tag: &str) -> (std::path::PathBuf, Arc<CacheStore>) {
        let mut dir = std::env::temp_dir();
        dir.push(format!("caesura-plan-disk-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let store = Arc::new(CacheStore::open(&dir).expect("open store"));
        (dir, store)
    }

    #[test]
    fn disk_tier_survives_a_simulated_restart() {
        let (dir, store) = temp_store("restart");
        let template = normalize_query("Filter paintings of the 'Baroque' movement");
        {
            let mut cache = PlanCache::with_capacity(8);
            cache.attach_disk(Arc::clone(&store), "planner-a");
            let outcome = cache.insert(
                "fp",
                &template,
                &plan_with("Keep rows where movement = 'Baroque'"),
                &decision_with("movement = 'Baroque'"),
            );
            assert_eq!(outcome, PlanInsertOutcome::Inserted { evictions: 0 });
            assert_eq!(cache.stats().disk_writes, 1);
        }
        // "Restart": a fresh cache over the same store.
        let mut cache = PlanCache::with_capacity(8);
        cache.attach_disk(Arc::clone(&store), "planner-a");
        let probe = normalize_query("Filter paintings of the 'Rococo' movement");
        let (hit, tier) = cache.lookup_tiered("fp", &probe).expect("disk hit");
        assert_eq!(tier, PlanTier::Disk);
        assert!(hit.plan.steps[0].description.contains("'Rococo'"));
        assert_eq!(hit.decisions[0].arguments[0], "movement = 'Rococo'");
        // The memory tier was warmed: the next probe hits memory.
        let (_, tier) = cache.lookup_tiered("fp", &probe).expect("memory hit");
        assert_eq!(tier, PlanTier::Memory);
        let stats = cache.stats();
        assert_eq!((stats.disk_hits, stats.hits, stats.misses), (1, 1, 1));
        assert!((stats.hit_rate() - 1.0).abs() < 1e-9);
        drop((cache, store));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn disk_tier_isolates_planner_identities_and_invalidates() {
        let (dir, store) = temp_store("identity");
        let template = normalize_query("Filter paintings of the 'Baroque' movement");
        let mut writer = PlanCache::with_capacity(8);
        writer.attach_disk(Arc::clone(&store), "planner-a");
        writer.insert(
            "fp",
            &template,
            &plan_with("Keep rows where movement = 'Baroque'"),
            &decision_with("movement = 'Baroque'"),
        );

        // A different planner identity sharing the same store never sees it.
        let mut other = PlanCache::with_capacity(8);
        other.attach_disk(Arc::clone(&store), "planner-b");
        assert_eq!(other.lookup_tiered("fp", &template), None);
        assert_eq!(other.stats().disk_misses, 1);

        // Nor does a different schema fingerprint under the same identity.
        let mut same = PlanCache::with_capacity(8);
        same.attach_disk(Arc::clone(&store), "planner-a");
        assert_eq!(same.lookup_tiered("other-fp", &template), None);

        // Invalidation tombstones the disk entry: a fresh cache cold-misses.
        assert!(writer.invalidate("fp", &template));
        assert_eq!(writer.stats().disk_invalidations, 1);
        let mut after = PlanCache::with_capacity(8);
        after.attach_disk(Arc::clone(&store), "planner-a");
        assert_eq!(after.lookup_tiered("fp", &template), None);
        drop((writer, other, same, after, store));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
