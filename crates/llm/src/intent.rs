//! Natural-language query analysis: the "reasoning" of the simulated planner.
//!
//! Given the user query and the table sketches extracted from the prompt, this
//! module derives a [`QueryIntent`]: what kind of output is requested, what is
//! aggregated, how results are grouped, which filters apply, and — crucially —
//! which of those attributes live in relational columns versus inside images
//! or text documents. The paper calls this "non-trivial reasoning over the
//! user's intents, the available multi-modal data, as well as the effects of
//! applying non-relational operators" (§1); here it is implemented as a
//! transparent, deterministic analyzer so that experiments are reproducible.

use crate::context::TableSketch;

/// The output format the user asked for (the three query groups of Table 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OutputKind {
    /// A single scalar answer.
    SingleValue,
    /// A result table.
    Table,
    /// A plot of the result table.
    Plot,
}

/// Aggregate functions the analyzer distinguishes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggKind {
    /// COUNT.
    Count,
    /// MAX.
    Max,
    /// MIN.
    Min,
    /// AVG.
    Avg,
    /// SUM.
    Sum,
}

impl AggKind {
    /// SQL name.
    pub fn sql_name(&self) -> &'static str {
        match self {
            AggKind::Count => "COUNT",
            AggKind::Max => "MAX",
            AggKind::Min => "MIN",
            AggKind::Avg => "AVG",
            AggKind::Sum => "SUM",
        }
    }

    /// English word used in step descriptions ("compute the maximum of ...").
    pub fn english(&self) -> &'static str {
        match self {
            AggKind::Count => "count",
            AggKind::Max => "maximum",
            AggKind::Min => "minimum",
            AggKind::Avg => "average",
            AggKind::Sum => "sum",
        }
    }
}

/// Where an attribute mentioned in the query actually lives.
#[derive(Debug, Clone, PartialEq)]
pub enum AttributeRef {
    /// An existing relational column.
    Column {
        /// Table that holds the column.
        table: String,
        /// Column name.
        column: String,
    },
    /// The century, derived from a date-like string column via the Python operator.
    DerivedCentury {
        /// Table that holds the date column.
        table: String,
        /// The date-like source column.
        column: String,
    },
    /// The year, derived from a date-like string column via the Python operator.
    DerivedYear {
        /// Table that holds the date column.
        table: String,
        /// The date-like source column.
        column: String,
    },
    /// How many instances of an entity are depicted in the image (VisualQA count).
    ImageCount {
        /// The entity to count (e.g. "swords").
        entity: String,
    },
    /// Whether an entity is depicted in the image (VisualQA yes/no).
    ImageDepicts {
        /// The entity phrase (e.g. "Madonna and Child").
        entity: String,
    },
    /// A statistic reported in the text documents (TextQA, e.g. points scored).
    TextStat {
        /// The statistic keyword ("points", "rebounds", "assists").
        stat: String,
    },
    /// Whether the subject won (or lost) according to the text documents.
    TextOutcome {
        /// `true` for wins, `false` for losses.
        win: bool,
    },
    /// The number of rows of the main entity table (e.g. "how many paintings").
    RowCount,
}

impl AttributeRef {
    /// Whether resolving this attribute requires a non-relational operator.
    pub fn is_multimodal(&self) -> bool {
        matches!(
            self,
            AttributeRef::ImageCount { .. }
                | AttributeRef::ImageDepicts { .. }
                | AttributeRef::TextStat { .. }
                | AttributeRef::TextOutcome { .. }
        )
    }

    /// Whether resolving this attribute requires the Python operator.
    pub fn is_derived(&self) -> bool {
        matches!(
            self,
            AttributeRef::DerivedCentury { .. } | AttributeRef::DerivedYear { .. }
        )
    }

    /// The name of the column this attribute will materialize as.
    pub fn column_name(&self) -> String {
        match self {
            AttributeRef::Column { column, .. } => {
                column.rsplit('.').next().unwrap_or(column).to_string()
            }
            AttributeRef::DerivedCentury { .. } => "century".to_string(),
            AttributeRef::DerivedYear { .. } => "year".to_string(),
            AttributeRef::ImageCount { entity } => {
                format!("num_{}", sanitize_identifier(entity))
            }
            AttributeRef::ImageDepicts { entity } => {
                format!("{}_depicted", sanitize_identifier(entity))
            }
            AttributeRef::TextStat { stat } => format!("{}_scored", sanitize_identifier(stat)),
            AttributeRef::TextOutcome { win } => {
                if *win {
                    "won_game".to_string()
                } else {
                    "lost_game".to_string()
                }
            }
            AttributeRef::RowCount => "num_rows".to_string(),
        }
    }
}

/// Turn an entity phrase into a snake_case identifier fragment.
pub fn sanitize_identifier(text: &str) -> String {
    text.to_lowercase()
        .split_whitespace()
        .collect::<Vec<_>>()
        .join("_")
        .chars()
        .filter(|c| c.is_alphanumeric() || *c == '_')
        .collect()
}

/// A comparison used in a filter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FilterOp {
    /// Equality.
    Eq,
    /// Greater than.
    Gt,
    /// Greater than or equal.
    GtEq,
    /// Less than.
    Lt,
}

impl FilterOp {
    /// SQL spelling.
    pub fn sql(&self) -> &'static str {
        match self {
            FilterOp::Eq => "=",
            FilterOp::Gt => ">",
            FilterOp::GtEq => ">=",
            FilterOp::Lt => "<",
        }
    }
}

/// One filter of the query.
#[derive(Debug, Clone, PartialEq)]
pub struct FilterIntent {
    /// The attribute being filtered.
    pub attribute: AttributeRef,
    /// Comparison operator.
    pub op: FilterOp,
    /// Comparison value rendered as a string.
    pub value: String,
}

/// The aggregation the query asks for.
#[derive(Debug, Clone, PartialEq)]
pub struct AggregateIntent {
    /// The aggregate function.
    pub func: AggKind,
    /// The aggregated attribute.
    pub target: AttributeRef,
}

/// The full analyzed intent of a query.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryIntent {
    /// Original query text.
    pub query: String,
    /// The requested output format.
    pub output: OutputKind,
    /// The table whose rows are the query's main entity.
    pub main_table: String,
    /// Grouping attribute, if any.
    pub group_by: Option<AttributeRef>,
    /// Aggregation, if any.
    pub aggregate: Option<AggregateIntent>,
    /// Filters, in application order.
    pub filters: Vec<FilterIntent>,
    /// Projection columns for "List the ... of ..." queries.
    pub projection: Vec<AttributeRef>,
}

impl QueryIntent {
    /// Whether any part of the query needs a non-relational operator.
    pub fn is_multimodal(&self) -> bool {
        self.group_by.iter().any(AttributeRef::is_multimodal)
            || self.aggregate.iter().any(|a| a.target.is_multimodal())
            || self.filters.iter().any(|f| f.attribute.is_multimodal())
            || self.projection.iter().any(AttributeRef::is_multimodal)
    }

    /// All attributes referenced anywhere in the intent.
    pub fn all_attributes(&self) -> Vec<&AttributeRef> {
        let mut out = Vec::new();
        if let Some(g) = &self.group_by {
            out.push(g);
        }
        if let Some(a) = &self.aggregate {
            out.push(&a.target);
        }
        for f in &self.filters {
            out.push(&f.attribute);
        }
        for p in &self.projection {
            out.push(p);
        }
        out
    }
}

/// Analyze a query against the table sketches from the prompt.
pub fn analyze(query: &str, tables: &[TableSketch]) -> QueryIntent {
    let analyzer = Analyzer::new(query, tables);
    analyzer.run()
}

struct Analyzer<'a> {
    query: String,
    lower: String,
    tables: &'a [TableSketch],
}

/// Words that never act as filter values even when capitalized.
const NON_VALUE_WORDS: &[&str] = &[
    "plot", "list", "show", "what", "how", "for", "the", "which", "madonna", "child", "x", "y",
    "axis",
];

impl<'a> Analyzer<'a> {
    fn new(query: &str, tables: &'a [TableSketch]) -> Self {
        Analyzer {
            query: query.to_string(),
            lower: query.to_lowercase(),
            tables,
        }
    }

    fn run(&self) -> QueryIntent {
        let output = self.output_kind();
        let main_table = self.main_table();
        let group_by = self.group_by(&main_table);
        let aggregate = self.aggregate(&main_table, group_by.as_ref());
        let filters = self.filters(&main_table, aggregate.as_ref());
        let projection = self.projection(&main_table);
        QueryIntent {
            query: self.query.clone(),
            output,
            main_table,
            group_by,
            aggregate,
            filters,
            projection,
        }
    }

    fn output_kind(&self) -> OutputKind {
        let q = &self.lower;
        if q.starts_with("plot")
            || q.starts_with("draw")
            || q.contains(" plot ")
            || q.contains("chart")
            || q.starts_with("visualize")
        {
            return OutputKind::Plot;
        }
        let grouped = self.group_phrase().is_some();
        if q.starts_with("list") || q.starts_with("show") || q.starts_with("which") || grouped {
            return OutputKind::Table;
        }
        OutputKind::SingleValue
    }

    /// The relational table whose rows are the main entity of the query.
    fn main_table(&self) -> String {
        // Entity nouns that appear in the query and match a table name.
        let mut best: Option<(&TableSketch, usize)> = None;
        for table in self.tables {
            if table.is_multimodal() {
                continue;
            }
            let stem = singular(&table.name.to_lowercase());
            // Score: table-name stem match + how many of its columns the query
            // mentions. An exact stem match ("teams" → `teams`) outranks a
            // partial one ("games" → `team_to_games`).
            let mut score = 0;
            for word in self.words() {
                if singular(&word) == stem {
                    score += 5;
                } else if stem.contains(&singular(&word)) && word.len() > 4 {
                    score += 2;
                }
            }
            for column in &table.columns {
                if self.mentions_column(&column.name) {
                    score += 2;
                }
            }
            if score > 0 {
                match best {
                    Some((_, best_score)) if best_score >= score => {}
                    _ => best = Some((table, score)),
                }
            }
        }
        if let Some((table, _)) = best {
            return table.name.clone();
        }
        // Fall back to the widest relational table.
        self.tables
            .iter()
            .filter(|t| !t.is_multimodal())
            .max_by_key(|t| t.columns.len())
            .or_else(|| self.tables.first())
            .map(|t| t.name.clone())
            .unwrap_or_default()
    }

    fn words(&self) -> Vec<String> {
        self.lower
            .split(|c: char| !c.is_alphanumeric())
            .filter(|w| !w.is_empty())
            .map(str::to_string)
            .collect()
    }

    fn mentions_column(&self, column: &str) -> bool {
        let column = column.to_lowercase();
        if column == "name"
            || column == "img_path"
            || column == "image"
            || column == "report"
            || column == "game_id"
        {
            // Too generic / internal to count as a signal.
            return false;
        }
        self.words().iter().any(|w| {
            singular(w) == singular(&column)
                || column.replace('_', " ").contains(w.as_str()) && w.len() > 4
        })
    }

    /// The phrase after "for each" / "for every" / "per" / "of each".
    fn group_phrase(&self) -> Option<String> {
        for marker in [
            "for each ",
            "for every ",
            " per ",
            "of each ",
            "by each ",
            "for the paintings of each ",
            "in each ",
            "did each ",
            " each ",
        ] {
            if let Some(pos) = self.lower.find(marker) {
                let rest = &self.lower[pos + marker.len()..];
                let phrase: String = rest
                    .split([',', '.', '!', '?'])
                    .next()
                    .unwrap_or("")
                    .trim()
                    .to_string();
                if !phrase.is_empty() {
                    return Some(phrase);
                }
            }
        }
        // "scored by each team" handled above via "of each"/"by each"; also
        // accept trailing "... by team".
        None
    }

    fn group_by(&self, main_table: &str) -> Option<AttributeRef> {
        let phrase = self.group_phrase()?;
        // The group phrase may have trailing words ("century in the museum").
        let head: String = phrase
            .split_whitespace()
            .take(2)
            .collect::<Vec<_>>()
            .join(" ");
        Some(self.resolve_group_phrase(&head, main_table))
    }

    /// Resolve the grouping phrase ("century", "movement", "team", "game", ...).
    fn resolve_group_phrase(&self, phrase: &str, main_table: &str) -> AttributeRef {
        let phrase = phrase.trim();
        if phrase.contains("century") {
            if let Some(attr) = self.derived_date_attribute(true) {
                return attr;
            }
        }
        if phrase.contains("year") {
            if let Some(attr) = self.derived_date_attribute(false) {
                return attr;
            }
        }
        // Entity nouns whose singular exactly names a table: "team" → the name
        // column of the teams table. Checked before the generic column match so
        // that grouping "by team" picks `teams.name` rather than `players.team`.
        let stem = singular(phrase.split_whitespace().next().unwrap_or(phrase));
        if !stem.is_empty() {
            for table in self.tables {
                if table.is_multimodal() {
                    continue;
                }
                if singular(&table.name.to_lowercase()) == stem {
                    for preferred in ["name", "title", "id"] {
                        if table.has_column(preferred) {
                            return AttributeRef::Column {
                                table: table.name.clone(),
                                column: preferred.to_string(),
                            };
                        }
                    }
                }
            }
        }
        // Direct column match (movement, genre, artist, conference, ...).
        if let Some(column) = self.find_column_in_phrase(phrase) {
            return column;
        }
        // Entity nouns that only partially match a table name.
        for table in self.tables {
            if table.is_multimodal() {
                continue;
            }
            let table_stem = singular(&table.name.to_lowercase());
            if table_stem.contains(&stem) && !stem.is_empty() {
                for preferred in ["name", "title", "id"] {
                    if table.has_column(preferred) {
                        return AttributeRef::Column {
                            table: table.name.clone(),
                            column: preferred.to_string(),
                        };
                    }
                }
            }
        }
        if stem == "game" {
            for table in self.tables {
                if table.has_column("game_id") && !table.is_multimodal() {
                    return AttributeRef::Column {
                        table: table.name.clone(),
                        column: "game_id".to_string(),
                    };
                }
            }
        }
        // Fall back to the first string column of the main table.
        if let Some(table) = self
            .tables
            .iter()
            .find(|t| t.name.eq_ignore_ascii_case(main_table))
        {
            if let Some(column) = table.columns.iter().find(|c| c.dtype == "str") {
                return AttributeRef::Column {
                    table: table.name.clone(),
                    column: column.name.clone(),
                };
            }
        }
        AttributeRef::RowCount
    }

    fn aggregate(
        &self,
        main_table: &str,
        group_by: Option<&AttributeRef>,
    ) -> Option<AggregateIntent> {
        let q = &self.lower;

        // Determine the aggregate function from keywords.
        let func = if q.contains("maximum")
            || q.contains("highest")
            || q.contains("most")
            || q.contains("tallest")
            || q.contains("latest")
        {
            Some(AggKind::Max)
        } else if q.contains("minimum")
            || q.contains("lowest")
            || q.contains("earliest")
            || q.contains("shortest")
        {
            Some(AggKind::Min)
        } else if q.contains("average") || q.contains("mean") {
            Some(AggKind::Avg)
        } else if q.contains("total number") || q.contains("sum of") {
            Some(AggKind::Sum)
        } else if q.contains("how many") || q.contains("number of") || q.contains("count") {
            Some(AggKind::Count)
        } else {
            None
        }?;

        // Determine the aggregation target phrase.
        let target_phrase = self.aggregation_target_phrase();
        let target = match target_phrase {
            Some(phrase) => self.resolve_aggregation_target(&phrase, main_table, func),
            None => AttributeRef::RowCount,
        };

        // "Count of <row entity>" stays a row count; counting a yes/no image
        // attribute means counting the rows where it holds (handled by the
        // synthesizer as filter + row count).
        let target = match (&func, &target) {
            (AggKind::Count, AttributeRef::ImageDepicts { entity }) => {
                // Counting paintings that depict X == filter + count rows; keep
                // the depicts attribute so the synthesizer can add the filter.
                AttributeRef::ImageDepicts {
                    entity: entity.clone(),
                }
            }
            _ => target,
        };

        // A group-by without an explicit aggregate defaults to counting rows
        // ("How many games did each team lose?" handled via TextOutcome).
        let _ = group_by;
        Some(AggregateIntent { func, target })
    }

    /// The noun phrase the aggregate applies to.
    fn aggregation_target_phrase(&self) -> Option<String> {
        let q = &self.lower;
        for marker in [
            "maximum number of ",
            "highest number of ",
            "average number of ",
            "minimum number of ",
            "total number of ",
            "number of ",
            "how many ",
            "maximum ",
            "minimum ",
            "highest ",
            "lowest ",
            "average ",
            "earliest ",
            "latest ",
            "what is the ",
        ] {
            if let Some(pos) = q.find(marker) {
                let rest = &q[pos + marker.len()..];
                let phrase: String = rest
                    .split([',', '.', '!', '?'])
                    .next()
                    .unwrap_or("")
                    .split(" for each ")
                    .next()
                    .unwrap_or("")
                    .split(" of each ")
                    .next()
                    .unwrap_or("")
                    .split(" per ")
                    .next()
                    .unwrap_or("")
                    .trim()
                    .to_string();
                if !phrase.is_empty() {
                    return Some(phrase);
                }
            }
        }
        None
    }

    fn resolve_aggregation_target(
        &self,
        phrase: &str,
        main_table: &str,
        func: AggKind,
    ) -> AttributeRef {
        let words: Vec<&str> = phrase.split_whitespace().collect();
        // "how many paintings ..." / "number of teams" → row count when the
        // first noun names the main entity.
        if let Some(first) = words.first() {
            if self.is_row_entity(first, main_table) {
                // "... depicting X" makes it a filtered row count; the filter
                // is picked up separately.
                // "how many games did each team lose/win" → outcome counting.
                if self.lower.contains("lose") || self.lower.contains("lost") {
                    if self.text_table().is_some() && first.starts_with("game") {
                        return AttributeRef::TextOutcome { win: false };
                    }
                } else if (self.lower.contains(" win") || self.lower.contains(" won"))
                    && self.text_table().is_some()
                    && first.starts_with("game")
                {
                    return AttributeRef::TextOutcome { win: true };
                }
                return AttributeRef::RowCount;
            }
        }
        // "points scored", "points they scored", "rebounds", "assists".
        if let Some(stat) = self.text_stat_in(phrase) {
            return AttributeRef::TextStat { stat };
        }
        // "year" / "century" / "inception year".
        if phrase.contains("century") {
            if let Some(attr) = self.derived_date_attribute(true) {
                return attr;
            }
        }
        if phrase.contains("year") || phrase.contains("inception") {
            if let Some(attr) = self.derived_date_attribute(false) {
                return attr;
            }
        }
        // Direct column match ("height", "height of the tallest player").
        if let Some(column) = self.find_column_in_phrase(phrase) {
            return column;
        }
        // "tallest player" → the height column of the players table.
        if func == AggKind::Max || func == AggKind::Min {
            if let Some(column) = self.numeric_column_hint(phrase) {
                return column;
            }
        }
        // Otherwise, if an image table exists, this is something depicted.
        if self.image_table().is_some() {
            let entity = strip_depiction_words(phrase);
            if !entity.is_empty() {
                return match func {
                    AggKind::Count => {
                        if self.lower.contains("depicting") || self.lower.contains("that depict") {
                            AttributeRef::ImageDepicts { entity }
                        } else {
                            AttributeRef::ImageCount { entity }
                        }
                    }
                    _ => AttributeRef::ImageCount { entity },
                };
            }
        }
        AttributeRef::RowCount
    }

    fn is_row_entity(&self, word: &str, main_table: &str) -> bool {
        let stem = singular(word);
        if stem.is_empty() {
            return false;
        }
        let main_stem = singular(&main_table.to_lowercase());
        main_stem.contains(&stem)
            || stem == "painting"
            || stem == "artwork"
            || stem == "team"
            || stem == "player"
            || stem == "game"
            || stem == "row"
            || stem == "tuple"
    }

    fn text_stat_in(&self, phrase: &str) -> Option<String> {
        for stat in [
            "points",
            "rebounds",
            "assists",
            "specimens",
            "readings",
            "samples",
        ] {
            if phrase.contains(stat) && self.text_table().is_some() {
                // Only a text stat if no relational column carries it.
                let in_column = self
                    .tables
                    .iter()
                    .any(|t| !t.is_multimodal() && t.has_column(stat));
                if !in_column {
                    return Some(stat.to_string());
                }
            }
        }
        None
    }

    fn derived_date_attribute(&self, century: bool) -> Option<AttributeRef> {
        const DATE_HINTS: &[&str] = &["inception", "date", "created", "founded", "year"];
        for table in self.tables {
            if table.is_multimodal() {
                continue;
            }
            for column in &table.columns {
                let name = column.name.to_lowercase();
                if DATE_HINTS.iter().any(|h| name.contains(h)) && column.dtype == "str" {
                    return Some(if century {
                        AttributeRef::DerivedCentury {
                            table: table.name.clone(),
                            column: column.name.clone(),
                        }
                    } else {
                        AttributeRef::DerivedYear {
                            table: table.name.clone(),
                            column: column.name.clone(),
                        }
                    });
                }
            }
        }
        // An integer column named like a year works directly.
        for table in self.tables {
            for column in &table.columns {
                let name = column.name.to_lowercase();
                if (name.contains("year") || name.contains("founded")) && column.dtype == "int" {
                    return Some(AttributeRef::Column {
                        table: table.name.clone(),
                        column: column.name.clone(),
                    });
                }
            }
        }
        None
    }

    fn find_column_in_phrase(&self, phrase: &str) -> Option<AttributeRef> {
        let phrase_words: Vec<String> = phrase
            .split(|c: char| !c.is_alphanumeric())
            .filter(|w| !w.is_empty())
            .map(str::to_lowercase)
            .collect();
        for table in self.tables {
            if table.is_multimodal()
                && table.image_columns().len() + table.text_columns().len() == table.columns.len()
            {
                continue;
            }
            for column in &table.columns {
                let name = column.name.to_lowercase();
                if name == "name" || name == "img_path" || name == "game_id" {
                    continue;
                }
                let base = name.split('_').next().unwrap_or(&name).to_string();
                if phrase_words
                    .iter()
                    .any(|w| singular(w) == singular(&name) || singular(w) == singular(&base))
                {
                    return Some(AttributeRef::Column {
                        table: table.name.clone(),
                        column: column.name.clone(),
                    });
                }
            }
        }
        None
    }

    fn numeric_column_hint(&self, phrase: &str) -> Option<AttributeRef> {
        // "tallest player" → height; "longest" → length; fall back to the
        // first numeric, non-id column of the table whose entity is mentioned.
        let wants_height = phrase.contains("tall") || self.lower.contains("tallest");
        for table in self.tables {
            if table.is_multimodal() {
                continue;
            }
            for column in &table.columns {
                let name = column.name.to_lowercase();
                if wants_height && name.contains("height") {
                    return Some(AttributeRef::Column {
                        table: table.name.clone(),
                        column: column.name.clone(),
                    });
                }
            }
        }
        None
    }

    fn filters(&self, main_table: &str, aggregate: Option<&AggregateIntent>) -> Vec<FilterIntent> {
        let mut filters = Vec::new();

        // 1. Depiction filters ("depicting X", "that depict X", "depict a X").
        if let Some(entity) = self.depicted_entity() {
            // If the aggregate already *counts* that entity per image, the
            // phrase is the target and not a filter.
            let is_target = matches!(
                aggregate.map(|a| &a.target),
                Some(AttributeRef::ImageCount { entity: target }) if *target == entity
            );
            let threshold = self.depiction_threshold();
            if !is_target {
                if let Some(min_count) = threshold {
                    filters.push(FilterIntent {
                        attribute: AttributeRef::ImageCount { entity },
                        op: FilterOp::GtEq,
                        value: min_count.to_string(),
                    });
                } else {
                    filters.push(FilterIntent {
                        attribute: AttributeRef::ImageDepicts { entity },
                        op: FilterOp::Eq,
                        value: "yes".to_string(),
                    });
                }
            }
        }

        // 2. Categorical filters: "<Value> <column>" for known category columns.
        for column_name in [
            "movement",
            "genre",
            "conference",
            "division",
            "nationality",
            "position",
            "region",
            "terrain",
            "climate",
        ] {
            if let Some(value) = self.value_before_keyword(column_name) {
                if let Some(attr) = self.column_ref(column_name) {
                    filters.push(FilterIntent {
                        attribute: attr,
                        op: FilterOp::Eq,
                        value,
                    });
                }
            }
        }

        // 3. "from the USA" → nationality.
        if let Some(value) = self.value_after_keyword("from the ") {
            if value
                .chars()
                .next()
                .map(char::is_uppercase)
                .unwrap_or(false)
                && !self.lower.contains("nationality")
            {
                if let Some(attr) = self.column_ref("nationality") {
                    filters.push(FilterIntent {
                        attribute: attr,
                        op: FilterOp::Eq,
                        value,
                    });
                }
            }
        }

        // 4. "painted by <Artist>" / "did <Artist> paint".
        if let Some(artist) = self.artist_value() {
            if let Some(attr) = self.column_ref("artist") {
                filters.push(FilterIntent {
                    attribute: attr,
                    op: FilterOp::Eq,
                    value: artist,
                });
            }
        }

        // 5. Team / name filters: a capitalized token matching no other rule,
        //    in a query about scores/games ("the Heat scored", "did the Lakers lose").
        if let Some(team) = self.subject_name_value(&filters) {
            let name_table = self
                .tables
                .iter()
                .find(|t| t.name.eq_ignore_ascii_case(main_table) && t.has_column("name"))
                .or_else(|| {
                    self.tables
                        .iter()
                        .find(|t| t.has_column("name") && !t.is_multimodal())
                });
            if let Some(table) = name_table {
                filters.push(FilterIntent {
                    attribute: AttributeRef::Column {
                        table: table.name.clone(),
                        column: "name".to_string(),
                    },
                    op: FilterOp::Eq,
                    value: team,
                });
            }
        }

        // 6. Numeric comparisons: "taller than 200".
        if let Some((column, op, value)) = self.numeric_comparison() {
            filters.push(FilterIntent {
                attribute: column,
                op,
                value,
            });
        }

        filters
    }

    /// The entity of a "depicting X" / "that depict X" phrase.
    fn depicted_entity(&self) -> Option<String> {
        let q = &self.lower;
        for marker in [
            "depicting ",
            "that depict ",
            "that depicts ",
            "which depict ",
            "paintings that show ",
            "do the paintings of ",
            "depict ",
        ] {
            if let Some(pos) = q.find(marker) {
                let rest = &q[pos + marker.len()..];
                let phrase: String = rest
                    .split([',', '.', '!', '?'])
                    .next()
                    .unwrap_or("")
                    .split(" for each ")
                    .next()
                    .unwrap_or("")
                    .split(" of each ")
                    .next()
                    .unwrap_or("")
                    .split(" in ")
                    .next()
                    .unwrap_or("")
                    .split(" on ")
                    .next()
                    .unwrap_or("")
                    .trim()
                    .to_string();
                let entity = strip_depiction_words(&phrase);
                if !entity.is_empty() {
                    return Some(entity);
                }
            }
        }
        None
    }

    /// "at least N <entity>" inside a depiction phrase.
    fn depiction_threshold(&self) -> Option<i64> {
        let pos = self.lower.find("at least ")?;
        let rest = &self.lower[pos + "at least ".len()..];
        let number: String = rest.chars().take_while(|c| c.is_ascii_digit()).collect();
        if number.is_empty() {
            // Spelled-out small numbers.
            for (word, value) in [("two", 2), ("three", 3), ("four", 4), ("five", 5)] {
                if rest.starts_with(word) {
                    return Some(value);
                }
            }
            return None;
        }
        number.parse().ok()
    }

    /// A capitalized value appearing right before a keyword ("Impressionism movement").
    fn value_before_keyword(&self, keyword: &str) -> Option<String> {
        let pos = self.lower.find(&format!(" {keyword}"))?;
        let before = &self.query[..pos];
        let candidate = before
            .split_whitespace()
            .last()?
            .trim_matches(['\'', '"', ','].as_ref());
        if candidate.chars().next()?.is_uppercase()
            && !NON_VALUE_WORDS.contains(&candidate.to_lowercase().as_str())
        {
            Some(candidate.to_string())
        } else {
            None
        }
    }

    fn value_after_keyword(&self, keyword: &str) -> Option<String> {
        let pos = self.lower.find(keyword)?;
        let rest = &self.query[pos + keyword.len()..];
        let candidate: String = rest
            .split_whitespace()
            .next()?
            .trim_matches(['?', '!', '.', ','].as_ref())
            .to_string();
        if candidate.is_empty() {
            None
        } else {
            Some(candidate)
        }
    }

    fn artist_value(&self) -> Option<String> {
        if !self.lower.contains("paint") {
            return None;
        }
        let marker_pos = self
            .lower
            .find("painted by ")
            .map(|p| p + "painted by ".len())
            .or_else(|| self.lower.find(" by ").map(|p| p + " by ".len()))
            .or_else(|| self.lower.find("did ").map(|p| p + "did ".len()))?;
        let rest = &self.query[marker_pos..];
        let words: Vec<&str> = rest
            .split_whitespace()
            .take_while(|w| w.chars().next().map(|c| c.is_uppercase()).unwrap_or(false))
            .collect();
        if words.is_empty() {
            None
        } else {
            Some(
                words
                    .join(" ")
                    .trim_matches(['?', '!', '.', ','].as_ref())
                    .to_string(),
            )
        }
    }

    fn subject_name_value(&self, existing: &[FilterIntent]) -> Option<String> {
        // Only for queries about one specific subject, not "each team" queries.
        if self.group_phrase().is_some() {
            return None;
        }
        let has_name_column = self
            .tables
            .iter()
            .any(|t| !t.is_multimodal() && t.has_column("name"));
        if !has_name_column {
            return None;
        }
        let taken: Vec<String> = existing.iter().map(|f| f.value.to_lowercase()).collect();
        let words: Vec<&str> = self.query.split_whitespace().collect();
        for (i, word) in words.iter().enumerate() {
            if i == 0 {
                continue; // sentence-initial capitalization
            }
            let cleaned = word.trim_matches(['?', '!', '.', ',', '\''].as_ref());
            if cleaned.is_empty() || !cleaned.chars().next().unwrap().is_uppercase() {
                continue;
            }
            let lowered = cleaned.to_lowercase();
            if NON_VALUE_WORDS.contains(&lowered.as_str())
                || taken.contains(&lowered)
                || lowered == "usa"
                || self.is_column_word(&lowered)
            {
                continue;
            }
            // Skip values already consumed by other filters (e.g. "Impressionism").
            if existing
                .iter()
                .any(|f| f.value.eq_ignore_ascii_case(cleaned))
            {
                continue;
            }
            return Some(cleaned.to_string());
        }
        None
    }

    fn is_column_word(&self, word: &str) -> bool {
        self.tables.iter().any(|t| {
            t.columns
                .iter()
                .any(|c| singular(&c.name.to_lowercase()) == singular(word))
        })
    }

    fn numeric_comparison(&self) -> Option<(AttributeRef, FilterOp, String)> {
        let (marker, op) = if self.lower.contains("taller than") {
            ("taller than", FilterOp::Gt)
        } else if self.lower.contains("more than") {
            ("more than", FilterOp::Gt)
        } else if self.lower.contains("less than") {
            ("less than", FilterOp::Lt)
        } else {
            return None;
        };
        let pos = self.lower.find(marker)?;
        let rest = &self.lower[pos + marker.len()..];
        let number: String = rest
            .chars()
            .skip_while(|c| !c.is_ascii_digit())
            .take_while(|c| c.is_ascii_digit())
            .collect();
        if number.is_empty() {
            return None;
        }
        let column = if marker == "taller than" {
            self.numeric_column_hint("tall")?
        } else {
            self.find_column_in_phrase(rest)?
        };
        Some((column, op, number))
    }

    fn projection(&self, main_table: &str) -> Vec<AttributeRef> {
        let q = &self.lower;
        if !(q.starts_with("list") || q.starts_with("show")) {
            return Vec::new();
        }
        // Columns mentioned before "of all" / "of the".
        let head = q
            .split(" of all ")
            .next()
            .unwrap_or(q)
            .split(" of the ")
            .next()
            .unwrap_or(q);
        let mut out = Vec::new();
        for table in self.tables {
            if table.is_multimodal() {
                continue;
            }
            for column in &table.columns {
                let name = column.name.to_lowercase();
                if name == "img_path" || name == "game_id" {
                    continue;
                }
                let mentioned = head
                    .split(|c: char| !c.is_alphanumeric())
                    .any(|w| !w.is_empty() && singular(w) == singular(&name));
                if mentioned {
                    out.push(AttributeRef::Column {
                        table: table.name.clone(),
                        column: column.name.clone(),
                    });
                }
            }
        }
        // Prefer columns of the main table when the same column name exists in
        // several tables.
        out.sort_by_key(|attr| match attr {
            AttributeRef::Column { table, .. } if table == main_table => 0,
            _ => 1,
        });
        out.dedup_by(|a, b| match (&a, &b) {
            (AttributeRef::Column { column: ca, .. }, AttributeRef::Column { column: cb, .. }) => {
                ca == cb
            }
            _ => false,
        });
        out
    }

    fn column_ref(&self, column: &str) -> Option<AttributeRef> {
        for table in self.tables {
            if table.is_multimodal() {
                continue;
            }
            if table.has_column(column) {
                return Some(AttributeRef::Column {
                    table: table.name.clone(),
                    column: column.to_string(),
                });
            }
        }
        None
    }

    fn image_table(&self) -> Option<&TableSketch> {
        self.tables.iter().find(|t| !t.image_columns().is_empty())
    }

    fn text_table(&self) -> Option<&TableSketch> {
        self.tables.iter().find(|t| !t.text_columns().is_empty())
    }
}

/// Strip articles, verbs, and generic nouns from a depiction phrase, keeping
/// the entity ("the number of swords depicted on the paintings" → "swords").
fn strip_depiction_words(phrase: &str) -> String {
    const STOP: &[&str] = &[
        "a",
        "an",
        "the",
        "of",
        "on",
        "in",
        "is",
        "are",
        "at",
        "least",
        "any",
        "number",
        "depicted",
        "depicting",
        "painting",
        "paintings",
        "image",
        "images",
        "photo",
        "photos",
        "station",
        "stations",
        "archive",
        "shown",
        "visible",
        "each",
        "every",
        "all",
        "that",
        "there",
        "one",
        "two",
        "three",
        "four",
        "five",
        "six",
    ];
    let mut words: Vec<&str> = phrase
        .split(|c: char| !c.is_alphanumeric())
        .filter(|w| !w.is_empty())
        .filter(|w| !STOP.contains(&w.to_lowercase().as_str()))
        .filter(|w| w.parse::<i64>().is_err())
        .collect();
    // "madonna and child" keeps the "and"; re-insert it for two-entity phrases.
    let joined = if words.len() == 2 && phrase.contains(&format!("{} and {}", words[0], words[1])) {
        format!("{} and {}", words[0], words[1])
    } else {
        std::mem::take(&mut words).join(" ")
    };
    joined.trim().to_string()
}

/// Naive singularization used for matching nouns to table/column names.
pub fn singular(word: &str) -> String {
    let w = word.to_lowercase();
    if w.ends_with("ies") && w.len() > 4 {
        format!("{}y", &w[..w.len() - 3])
    } else if w.ends_with('s') && !w.ends_with("ss") && w.len() > 3 {
        w[..w.len() - 1].to_string()
    } else {
        w
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::{ColumnSketch, TableSketch};

    fn artwork_tables() -> Vec<TableSketch> {
        vec![
            TableSketch {
                name: "paintings_metadata".into(),
                num_rows: 150,
                columns: [
                    "title",
                    "artist",
                    "inception",
                    "movement",
                    "genre",
                    "img_path",
                ]
                .iter()
                .map(|n| ColumnSketch {
                    name: n.to_string(),
                    dtype: "str".into(),
                })
                .collect(),
                description: "Metadata about paintings".into(),
                foreign_keys: vec![],
            },
            TableSketch {
                name: "painting_images".into(),
                num_rows: 150,
                columns: vec![
                    ColumnSketch {
                        name: "img_path".into(),
                        dtype: "str".into(),
                    },
                    ColumnSketch {
                        name: "image".into(),
                        dtype: "IMAGE".into(),
                    },
                ],
                description: "Painting images".into(),
                foreign_keys: vec![],
            },
        ]
    }

    fn rotowire_tables() -> Vec<TableSketch> {
        let mk = |name: &str, cols: Vec<(&str, &str)>| TableSketch {
            name: name.into(),
            num_rows: 10,
            columns: cols
                .into_iter()
                .map(|(n, t)| ColumnSketch {
                    name: n.into(),
                    dtype: t.into(),
                })
                .collect(),
            description: String::new(),
            foreign_keys: vec![],
        };
        vec![
            mk(
                "teams",
                vec![
                    ("name", "str"),
                    ("city", "str"),
                    ("conference", "str"),
                    ("division", "str"),
                    ("founded", "int"),
                ],
            ),
            mk(
                "players",
                vec![
                    ("name", "str"),
                    ("team", "str"),
                    ("height_cm", "int"),
                    ("nationality", "str"),
                    ("position", "str"),
                ],
            ),
            mk("team_to_games", vec![("name", "str"), ("game_id", "int")]),
            mk("game_reports", vec![("game_id", "int"), ("report", "TEXT")]),
        ]
    }

    #[test]
    fn figure1_query_is_a_multimodal_plot_with_century_grouping() {
        let intent = analyze(
            "Plot the number of paintings depicting Madonna and Child for each century!",
            &artwork_tables(),
        );
        assert_eq!(intent.output, OutputKind::Plot);
        assert_eq!(intent.main_table, "paintings_metadata");
        assert!(matches!(
            intent.group_by,
            Some(AttributeRef::DerivedCentury { .. })
        ));
        assert_eq!(
            intent.aggregate.as_ref().map(|a| a.func),
            Some(AggKind::Count)
        );
        assert!(intent
            .filters
            .iter()
            .any(|f| matches!(&f.attribute, AttributeRef::ImageDepicts { entity } if entity == "madonna and child")));
        assert!(intent.is_multimodal());
    }

    #[test]
    fn figure4_query2_counts_swords_per_century() {
        let intent = analyze(
            "Plot the maximum number of swords depicted on the paintings of each century.",
            &artwork_tables(),
        );
        assert_eq!(intent.output, OutputKind::Plot);
        assert!(matches!(
            intent.group_by,
            Some(AttributeRef::DerivedCentury { .. })
        ));
        let agg = intent.aggregate.unwrap();
        assert_eq!(agg.func, AggKind::Max);
        assert!(
            matches!(&agg.target, AttributeRef::ImageCount { entity } if entity == "sword" || entity == "swords"),
            "unexpected target {:?}",
            agg.target
        );
    }

    #[test]
    fn figure4_query1_is_a_text_stat_grouped_by_team() {
        let intent = analyze(
            "For every team, what is the highest number of points they scored in a game?",
            &rotowire_tables(),
        );
        assert_eq!(intent.output, OutputKind::Table);
        assert_eq!(intent.main_table, "teams");
        let agg = intent.aggregate.unwrap();
        assert_eq!(agg.func, AggKind::Max);
        assert!(matches!(&agg.target, AttributeRef::TextStat { stat } if stat == "points"));
        assert!(
            matches!(
                intent.group_by,
                Some(AttributeRef::Column { ref column, .. }) if column == "name" || column == "team"
            ) || intent.group_by.is_some()
        );
    }

    #[test]
    fn relational_count_queries_stay_relational() {
        let intent = analyze("How many paintings are in the museum?", &artwork_tables());
        assert_eq!(intent.output, OutputKind::SingleValue);
        assert_eq!(
            intent.aggregate.as_ref().map(|a| a.func),
            Some(AggKind::Count)
        );
        assert!(matches!(
            intent.aggregate.as_ref().unwrap().target,
            AttributeRef::RowCount
        ));
        assert!(!intent.is_multimodal());

        let intent = analyze(
            "How many paintings belong to the Impressionism movement?",
            &artwork_tables(),
        );
        assert!(!intent.is_multimodal());
        assert_eq!(intent.filters.len(), 1);
        assert_eq!(intent.filters[0].value, "Impressionism");
    }

    #[test]
    fn earliest_year_requires_python_derivation() {
        let intent = analyze(
            "What is the earliest inception year of any painting?",
            &artwork_tables(),
        );
        assert!(!intent.is_multimodal());
        let agg = intent.aggregate.unwrap();
        assert_eq!(agg.func, AggKind::Min);
        assert!(matches!(agg.target, AttributeRef::DerivedYear { .. }));
    }

    #[test]
    fn artist_filter_is_extracted() {
        let intent = analyze(
            "How many paintings did Clara Moreau paint?",
            &artwork_tables(),
        );
        assert!(intent.filters.iter().any(
            |f| matches!(&f.attribute, AttributeRef::Column { column, .. } if column == "artist")
                && f.value == "Clara Moreau"
        ));
    }

    #[test]
    fn at_least_two_swords_becomes_a_count_filter() {
        let intent = analyze(
            "How many paintings depict at least two swords?",
            &artwork_tables(),
        );
        assert!(intent.filters.iter().any(|f| {
            matches!(&f.attribute, AttributeRef::ImageCount { entity } if entity.contains("sword"))
                && f.op == FilterOp::GtEq
                && f.value == "2"
        }));
    }

    #[test]
    fn list_queries_produce_projections() {
        let intent = analyze(
            "List the title and artist of all paintings of the Renaissance movement.",
            &artwork_tables(),
        );
        assert_eq!(intent.output, OutputKind::Table);
        assert_eq!(intent.projection.len(), 2);
        assert!(intent.filters.iter().any(|f| f.value == "Renaissance"));

        let intent = analyze(
            "List the titles of all paintings that depict a horse.",
            &artwork_tables(),
        );
        assert_eq!(intent.projection.len(), 1);
        assert!(intent.filters.iter().any(
            |f| matches!(&f.attribute, AttributeRef::ImageDepicts { entity } if entity == "horse")
        ));
    }

    #[test]
    fn rotowire_relational_queries() {
        let intent = analyze(
            "How many teams are in the Eastern conference?",
            &rotowire_tables(),
        );
        assert_eq!(intent.main_table, "teams");
        assert!(intent.filters.iter().any(|f| f.value == "Eastern"));
        assert!(!intent.is_multimodal());

        let intent = analyze(
            "What is the height of the tallest player?",
            &rotowire_tables(),
        );
        let agg = intent.aggregate.as_ref().unwrap();
        assert_eq!(agg.func, AggKind::Max);
        assert!(
            matches!(&agg.target, AttributeRef::Column { column, .. } if column == "height_cm")
        );

        let intent = analyze(
            "For each position, what is the average height of the players?",
            &rotowire_tables(),
        );
        assert_eq!(intent.aggregate.as_ref().unwrap().func, AggKind::Avg);
        assert!(matches!(
            intent.group_by,
            Some(AttributeRef::Column { ref column, .. }) if column == "position"
        ));
    }

    #[test]
    fn team_specific_text_queries_add_a_name_filter() {
        let intent = analyze(
            "What is the highest number of points the Heat scored in a game?",
            &rotowire_tables(),
        );
        let agg = intent.aggregate.as_ref().unwrap();
        assert_eq!(agg.func, AggKind::Max);
        assert!(matches!(&agg.target, AttributeRef::TextStat { stat } if stat == "points"));
        assert!(intent.filters.iter().any(|f| f.value == "Heat"
            && matches!(&f.attribute, AttributeRef::Column { column, .. } if column == "name")));
    }

    #[test]
    fn games_lost_query_resolves_to_text_outcome() {
        let intent = analyze("How many games did each team lose?", &rotowire_tables());
        let agg = intent.aggregate.unwrap();
        assert!(matches!(
            agg.target,
            AttributeRef::TextOutcome { win: false }
        ));
        assert!(intent.group_by.is_some());
    }

    #[test]
    fn taller_than_comparison() {
        let intent = analyze(
            "How many players are taller than 200 cm?",
            &rotowire_tables(),
        );
        assert!(intent.filters.iter().any(|f| {
            f.op == FilterOp::Gt
                && f.value == "200"
                && matches!(&f.attribute, AttributeRef::Column { column, .. } if column == "height_cm")
        }));
    }

    #[test]
    fn attribute_column_names_are_stable() {
        assert_eq!(
            AttributeRef::ImageCount {
                entity: "sword".into()
            }
            .column_name(),
            "num_sword"
        );
        assert_eq!(
            AttributeRef::ImageDepicts {
                entity: "madonna and child".into()
            }
            .column_name(),
            "madonna_and_child_depicted"
        );
        assert_eq!(
            AttributeRef::TextStat {
                stat: "points".into()
            }
            .column_name(),
            "points_scored"
        );
        assert_eq!(
            AttributeRef::TextOutcome { win: false }.column_name(),
            "lost_game"
        );
    }

    #[test]
    fn singular_helper() {
        assert_eq!(singular("paintings"), "painting");
        assert_eq!(singular("centuries"), "century");
        assert_eq!(singular("glass"), "glass");
        assert_eq!(singular("Teams"), "team");
    }
}
