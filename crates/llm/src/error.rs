//! Error type for the LLM substrate.

use std::fmt;

/// Result alias for the llm crate.
pub type LlmResult<T> = Result<T, LlmError>;

/// Errors raised while prompting a language model or parsing its output.
#[derive(Debug, Clone, PartialEq)]
pub enum LlmError {
    /// The model produced output that does not follow the requested format.
    MalformedResponse {
        /// Which phase the response belonged to.
        phase: String,
        /// Description of the parsing problem.
        message: String,
        /// The offending response text (possibly truncated).
        response: String,
    },
    /// The prompt itself was missing information the model needs.
    MalformedPrompt {
        /// Description of the problem.
        message: String,
    },
    /// The (simulated) model could not produce an answer at all.
    ModelFailure {
        /// Model name.
        model: String,
        /// Description of the failure.
        message: String,
    },
    /// The dispatch was interrupted by a [`CancelToken`](crate::CancelToken)
    /// (explicit cancel or deadline expiry) before a response arrived.
    /// Returned by the `*_cancellable` transport methods; never produced by
    /// a model itself.
    Cancelled,
}

impl LlmError {
    /// Convenience constructor for [`LlmError::MalformedResponse`].
    pub fn malformed_response(
        phase: impl Into<String>,
        message: impl Into<String>,
        response: impl Into<String>,
    ) -> Self {
        let mut response = response.into();
        if response.len() > 400 {
            response.truncate(400);
        }
        LlmError::MalformedResponse {
            phase: phase.into(),
            message: message.into(),
            response,
        }
    }
}

impl fmt::Display for LlmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LlmError::MalformedResponse {
                phase,
                message,
                response,
            } => write!(
                f,
                "the language model response for the {phase} phase could not be parsed: {message} \
                 (response was: '{response}')"
            ),
            LlmError::MalformedPrompt { message } => {
                write!(f, "malformed prompt: {message}")
            }
            LlmError::ModelFailure { model, message } => {
                write!(f, "model '{model}' failed: {message}")
            }
            LlmError::Cancelled => {
                write!(f, "the dispatch was cancelled before the model responded")
            }
        }
    }
}

impl std::error::Error for LlmError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn malformed_response_truncates_long_responses() {
        let long = "x".repeat(1000);
        let err = LlmError::malformed_response("planning", "no steps found", long);
        match err {
            LlmError::MalformedResponse { response, .. } => assert!(response.len() <= 400),
            _ => panic!("wrong variant"),
        }
    }

    #[test]
    fn display_contains_phase_and_reason() {
        let err = LlmError::malformed_response("mapping", "missing Operator line", "...");
        let text = err.to_string();
        assert!(text.contains("mapping"));
        assert!(text.contains("missing Operator line"));
    }
}
