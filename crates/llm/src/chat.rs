//! Chat-style conversations: the wire format between CAESURA and the LLM.
//!
//! Every phase of CAESURA builds a [`Conversation`] of system / human messages
//! (Figure 3 of the paper shows the planning and mapping conversations) and
//! receives a free-text completion back. Keeping this as plain text — rather
//! than passing structured data to the simulated model — preserves the
//! architecture of the original system: all information must flow through the
//! prompt, and all decisions must be parsed back out of text.

use std::fmt;

/// The author of a chat message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Role {
    /// The system prompt (instructions, data descriptions, output format).
    System,
    /// The human/user turn (the request).
    Human,
    /// A previous model answer (used when feeding observations back).
    Assistant,
}

impl fmt::Display for Role {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            Role::System => "System",
            Role::Human => "Human",
            Role::Assistant => "Assistant",
        };
        f.write_str(name)
    }
}

/// A single chat message.
#[derive(Debug, Clone, PartialEq)]
pub struct ChatMessage {
    /// Who authored the message.
    pub role: Role,
    /// The message text.
    pub content: String,
}

impl ChatMessage {
    /// A system message.
    pub fn system(content: impl Into<String>) -> Self {
        ChatMessage {
            role: Role::System,
            content: content.into(),
        }
    }

    /// A human message.
    pub fn human(content: impl Into<String>) -> Self {
        ChatMessage {
            role: Role::Human,
            content: content.into(),
        }
    }

    /// An assistant message.
    pub fn assistant(content: impl Into<String>) -> Self {
        ChatMessage {
            role: Role::Assistant,
            content: content.into(),
        }
    }
}

/// An ordered list of chat messages.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Conversation {
    messages: Vec<ChatMessage>,
}

impl Conversation {
    /// An empty conversation.
    pub fn new() -> Self {
        Conversation::default()
    }

    /// Append a message (builder style).
    pub fn with(mut self, message: ChatMessage) -> Self {
        self.messages.push(message);
        self
    }

    /// Append a message in place.
    pub fn push(&mut self, message: ChatMessage) {
        self.messages.push(message);
    }

    /// All messages in order.
    pub fn messages(&self) -> &[ChatMessage] {
        &self.messages
    }

    /// Concatenated content of all system messages.
    pub fn system_text(&self) -> String {
        self.join_role(Role::System)
    }

    /// Concatenated content of all human messages.
    pub fn human_text(&self) -> String {
        self.join_role(Role::Human)
    }

    /// Concatenated content of all assistant messages.
    pub fn assistant_text(&self) -> String {
        self.join_role(Role::Assistant)
    }

    fn join_role(&self, role: Role) -> String {
        self.messages
            .iter()
            .filter(|m| m.role == role)
            .map(|m| m.content.as_str())
            .collect::<Vec<_>>()
            .join("\n")
    }

    /// A rough token count (whitespace-separated words), used to report
    /// prompt sizes in benchmarks and traces.
    pub fn approx_tokens(&self) -> usize {
        self.messages
            .iter()
            .map(|m| m.content.split_whitespace().count())
            .sum()
    }

    /// Render the full conversation as readable text (used by trace dumps and
    /// the figure3_prompts binary).
    pub fn render(&self) -> String {
        self.messages
            .iter()
            .map(|m| format!("{}: {}", m.role, m.content))
            .collect::<Vec<_>>()
            .join("\n\n")
    }
}

impl fmt::Display for Conversation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversation_collects_messages_by_role() {
        let convo = Conversation::new()
            .with(ChatMessage::system("You are CAESURA"))
            .with(ChatMessage::human("My request is: count the paintings"))
            .with(ChatMessage::assistant("Step 1: ..."));
        assert_eq!(convo.messages().len(), 3);
        assert!(convo.system_text().contains("CAESURA"));
        assert!(convo.human_text().contains("count the paintings"));
        assert!(convo.assistant_text().contains("Step 1"));
    }

    #[test]
    fn token_estimate_counts_words() {
        let convo = Conversation::new().with(ChatMessage::human("one two three"));
        assert_eq!(convo.approx_tokens(), 3);
    }

    #[test]
    fn render_labels_roles() {
        let convo = Conversation::new()
            .with(ChatMessage::system("a"))
            .with(ChatMessage::human("b"));
        let text = convo.render();
        assert!(text.contains("System: a"));
        assert!(text.contains("Human: b"));
    }
}
