//! LLM-backed perception: serve the modal layer's batched perception
//! requests through an [`LlmClient`].
//!
//! The paper's perception operators (VisualQA, TextQA, Image Select) are
//! neural models behind one-call-per-input APIs. This adapter makes any
//! [`LlmClient`] usable as a [`PerceptionBackend`]: each
//! [`PerceptionRequest`] of a batch is rendered into a [`Conversation`]
//! (document or image annotation plus the question), the whole batch is
//! served with **one** [`LlmClient::complete_batch`] round trip, and the raw
//! text answers flow back to the operator layer, which coerces them into the
//! declared result type.
//!
//! Combined with `modal::batch`'s dedup, a duplicate-heavy workload costs
//! one LLM completion per *unique* `(input, question)` pair — wrap the
//! client in [`CountingLlm`](crate::CountingLlm) to observe the saved calls.

use crate::chat::{ChatMessage, Conversation};
use crate::client::LlmClient;
use caesura_engine::Value;
use caesura_modal::{
    ModalError, ModalResult, PerceptionBackend, PerceptionInput, PerceptionRequest,
};

/// An [`LlmClient`]-backed perception model.
pub struct PerceptionLlm<C> {
    client: C,
}

impl<C: LlmClient> PerceptionLlm<C> {
    /// Wrap a client.
    pub fn new(client: C) -> Self {
        PerceptionLlm { client }
    }

    /// Access the wrapped client (e.g. to read a `CountingLlm`'s usage).
    pub fn inner(&self) -> &C {
        &self.client
    }

    /// Render one perception request as a chat conversation.
    fn conversation(request: &PerceptionRequest) -> Conversation {
        let (modality, input) = match &request.input {
            PerceptionInput::Document(text) => ("document", text.to_string()),
            // The annotation caption plays the role of the image pixels; the
            // key keeps distinct images distinguishable for the model.
            PerceptionInput::Image(image) => {
                ("image", format!("{} ({})", image.caption(), image.key))
            }
        };
        Conversation::new()
            .with(ChatMessage::system(format!(
                "You are a perception model. Answer the question about the {modality} with a \
                 single short value (a number, yes/no, or a short phrase). Do not explain."
            )))
            .with(ChatMessage::human(format!(
                "The {modality} is:\n{input}\n\nQuestion: {}",
                request.question
            )))
    }
}

impl<C: LlmClient> PerceptionBackend for PerceptionLlm<C> {
    fn answer_batch(&self, requests: &[PerceptionRequest]) -> Vec<ModalResult<Value>> {
        let conversations: Vec<Conversation> = requests.iter().map(Self::conversation).collect();
        self.client
            .complete_batch(&conversations)
            .into_iter()
            .map(|result| match result {
                Ok(text) => Ok(Value::str(text.trim())),
                Err(e) => Err(ModalError::Engine(caesura_engine::EngineError::execution(
                    format!("perception model '{}' failed: {e}", self.client.name()),
                ))),
            })
            .collect()
    }

    /// Answers depend on the wrapped model and this adapter's prompt
    /// rendering; bump the `v1` on prompt-format changes so stored answers
    /// go cold instead of going stale.
    fn identity(&self) -> String {
        format!("llm:{}:v1", self.client.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::{CountingLlm, ScriptedLlm};
    use caesura_modal::ImageObject;

    fn doc_request(doc: &str, question: &str) -> PerceptionRequest {
        PerceptionRequest {
            input: PerceptionInput::Document(doc.into()),
            question: question.to_string(),
        }
    }

    #[test]
    fn batches_are_served_with_one_dispatch() {
        let llm = PerceptionLlm::new(CountingLlm::new(ScriptedLlm::new(vec![
            "102".into(),
            "110".into(),
        ])));
        let answers = llm.answer_batch(&[
            doc_request("report", "How many points did Heat score?"),
            doc_request("report", "How many points did Spurs score?"),
        ]);
        assert_eq!(answers[0].as_ref().unwrap(), &Value::str("102"));
        assert_eq!(answers[1].as_ref().unwrap(), &Value::str("110"));
        let usage = llm.inner().usage();
        assert_eq!(usage.calls, 2);
        assert_eq!(usage.batches, 1);
    }

    #[test]
    fn failures_surface_as_execution_errors() {
        let llm = PerceptionLlm::new(ScriptedLlm::new(vec![]));
        let answers = llm.answer_batch(&[doc_request("report", "Who won?")]);
        let err = answers[0].as_ref().unwrap_err();
        assert!(err.to_string().contains("perception model"));
        assert!(err.to_string().contains("scripted"));
    }

    #[test]
    fn image_requests_render_the_annotation_caption() {
        let request = PerceptionRequest {
            input: PerceptionInput::Image(ImageObject::new("img/1.png").with_object("sword", 2)),
            question: "How many swords are depicted?".into(),
        };
        let convo = PerceptionLlm::<ScriptedLlm>::conversation(&request);
        let text = convo.render();
        assert!(text.contains("2 swords"));
        assert!(text.contains("img/1.png"));
        assert!(text.contains("How many swords"));
    }
}
