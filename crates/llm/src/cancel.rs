//! Cooperative cancellation for LLM dispatch.
//!
//! A [`CancelToken`] is shared between the submitter of a query (which may
//! request cancellation) and the transport that carries its LLM calls (which
//! observes it). Before PR 8, cancellation was checked only *between*
//! dispatches, so a cancel issued while a slow model call was in flight had
//! to wait for the full round trip; threading the token into
//! [`LlmClient::complete_cancellable`](crate::LlmClient::complete_cancellable)
//! lets a transport abort mid-dispatch with [`LlmError::Cancelled`](crate::LlmError::Cancelled)
//! (crate::LlmError::Cancelled), bounding cancellation latency by the
//! transport's own polling interval instead.
//!
//! A token optionally carries a **deadline**: an absolute instant after which
//! it reports itself cancelled without anyone calling
//! [`cancel`](CancelToken::cancel). There is no timer thread — expiry is
//! evaluated lazily at every [`is_cancelled`](CancelToken::is_cancelled) /
//! [`status`](CancelToken::status) check, which is exactly where the serving
//! layer already polls.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Why (or whether) a [`CancelToken`] reports cancellation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CancelStatus {
    /// Not cancelled: the query should keep running.
    Active,
    /// [`CancelToken::cancel`] was called (the submitter asked to stop).
    Cancelled,
    /// The token's deadline passed before the query completed.
    DeadlineExpired,
}

struct TokenInner {
    cancelled: AtomicBool,
    deadline: Option<Instant>,
}

/// A cloneable cancellation token observed by queries and LLM transports.
///
/// Cancellation is **cooperative**: setting the flag never interrupts a
/// thread, it is observed at checkpoints (between plan steps, before each
/// dispatch) and — since PR 8 — inside cancellation-aware transports while a
/// dispatch is in flight. Clones share the same flag and deadline.
#[derive(Clone)]
pub struct CancelToken {
    inner: Arc<TokenInner>,
}

impl CancelToken {
    /// A fresh token with no deadline.
    pub fn new() -> Self {
        CancelToken {
            inner: Arc::new(TokenInner {
                cancelled: AtomicBool::new(false),
                deadline: None,
            }),
        }
    }

    /// A fresh token that reports [`CancelStatus::DeadlineExpired`] once
    /// `deadline` has passed.
    pub fn with_deadline(deadline: Instant) -> Self {
        CancelToken {
            inner: Arc::new(TokenInner {
                cancelled: AtomicBool::new(false),
                deadline: Some(deadline),
            }),
        }
    }

    /// Request cancellation. Idempotent; returns immediately.
    pub fn cancel(&self) {
        self.inner.cancelled.store(true, Ordering::Release);
    }

    /// Whether [`cancel`](CancelToken::cancel) has been *requested*. Does not
    /// consider the deadline — use [`is_cancelled`](CancelToken::is_cancelled)
    /// for the effective state.
    pub fn cancel_requested(&self) -> bool {
        self.inner.cancelled.load(Ordering::Acquire)
    }

    /// Whether the query should stop: explicitly cancelled, or past the
    /// deadline.
    pub fn is_cancelled(&self) -> bool {
        self.status() != CancelStatus::Active
    }

    /// The effective cancellation state. An explicit cancel request takes
    /// precedence over deadline expiry when both hold.
    pub fn status(&self) -> CancelStatus {
        if self.inner.cancelled.load(Ordering::Acquire) {
            return CancelStatus::Cancelled;
        }
        match self.inner.deadline {
            Some(deadline) if Instant::now() >= deadline => CancelStatus::DeadlineExpired,
            _ => CancelStatus::Active,
        }
    }

    /// The absolute deadline, if this token carries one.
    pub fn deadline(&self) -> Option<Instant> {
        self.inner.deadline
    }

    /// Time left until the deadline ([`Duration::ZERO`] once expired);
    /// `None` when the token has no deadline.
    pub fn remaining(&self) -> Option<Duration> {
        self.inner
            .deadline
            .map(|deadline| deadline.saturating_duration_since(Instant::now()))
    }
}

impl Default for CancelToken {
    fn default() -> Self {
        CancelToken::new()
    }
}

impl std::fmt::Debug for CancelToken {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CancelToken")
            .field("status", &self.status())
            .field("deadline", &self.inner.deadline)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_token_is_active_and_cancel_is_sticky() {
        let token = CancelToken::new();
        assert_eq!(token.status(), CancelStatus::Active);
        assert!(!token.is_cancelled());
        assert!(!token.cancel_requested());
        assert!(token.deadline().is_none());
        assert!(token.remaining().is_none());
        token.cancel();
        token.cancel();
        assert_eq!(token.status(), CancelStatus::Cancelled);
        assert!(token.is_cancelled());
        assert!(token.cancel_requested());
    }

    #[test]
    fn clones_share_the_flag() {
        let token = CancelToken::new();
        let observer = token.clone();
        token.cancel();
        assert!(observer.is_cancelled());
    }

    #[test]
    fn deadline_expiry_reports_without_an_explicit_cancel() {
        let expired = CancelToken::with_deadline(Instant::now() - Duration::from_millis(1));
        assert_eq!(expired.status(), CancelStatus::DeadlineExpired);
        assert!(expired.is_cancelled());
        // Expiry is not a cancel *request* — the flag was never raised.
        assert!(!expired.cancel_requested());
        assert_eq!(expired.remaining(), Some(Duration::ZERO));

        let future = CancelToken::with_deadline(Instant::now() + Duration::from_secs(3600));
        assert_eq!(future.status(), CancelStatus::Active);
        assert!(future.remaining().expect("has deadline") > Duration::from_secs(3000));
    }

    #[test]
    fn explicit_cancel_takes_precedence_over_expiry() {
        let token = CancelToken::with_deadline(Instant::now() - Duration::from_millis(1));
        token.cancel();
        assert_eq!(token.status(), CancelStatus::Cancelled);
    }
}
