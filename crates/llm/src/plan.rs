//! Plan representations and the textual grammar used in prompts.
//!
//! The logical plan is "a description (in natural language) of the individual
//! steps" (§3); the mapping phase then assigns one physical operator and its
//! arguments to each step. Both directions pass through *text*: the model is
//! instructed to answer in a fixed output format (Figure 3), and CAESURA
//! parses that text back. This module holds the structured types plus the
//! render / parse functions for that grammar.

use crate::error::{LlmError, LlmResult};
use caesura_modal::OperatorKind;
use std::fmt;

/// One step of a logical plan.
#[derive(Debug, Clone, PartialEq)]
pub struct LogicalStep {
    /// 1-based step number.
    pub number: usize,
    /// Natural-language description of the step.
    pub description: String,
    /// Names of the input tables.
    pub inputs: Vec<String>,
    /// Name of the output table.
    pub output: String,
    /// Columns the step adds to the data.
    pub new_columns: Vec<String>,
}

impl LogicalStep {
    /// Create a step.
    pub fn new(
        number: usize,
        description: impl Into<String>,
        inputs: Vec<String>,
        output: impl Into<String>,
        new_columns: Vec<String>,
    ) -> Self {
        LogicalStep {
            number,
            description: description.into(),
            inputs,
            output: output.into(),
            new_columns,
        }
    }
}

/// A logical plan: an ordered list of steps plus the model's "Thought" line.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct LogicalPlan {
    /// The model's free-form reasoning line.
    pub thought: String,
    /// The steps in execution order.
    pub steps: Vec<LogicalStep>,
}

impl LogicalPlan {
    /// Number of steps.
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// Whether the plan has no steps.
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }

    /// Render the plan in the output format requested by the planning prompt.
    pub fn render(&self) -> String {
        let mut out = String::new();
        if !self.thought.is_empty() {
            out.push_str(&format!("Thought: {}\n", self.thought));
        }
        for step in &self.steps {
            out.push_str(&format!("Step {}: {}\n", step.number, step.description));
            if !step.inputs.is_empty() {
                out.push_str(&format!("Input: {}\n", step.inputs.join(", ")));
            }
            if !step.output.is_empty() {
                out.push_str(&format!("Output: {}\n", step.output));
            }
            if step.new_columns.is_empty() {
                out.push_str("New Columns: none\n");
            } else {
                out.push_str(&format!("New Columns: {}\n", step.new_columns.join(", ")));
            }
        }
        out.push_str(&format!("Step {}: Plan completed.\n", self.steps.len() + 1));
        out
    }

    /// Parse a plan from model output text.
    pub fn parse(text: &str) -> LlmResult<LogicalPlan> {
        let mut plan = LogicalPlan::default();
        let mut current: Option<LogicalStep> = None;
        for raw_line in text.lines() {
            let line = raw_line.trim();
            if line.is_empty() {
                continue;
            }
            if let Some(rest) = line.strip_prefix("Thought:") {
                plan.thought = rest.trim().to_string();
                continue;
            }
            if let Some((step_number, description)) = parse_step_header(line) {
                // Close the previous step.
                if let Some(step) = current.take() {
                    plan.steps.push(step);
                }
                let lowered = description.to_lowercase();
                if lowered.starts_with("plan completed") || lowered.starts_with("done") {
                    current = None;
                    break;
                }
                current = Some(LogicalStep::new(
                    step_number,
                    description,
                    Vec::new(),
                    String::new(),
                    Vec::new(),
                ));
                continue;
            }
            let Some(step) = current.as_mut() else {
                continue;
            };
            if let Some(rest) = line.strip_prefix("Input:") {
                step.inputs = split_list(rest);
            } else if let Some(rest) = line.strip_prefix("Output:") {
                step.output = rest.trim().trim_matches('\'').to_string();
            } else if let Some(rest) = line
                .strip_prefix("New Columns:")
                .or_else(|| line.strip_prefix("New columns:"))
                .or_else(|| line.strip_prefix("New Column(s):"))
            {
                let rest = rest.trim();
                if rest.eq_ignore_ascii_case("none") || rest.is_empty() {
                    step.new_columns = Vec::new();
                } else {
                    step.new_columns = split_list(rest);
                }
            } else {
                // Continuation of the description.
                step.description.push(' ');
                step.description.push_str(line);
            }
        }
        if let Some(step) = current.take() {
            plan.steps.push(step);
        }
        if plan.steps.is_empty() {
            return Err(LlmError::malformed_response(
                "planning",
                "no 'Step <i>:' lines were found in the response",
                text,
            ));
        }
        Ok(plan)
    }

    /// The multiset of operator *capabilities* a plan mentions, inferred from
    /// the step descriptions. Used by the evaluation crate for logical-plan
    /// grading.
    pub fn mentioned_capabilities(&self) -> Vec<String> {
        self.steps
            .iter()
            .map(|s| {
                let d = s.description.to_lowercase();
                let words: Vec<&str> = d
                    .split(|c: char| !c.is_alphanumeric())
                    .filter(|w| !w.is_empty())
                    .collect();
                if words.contains(&"join") {
                    "join"
                } else if d.contains("plot") || d.contains("chart") || d.contains("visualiz") {
                    "plot"
                } else if d.contains("'image' column")
                    || d.contains("depicted")
                    || d.contains(" images")
                    || d.contains("each image")
                {
                    "image"
                } else if d.contains("'report' column")
                    || d.contains(" reports")
                    || d.contains("document")
                    || d.contains(" the text")
                {
                    "text"
                } else if d.contains("group")
                    || d.contains("aggregate")
                    || d.contains("maximum")
                    || d.contains("count")
                    || d.contains("average")
                    || d.contains("minimum")
                    || d.contains("sum of")
                {
                    "aggregate"
                } else if d.contains("select only")
                    || d.contains("filter")
                    || d.contains("keep only the rows")
                {
                    "filter"
                } else {
                    "transform"
                }
                .to_string()
            })
            .collect()
    }
}

impl fmt::Display for LogicalPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

fn parse_step_header(line: &str) -> Option<(usize, String)> {
    let rest = line.strip_prefix("Step ")?;
    let (number_text, description) = rest.split_once(':')?;
    let number = number_text.trim().parse::<usize>().ok()?;
    Some((number, description.trim().to_string()))
}

fn split_list(text: &str) -> Vec<String> {
    text.split(',')
        .map(|s| s.trim().trim_matches('\'').trim_matches('"').to_string())
        .filter(|s| !s.is_empty() && !s.eq_ignore_ascii_case("none"))
        .collect()
}

/// The mapping-phase decision for one logical step.
#[derive(Debug, Clone, PartialEq)]
pub struct OperatorDecision {
    /// The step number being mapped.
    pub step_number: usize,
    /// The model's reasoning line.
    pub reasoning: String,
    /// The chosen physical operator.
    pub operator: OperatorKind,
    /// The operator arguments, in order.
    pub arguments: Vec<String>,
}

impl OperatorDecision {
    /// Render the decision in the output format requested by the mapping prompt.
    pub fn render(&self, step_description: &str) -> String {
        format!(
            "Step {}: {}\nReasoning: {}\nOperator: {}\nArguments: ({})\n",
            self.step_number,
            step_description,
            self.reasoning,
            self.operator.name(),
            self.arguments.join("; ")
        )
    }

    /// Parse a decision from model output text.
    pub fn parse(text: &str) -> LlmResult<OperatorDecision> {
        let mut step_number = 1;
        let mut reasoning = String::new();
        let mut operator: Option<OperatorKind> = None;
        let mut operator_text = String::new();
        let mut arguments: Vec<String> = Vec::new();
        for raw_line in text.lines() {
            let line = raw_line.trim();
            if let Some((number, _)) = parse_step_header(line) {
                step_number = number;
            } else if let Some(rest) = line.strip_prefix("Reasoning:") {
                reasoning = rest.trim().to_string();
            } else if let Some(rest) = line.strip_prefix("Operator:") {
                operator_text = rest.trim().to_string();
                operator = OperatorKind::from_name(&operator_text);
            } else if let Some(rest) = line.strip_prefix("Arguments:") {
                arguments = split_arguments(rest);
            }
        }
        let operator = match operator {
            Some(op) => op,
            None if !operator_text.is_empty() => {
                return Err(LlmError::malformed_response(
                    "mapping",
                    format!("unknown operator '{operator_text}'"),
                    text,
                ))
            }
            None => {
                return Err(LlmError::malformed_response(
                    "mapping",
                    "no 'Operator:' line was found in the response",
                    text,
                ))
            }
        };
        Ok(OperatorDecision {
            step_number,
            reasoning,
            operator,
            arguments,
        })
    }
}

/// Whether `byte` can continue an identifier/word token.
fn is_token_byte(byte: u8) -> bool {
    byte.is_ascii_alphanumeric() || byte == b'_'
}

/// Find the closing partner of the quote that opens at byte `open`. The scan
/// honors SQL's doubled-quote escape (`''` inside a `'...'` string is a
/// literal quote, not a terminator) and skips candidates glued into a
/// following word (the apostrophe of `player's` *inside* a quoted span), so
/// it returns the quote that actually ends the string. `None` when the quote
/// never closes.
fn find_closing_quote(text: &str, open: usize) -> Option<usize> {
    let bytes = text.as_bytes();
    let quote = bytes[open];
    let mut i = open + 1;
    while i < bytes.len() {
        if bytes[i] != quote {
            i += 1;
        } else if i + 1 < bytes.len() && bytes[i + 1] == quote {
            // Doubled quote: an escaped quote character inside the string.
            i += 2;
        } else if i + 1 < bytes.len() && is_token_byte(bytes[i + 1]) {
            // Glued into the next word: an apostrophe, not a closer.
            i += 1;
        } else {
            return Some(i);
        }
    }
    None
}

/// Split an `Arguments: (a; b; c)` payload into its parts. Parentheses are
/// optional, semicolons separate arguments, and surrounding quotes are
/// stripped. The split is **quote-aware**: a `;` inside a quoted span
/// (`'...'` or `"..."`) is part of its argument, so SQL like
/// `SELECT * FROM t WHERE note = 'a; b'` survives in one piece. A quote only
/// opens a span when it starts a token (an apostrophe glued to a word —
/// `team's` — is prose) and actually closes (`find_closing_quote`); any
/// other quote is plain text, so a lone apostrophe never swallows an
/// argument boundary.
pub fn split_arguments(text: &str) -> Vec<String> {
    let trimmed = text.trim();
    let inner = trimmed
        .strip_prefix('(')
        .and_then(|s| s.rfind(')').map(|end| &s[..end]))
        .unwrap_or(trimmed);
    let mut parts: Vec<String> = Vec::new();
    let mut current = String::new();
    let bytes = inner.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        let byte = bytes[i];
        if (byte == b'\'' || byte == b'"') && !(i > 0 && is_token_byte(bytes[i - 1])) {
            if let Some(end) = find_closing_quote(inner, i) {
                current.push_str(&inner[i..=end]);
                i = end + 1;
                continue;
            }
        }
        if byte == b';' {
            parts.push(current);
            current = String::new();
            i += 1;
            continue;
        }
        let ch = inner[i..].chars().next().expect("in-bounds char");
        current.push(ch);
        i += ch.len_utf8();
    }
    parts.push(current);
    parts
        .iter()
        .map(|s| strip_matching_quotes(s.trim()).to_string())
        .filter(|s| !s.is_empty())
        .collect()
}

/// Strip one pair of surrounding quotes, but only when the quotes actually
/// pair up: the leading quote's *closing partner* must be the final
/// character. Checking first == last alone would corrupt arguments like
/// `'yes' OR status = 'no'` (first and last are both `'`, but the leading
/// quote closes after `yes`). The partner search is escape-aware, so a
/// string using SQL's doubled-quote escape (`'it''s'`) still sheds its
/// surrounding quotes.
fn strip_matching_quotes(text: &str) -> &str {
    let bytes = text.as_bytes();
    if bytes.len() >= 2 {
        let first = bytes[0];
        if (first == b'\'' || first == b'"') && find_closing_quote(text, 0) == Some(text.len() - 1)
        {
            return text[1..text.len() - 1].trim();
        }
    }
    text
}

/// The parsed answers of the error-analysis prompt (§3.2's six questions).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ErrorAnalysis {
    /// Answer to "What are the potential causes of this error?".
    pub causes: String,
    /// Answer to "Explain in detail how this error could be fixed.".
    pub fix: String,
    /// Answer to "Is there a flaw in my plan?" — backtrack to planning if true.
    pub plan_flawed: bool,
    /// Answer to "Is there a more suitable alternative plan?".
    pub alternative_plan: bool,
    /// Answer to "Should a different tool be selected for any step?".
    pub different_tool: bool,
    /// Answer to "Do the input arguments of some of the steps need to be updated?".
    pub update_arguments: bool,
}

impl ErrorAnalysis {
    /// Whether CAESURA should backtrack all the way to the planning phase
    /// (questions 3 + 4 of §3.2); otherwise it retries the mapping phase.
    pub fn should_replan(&self) -> bool {
        self.plan_flawed || self.alternative_plan
    }

    /// Render in the expected output format.
    pub fn render(&self) -> String {
        format!(
            "Potential causes: {}\nSuggested fix: {}\nFlaw in plan: {}\nAlternative plan: {}\nDifferent tool: {}\nUpdate arguments: {}\n",
            self.causes,
            self.fix,
            yes_no(self.plan_flawed),
            yes_no(self.alternative_plan),
            yes_no(self.different_tool),
            yes_no(self.update_arguments),
        )
    }

    /// Parse from model output text.
    pub fn parse(text: &str) -> LlmResult<ErrorAnalysis> {
        let mut analysis = ErrorAnalysis::default();
        let mut any = false;
        for raw_line in text.lines() {
            let line = raw_line.trim();
            if let Some(rest) = line.strip_prefix("Potential causes:") {
                analysis.causes = rest.trim().to_string();
                any = true;
            } else if let Some(rest) = line.strip_prefix("Suggested fix:") {
                analysis.fix = rest.trim().to_string();
                any = true;
            } else if let Some(rest) = line.strip_prefix("Flaw in plan:") {
                analysis.plan_flawed = parse_yes(rest);
                any = true;
            } else if let Some(rest) = line.strip_prefix("Alternative plan:") {
                analysis.alternative_plan = parse_yes(rest);
                any = true;
            } else if let Some(rest) = line.strip_prefix("Different tool:") {
                analysis.different_tool = parse_yes(rest);
                any = true;
            } else if let Some(rest) = line.strip_prefix("Update arguments:") {
                analysis.update_arguments = parse_yes(rest);
                any = true;
            }
        }
        if !any {
            return Err(LlmError::malformed_response(
                "error-analysis",
                "none of the expected answer lines were found",
                text,
            ));
        }
        Ok(analysis)
    }
}

fn yes_no(value: bool) -> &'static str {
    if value {
        "Yes"
    } else {
        "No"
    }
}

fn parse_yes(text: &str) -> bool {
    text.trim().to_lowercase().starts_with('y')
}

#[cfg(test)]
mod tests {
    use super::*;

    fn figure4_plan() -> LogicalPlan {
        LogicalPlan {
            thought: "I need to join the metadata with the images, inspect them, and plot.".into(),
            steps: vec![
                LogicalStep::new(
                    1,
                    "Join the 'paintings_metadata' and 'painting_images' tables on the 'img_path' column.",
                    vec!["paintings_metadata".into(), "painting_images".into()],
                    "joined_table",
                    vec![],
                ),
                LogicalStep::new(
                    2,
                    "Extract the number of swords depicted in each image from the 'image' column in the 'joined_table'.",
                    vec!["joined_table".into()],
                    "joined_table",
                    vec!["num_swords".into()],
                ),
            ],
        }
    }

    #[test]
    fn logical_plan_round_trips_through_text() {
        let plan = figure4_plan();
        let text = plan.render();
        assert!(text.contains("Step 1:"));
        assert!(text.contains("Plan completed."));
        let parsed = LogicalPlan::parse(&text).unwrap();
        assert_eq!(parsed.steps.len(), 2);
        assert_eq!(parsed.steps[0].inputs.len(), 2);
        assert_eq!(parsed.steps[1].new_columns, vec!["num_swords"]);
        assert_eq!(parsed.thought, plan.thought);
    }

    #[test]
    fn parse_tolerates_extra_prose_and_missing_fields() {
        let text = "Sure! Here is the plan.\nThought: simple\nStep 1: Count the paintings.\nStep 2: Plan completed.";
        let plan = LogicalPlan::parse(text).unwrap();
        assert_eq!(plan.steps.len(), 1);
        assert!(plan.steps[0].inputs.is_empty());
    }

    #[test]
    fn parse_rejects_step_free_responses() {
        let err = LogicalPlan::parse("I cannot help with that.").unwrap_err();
        assert!(matches!(err, LlmError::MalformedResponse { .. }));
    }

    #[test]
    fn operator_decision_round_trips() {
        let decision = OperatorDecision {
            step_number: 2,
            reasoning: "The step asks about image content, so VisualQA is needed.".into(),
            operator: OperatorKind::VisualQa,
            arguments: vec![
                "image".into(),
                "num_swords".into(),
                "How many swords are depicted?".into(),
                "int".into(),
            ],
        };
        let text = decision.render("Extract the number of swords.");
        let parsed = OperatorDecision::parse(&text).unwrap();
        assert_eq!(parsed, decision);
    }

    #[test]
    fn operator_decision_parse_reports_unknown_operators() {
        let text = "Step 1: x\nOperator: Quantum Sort\nArguments: (a)";
        let err = OperatorDecision::parse(text).unwrap_err();
        assert!(err.to_string().contains("Quantum Sort"));
        let err = OperatorDecision::parse("Reasoning: none").unwrap_err();
        assert!(err.to_string().contains("Operator"));
    }

    #[test]
    fn argument_splitting_handles_parentheses_and_quotes() {
        assert_eq!(
            split_arguments("('image'; 'num_swords'; 'How many swords are depicted?'; 'int')"),
            vec![
                "image",
                "num_swords",
                "How many swords are depicted?",
                "int"
            ]
        );
        assert_eq!(split_arguments("a; b"), vec!["a", "b"]);
        assert_eq!(
            split_arguments("(SELECT * FROM t WHERE x = 'yes')"),
            vec!["SELECT * FROM t WHERE x = 'yes'"]
        );
    }

    #[test]
    fn argument_splitting_survives_prose_apostrophes() {
        // A lone apostrophe (possessive prose) must not pair with a quote in
        // a later argument and swallow the `;` between them.
        assert_eq!(
            split_arguments("(Summarize the team's notes; SELECT * FROM t WHERE note = 'a; b')"),
            vec![
                "Summarize the team's notes".to_string(),
                "SELECT * FROM t WHERE note = 'a; b'".to_string(),
            ]
        );
        // Two possessives in one payload still split on the real separator.
        assert_eq!(
            split_arguments("(the team's wins; the player's losses)"),
            vec!["the team's wins", "the player's losses"]
        );
    }

    #[test]
    fn argument_splitting_honors_doubled_quote_escapes() {
        // SQL's `''` escape is string content: the span covers it, and the
        // surrounding quotes are still stripped.
        assert_eq!(
            split_arguments("('it''s a test'; x)"),
            vec!["it''s a test", "x"]
        );
        assert_eq!(
            split_arguments("(SELECT * FROM t WHERE note = 'the band''s hit; live')"),
            vec!["SELECT * FROM t WHERE note = 'the band''s hit; live'"]
        );
    }

    #[test]
    fn error_analysis_round_trips_and_controls_backtracking() {
        let analysis = ErrorAnalysis {
            causes: "The selection referenced a column that does not exist.".into(),
            fix: "Use the madonna_depicted column added in step 2.".into(),
            plan_flawed: false,
            alternative_plan: false,
            different_tool: false,
            update_arguments: true,
        };
        let parsed = ErrorAnalysis::parse(&analysis.render()).unwrap();
        assert_eq!(parsed, analysis);
        assert!(!parsed.should_replan());
        let replan = ErrorAnalysis {
            plan_flawed: true,
            ..ErrorAnalysis::default()
        };
        assert!(replan.should_replan());
        assert!(ErrorAnalysis::parse("garbage").is_err());
    }

    #[test]
    fn mentioned_capabilities_summarize_the_plan() {
        let caps = figure4_plan().mentioned_capabilities();
        assert_eq!(caps, vec!["join", "image"]);
    }
}
