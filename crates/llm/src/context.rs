//! Prompt-context extraction: how the simulated model "reads" a prompt.
//!
//! A real LLM consumes the prompt text directly. The simulated model needs the
//! same information in structured form, and — to keep the architecture honest —
//! it obtains it by *parsing the prompt text*, not by receiving side-channel
//! data structures. This module implements that parsing: it recognizes which
//! phase a conversation belongs to and extracts the query, the table sketches,
//! the relevant columns, the step to map, previous observations, and error
//! context.

use crate::chat::Conversation;
use crate::plan::{LogicalPlan, LogicalStep};
use crate::prompt::{
    RelevantColumn, DISCOVERY_MARKER, ERROR_MARKER, MAPPING_MARKER, PLANNING_MARKER,
};

/// Which phase a prompt belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PromptKind {
    /// The planning phase (logical plan generation).
    Planning,
    /// The mapping phase (operator selection for one step).
    Mapping,
    /// The discovery phase (column relevance).
    Discovery,
    /// The error-analysis prompt.
    ErrorAnalysis,
    /// Unrecognized prompt.
    Unknown,
}

/// A column as described in a prompt.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnSketch {
    /// Column name.
    pub name: String,
    /// Type name as rendered in the prompt (`str`, `int`, `IMAGE`, `TEXT`, ...).
    pub dtype: String,
}

impl ColumnSketch {
    /// Whether the column holds a non-relational modality.
    pub fn is_multimodal(&self) -> bool {
        self.dtype == "IMAGE" || self.dtype == "TEXT"
    }
}

/// A foreign-key relationship as described in a prompt.
#[derive(Debug, Clone, PartialEq)]
pub struct ForeignKeySketch {
    /// Referencing table.
    pub from_table: String,
    /// Referencing column.
    pub from_column: String,
    /// Referenced table.
    pub to_table: String,
    /// Referenced column.
    pub to_column: String,
}

/// A table as described in a prompt.
#[derive(Debug, Clone, PartialEq)]
pub struct TableSketch {
    /// Table name.
    pub name: String,
    /// Row count as stated in the prompt.
    pub num_rows: usize,
    /// Columns in order.
    pub columns: Vec<ColumnSketch>,
    /// Description, if present.
    pub description: String,
    /// Declared foreign keys involving this table.
    pub foreign_keys: Vec<ForeignKeySketch>,
}

impl TableSketch {
    /// Whether the table has a column with this name.
    pub fn has_column(&self, name: &str) -> bool {
        self.columns
            .iter()
            .any(|c| c.name.eq_ignore_ascii_case(name))
    }

    /// Type of a column, if present.
    pub fn column_type(&self, name: &str) -> Option<&str> {
        self.columns
            .iter()
            .find(|c| c.name.eq_ignore_ascii_case(name))
            .map(|c| c.dtype.as_str())
    }

    /// Names of IMAGE-typed columns.
    pub fn image_columns(&self) -> Vec<&str> {
        self.columns
            .iter()
            .filter(|c| c.dtype == "IMAGE")
            .map(|c| c.name.as_str())
            .collect()
    }

    /// Names of TEXT-typed columns.
    pub fn text_columns(&self) -> Vec<&str> {
        self.columns
            .iter()
            .filter(|c| c.dtype == "TEXT")
            .map(|c| c.name.as_str())
            .collect()
    }

    /// Whether this table carries any non-relational modality.
    pub fn is_multimodal(&self) -> bool {
        self.columns.iter().any(ColumnSketch::is_multimodal)
    }
}

/// The error context extracted from an error-analysis prompt.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ErrorContext {
    /// The rendered logical plan.
    pub plan_text: String,
    /// The step that was being executed.
    pub step_text: String,
    /// The operator decision that failed.
    pub decision_text: String,
    /// The error message.
    pub message: String,
}

/// Everything the simulated model extracted from one prompt.
#[derive(Debug, Clone, PartialEq)]
pub struct PromptContext {
    /// Which phase the prompt belongs to.
    pub kind: PromptKind,
    /// The user query ("My request is: ...").
    pub query: String,
    /// Base tables of the data lake.
    pub tables: Vec<TableSketch>,
    /// Intermediate tables produced by previously executed steps.
    pub intermediate_tables: Vec<TableSketch>,
    /// Relevant columns listed in the prompt.
    pub relevant_columns: Vec<RelevantColumn>,
    /// The step to map (mapping prompts only).
    pub step: Option<LogicalStep>,
    /// Observations from previously executed operators.
    pub observations: Vec<String>,
    /// Error-retry note attached to a mapping prompt.
    pub retry_note: Option<String>,
    /// Error context (error-analysis prompts only).
    pub error: Option<ErrorContext>,
}

impl PromptContext {
    /// Parse a conversation into a context.
    pub fn parse(conversation: &Conversation) -> PromptContext {
        let system = conversation.system_text();
        let human = conversation.human_text();

        let kind = if system.contains(PLANNING_MARKER) {
            PromptKind::Planning
        } else if system.contains(MAPPING_MARKER) {
            PromptKind::Mapping
        } else if system.contains(DISCOVERY_MARKER) {
            PromptKind::Discovery
        } else if system.contains(ERROR_MARKER) {
            PromptKind::ErrorAnalysis
        } else {
            PromptKind::Unknown
        };

        let (base_section, intermediate_section) = split_table_sections(&system);
        let tables = parse_tables(&base_section);
        let intermediate_tables = parse_tables(&intermediate_section);

        let query = extract_after(&human, "My request is:")
            .map(|s| s.lines().next().unwrap_or("").trim().to_string())
            .unwrap_or_default();

        let relevant_columns = parse_relevant_columns(&human);
        let observations = human
            .lines()
            .filter_map(|line| line.trim().strip_prefix("Observation:"))
            .map(|s| s.trim().to_string())
            .collect();
        let retry_note = human
            .lines()
            .find(|line| line.trim().starts_with("Note: a previous attempt"))
            .map(|s| s.trim().to_string());

        let step = if kind == PromptKind::Mapping {
            parse_step_to_map(&human)
        } else {
            None
        };

        let error = if kind == PromptKind::ErrorAnalysis {
            Some(parse_error_context(&human))
        } else {
            None
        };

        PromptContext {
            kind,
            query,
            tables,
            intermediate_tables,
            relevant_columns,
            step,
            observations,
            retry_note,
            error,
        }
    }

    /// Find a base or intermediate table by name.
    pub fn find_table(&self, name: &str) -> Option<&TableSketch> {
        self.intermediate_tables
            .iter()
            .chain(self.tables.iter())
            .find(|t| t.name.eq_ignore_ascii_case(name))
    }

    /// All tables (base + intermediate).
    pub fn all_tables(&self) -> impl Iterator<Item = &TableSketch> {
        self.tables.iter().chain(self.intermediate_tables.iter())
    }

    /// The table holding an IMAGE column, if any.
    pub fn image_table(&self) -> Option<&TableSketch> {
        self.tables.iter().find(|t| !t.image_columns().is_empty())
    }

    /// The table holding a TEXT column, if any.
    pub fn text_table(&self) -> Option<&TableSketch> {
        self.tables.iter().find(|t| !t.text_columns().is_empty())
    }
}

fn split_table_sections(system: &str) -> (String, String) {
    let base_marker = if system.contains("The database contains the following tables:") {
        "The database contains the following tables:"
    } else {
        "The candidate tables are:"
    };
    let intermediate_marker = "The intermediate tables produced by previous steps are:";
    let end_markers = [
        "You have the following capabilities:",
        "You can use the following operators:",
        "Answer with one line per relevant column",
    ];
    let base_start = system.find(base_marker).map(|p| p + base_marker.len());
    let intermediate_start = system
        .find(intermediate_marker)
        .map(|p| p + intermediate_marker.len());
    let end = end_markers
        .iter()
        .filter_map(|m| system.find(m))
        .min()
        .unwrap_or(system.len());

    let base = match base_start {
        Some(start) => {
            let stop = intermediate_start
                .map(|p| p - intermediate_marker.len())
                .unwrap_or(end)
                .min(end)
                .max(start);
            system[start..stop].to_string()
        }
        None => String::new(),
    };
    let intermediate = match intermediate_start {
        Some(start) if start <= end => system[start..end].to_string(),
        _ => String::new(),
    };
    (base, intermediate)
}

/// Parse all `name = table(...)` lines of a prompt section.
pub fn parse_tables(section: &str) -> Vec<TableSketch> {
    section
        .lines()
        .filter_map(|line| parse_table_line(line.trim().trim_start_matches('-').trim()))
        .collect()
}

fn parse_table_line(line: &str) -> Option<TableSketch> {
    let (name, rest) = line.split_once(" = table(")?;
    let name = name.trim().to_string();
    let num_rows = extract_after(rest, "num_rows=")
        .and_then(|s| {
            s.chars()
                .take_while(|c| c.is_ascii_digit())
                .collect::<String>()
                .parse::<usize>()
                .ok()
        })
        .unwrap_or(0);
    let columns = extract_bracketed(rest, "columns=[")
        .map(|inner| {
            inner
                .split("', '")
                .flat_map(|piece| piece.split(", '"))
                .filter_map(|piece| {
                    let piece = piece.trim().trim_matches(['\'', ','].as_ref());
                    let (name, dtype) = piece.split_once(':')?;
                    Some(ColumnSketch {
                        name: name.trim().trim_matches('\'').to_string(),
                        dtype: dtype.trim().trim_matches('\'').to_string(),
                    })
                })
                .collect()
        })
        .unwrap_or_default();
    let description = extract_after(rest, "description='")
        .and_then(|s| s.split('\'').next())
        .unwrap_or("")
        .to_string();
    let foreign_keys = extract_bracketed(rest, "foreign_keys=[")
        .map(|inner| {
            inner
                .split(',')
                .filter_map(|piece| {
                    let (from, to) = piece.split_once("->")?;
                    let (from_table, from_column) = from.trim().split_once('.')?;
                    let (to_table, to_column) = to.trim().split_once('.')?;
                    Some(ForeignKeySketch {
                        from_table: from_table.trim().to_string(),
                        from_column: from_column.trim().to_string(),
                        to_table: to_table.trim().to_string(),
                        to_column: to_column.trim().to_string(),
                    })
                })
                .collect()
        })
        .unwrap_or_default();
    Some(TableSketch {
        name,
        num_rows,
        columns,
        description,
        foreign_keys,
    })
}

fn parse_relevant_columns(human: &str) -> Vec<RelevantColumn> {
    let mut out = Vec::new();
    for line in human.lines() {
        let line = line.trim();
        if !line.starts_with("- The '") {
            continue;
        }
        let Some(column) = between(line, "- The '", "'") else {
            continue;
        };
        let Some(table) = between(line, "column of the '", "'") else {
            continue;
        };
        let examples = extract_bracketed(line, "Example values: [")
            .map(|inner| {
                inner
                    .split(',')
                    .map(|s| s.trim().trim_matches('\'').to_string())
                    .filter(|s| !s.is_empty())
                    .collect()
            })
            .unwrap_or_default();
        out.push(RelevantColumn {
            table,
            column,
            examples,
        });
    }
    out
}

fn parse_step_to_map(human: &str) -> Option<LogicalStep> {
    // The step block starts at the last "Step <i>:" line of the human message.
    let start = human
        .lines()
        .enumerate()
        .filter(|(_, line)| {
            let t = line.trim();
            t.starts_with("Step ") && t.contains(':')
        })
        .map(|(i, _)| i)
        .last()?;
    let block: String = human.lines().skip(start).collect::<Vec<_>>().join("\n");
    LogicalPlan::parse(&block)
        .ok()
        .and_then(|plan| plan.steps.into_iter().next())
}

fn parse_error_context(human: &str) -> ErrorContext {
    let plan_text = between(
        human,
        "The logical plan was:\n",
        "The step being executed was:",
    )
    .unwrap_or_default()
    .trim()
    .to_string();
    let step_text = between(
        human,
        "The step being executed was:",
        "The chosen operator was:",
    )
    .unwrap_or_default()
    .trim()
    .to_string();
    let decision_text = between(human, "The chosen operator was:", "The error message is:")
        .unwrap_or_default()
        .trim()
        .to_string();
    let message = extract_after(human, "The error message is:")
        .unwrap_or("")
        .trim()
        .to_string();
    ErrorContext {
        plan_text,
        step_text,
        decision_text,
        message,
    }
}

fn extract_after<'a>(text: &'a str, marker: &str) -> Option<&'a str> {
    text.find(marker).map(|pos| &text[pos + marker.len()..])
}

fn extract_bracketed(text: &str, marker: &str) -> Option<String> {
    let rest = extract_after(text, marker)?;
    rest.find(']').map(|end| rest[..end].to_string())
}

fn between(text: &str, start: &str, end: &str) -> Option<String> {
    let rest = extract_after(text, start)?;
    let stop = rest.find(end)?;
    Some(rest[..stop].trim().trim_matches('\'').to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prompt::{PromptBuilder, RelevantColumn};
    use caesura_engine::{Catalog, DataType, ForeignKey, Schema, TableBuilder};

    fn catalog() -> Catalog {
        let mut catalog = Catalog::new();
        let schema = Schema::from_pairs(&[
            ("title", DataType::Str),
            ("inception", DataType::Str),
            ("img_path", DataType::Str),
        ]);
        let mut b = TableBuilder::new("paintings_metadata", schema);
        b.push_values(["Madonna", "1889", "img/1.png"]).unwrap();
        catalog.register(b.description("Painting metadata").build());
        let schema = Schema::from_pairs(&[("img_path", DataType::Str), ("image", DataType::Image)]);
        catalog.register(TableBuilder::new("painting_images", schema).build());
        catalog.add_foreign_key(ForeignKey::new(
            "paintings_metadata",
            "img_path",
            "painting_images",
            "img_path",
        ));
        catalog
    }

    #[test]
    fn planning_prompt_round_trips_into_context() {
        let builder = PromptBuilder::default();
        let relevant = vec![RelevantColumn {
            table: "paintings_metadata".into(),
            column: "inception".into(),
            examples: vec!["1889".into()],
        }];
        let prompt = builder.planning_prompt(
            &catalog(),
            "Plot the number of paintings depicting Madonna and Child for each century!",
            &relevant,
        );
        let context = PromptContext::parse(&prompt);
        assert_eq!(context.kind, PromptKind::Planning);
        assert!(context.query.starts_with("Plot the number of paintings"));
        assert_eq!(context.tables.len(), 2);
        let metadata = context.find_table("paintings_metadata").unwrap();
        assert_eq!(metadata.num_rows, 1);
        assert!(metadata.has_column("inception"));
        assert_eq!(metadata.description, "Painting metadata");
        assert_eq!(metadata.foreign_keys.len(), 1);
        assert_eq!(metadata.foreign_keys[0].to_table, "painting_images");
        let images = context.image_table().unwrap();
        assert_eq!(images.name, "painting_images");
        assert_eq!(images.image_columns(), vec!["image"]);
        assert_eq!(context.relevant_columns.len(), 1);
        assert_eq!(context.relevant_columns[0].examples, vec!["1889"]);
    }

    #[test]
    fn mapping_prompt_round_trips_step_and_observations() {
        let builder = PromptBuilder::default();
        let step = crate::plan::LogicalStep::new(
            3,
            "Select only the paintings depicting Madonna and Child.",
            vec!["joined_table".into()],
            "madonna_paintings",
            vec![],
        );
        let mut intermediate = Catalog::new();
        let schema = Schema::from_pairs(&[
            ("title", DataType::Str),
            ("madonna_depicted", DataType::Str),
        ]);
        intermediate.register(TableBuilder::new("joined_table", schema).build());
        let prompt = builder.mapping_prompt(
            &catalog(),
            &intermediate,
            "Plot the number of paintings depicting Madonna and Child for each century!",
            &step,
            &[],
            &["New column 'madonna_depicted' has been added. Example values: [yes, no].".into()],
            Some("The previous selection referenced a non-existent column."),
        );
        let context = PromptContext::parse(&prompt);
        assert_eq!(context.kind, PromptKind::Mapping);
        assert_eq!(context.intermediate_tables.len(), 1);
        assert!(context
            .find_table("joined_table")
            .unwrap()
            .has_column("madonna_depicted"));
        let step = context.step.unwrap();
        assert_eq!(step.number, 3);
        assert!(step.description.contains("Madonna and Child"));
        assert_eq!(step.output, "madonna_paintings");
        assert_eq!(context.observations.len(), 1);
        assert!(context.retry_note.unwrap().contains("previous attempt"));
    }

    #[test]
    fn error_prompt_round_trips_error_context() {
        let builder = PromptBuilder::default();
        let prompt = builder.error_prompt(
            "How many paintings depict a dog?",
            "Step 1: ...\nStep 2: ...",
            "Step 2: Select the paintings that depict a dog",
            "Operator: SQL Selection, Arguments: (dog_depicted = 'yes')",
            "unknown column 'dog_depicted'; available columns are [title, image]",
        );
        let context = PromptContext::parse(&prompt);
        assert_eq!(context.kind, PromptKind::ErrorAnalysis);
        let error = context.error.unwrap();
        assert!(error.message.contains("dog_depicted"));
        assert!(error.step_text.contains("Step 2"));
        assert!(error.decision_text.contains("SQL Selection"));
        assert!(error.plan_text.contains("Step 1"));
    }

    #[test]
    fn discovery_prompt_is_recognized() {
        let builder = PromptBuilder::default();
        let prompt = builder.discovery_prompt(&catalog(), "Which movements exist?");
        let context = PromptContext::parse(&prompt);
        assert_eq!(context.kind, PromptKind::Discovery);
        assert_eq!(context.tables.len(), 2);
        assert_eq!(context.query, "Which movements exist?");
    }

    #[test]
    fn unknown_prompts_yield_unknown_kind() {
        let convo = Conversation::new()
            .with(crate::chat::ChatMessage::system("You are a poet."))
            .with(crate::chat::ChatMessage::human("Write a haiku."));
        assert_eq!(PromptContext::parse(&convo).kind, PromptKind::Unknown);
    }
}
