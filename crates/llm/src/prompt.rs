//! Prompt construction for the three CAESURA phases plus error analysis.
//!
//! Each prompt is a two-message conversation (system + human) following the
//! structure shown in Figure 3 of the paper: data description, capability /
//! operator description, output-format instructions, and finally the request
//! (plus, for the planning phase, optional few-shot example translations).

use crate::chat::{ChatMessage, Conversation};
use crate::plan::LogicalStep;
use caesura_engine::Catalog;
use caesura_modal::OperatorKind;

/// A column that the discovery phase marked as relevant, together with a few
/// example values that help the planner generate correct conditions.
#[derive(Debug, Clone, PartialEq)]
pub struct RelevantColumn {
    /// Table the column belongs to.
    pub table: String,
    /// Column name.
    pub column: String,
    /// Example values rendered as strings.
    pub examples: Vec<String>,
}

impl RelevantColumn {
    /// Render the "- The 'x' column of the 'y' table might be relevant" line.
    pub fn render(&self) -> String {
        if self.examples.is_empty() {
            format!(
                "- The '{}' column of the '{}' table might be relevant.",
                self.column, self.table
            )
        } else {
            format!(
                "- The '{}' column of the '{}' table might be relevant. Example values: [{}].",
                self.column,
                self.table,
                self.examples.join(", ")
            )
        }
    }
}

/// Configuration of the prompt builder.
#[derive(Debug, Clone, PartialEq)]
pub struct PromptConfig {
    /// Include few-shot example translations in the planning prompt (§3.1:
    /// "in order to improve the quality of plans, we add a few examples of
    /// correct logical plans using few-shot prompting").
    pub few_shot: bool,
    /// How many example values to show per relevant column.
    pub example_values: usize,
}

impl Default for PromptConfig {
    fn default() -> Self {
        PromptConfig {
            few_shot: true,
            example_values: 3,
        }
    }
}

/// Builds the prompts for all phases.
#[derive(Debug, Clone, Default)]
pub struct PromptBuilder {
    /// Builder configuration.
    pub config: PromptConfig,
}

/// Marker line that identifies the planning phase (the simulated model keys on it).
pub const PLANNING_MARKER: &str = "you generate plans to retrieve data from databases";
/// Marker line that identifies the mapping phase.
pub const MAPPING_MARKER: &str = "you map steps in an informal query plan to concrete operators";
/// Marker line that identifies the discovery (column relevance) phase.
pub const DISCOVERY_MARKER: &str = "you identify which columns are relevant";
/// Marker line that identifies the error-analysis prompt.
pub const ERROR_MARKER: &str = "you analyze errors that occurred while executing a query plan";

impl PromptBuilder {
    /// Create a builder with the given configuration.
    pub fn new(config: PromptConfig) -> Self {
        PromptBuilder { config }
    }

    /// The CAESURA capability description used in the planning prompt. These
    /// are *logical* capabilities — the planner should not pick concrete
    /// operators yet.
    pub fn capabilities_text() -> String {
        [
            "You are able to look at images (columns of type IMAGE). For example, you are able to \
             recognize the objects depicted in images, count them, and check whether something is \
             depicted.",
            "You are able to read text documents (columns of type TEXT). For example, you are able \
             to extract numbers and facts mentioned in the documents, such as how many points a \
             team scored.",
            "You are able to join tables on a common column, select rows by a condition, group \
             rows and compute aggregates (count, sum, average, minimum, maximum), and sort.",
            "You are able to compute new columns from existing columns, for example extracting \
             the century from a date.",
            "You are able to plot the final result as a bar, line, or scatter chart.",
        ]
        .join("\n")
    }

    /// Build the planning-phase prompt (Figure 3, left).
    pub fn planning_prompt(
        &self,
        catalog: &Catalog,
        query: &str,
        relevant_columns: &[RelevantColumn],
    ) -> Conversation {
        let mut system = String::new();
        system.push_str(&format!("You are CAESURA and {PLANNING_MARKER}.\n"));
        system.push_str("The database contains the following tables:\n");
        system.push_str(&catalog.prompt_summary());
        system.push_str("\n\nYou have the following capabilities:\n");
        system.push_str(&Self::capabilities_text());
        system.push_str(
            "\n\nUse the following format:\n\
             Request: The user request you must satisfy by using your capabilities\n\
             Thought: You should always think what to do.\n\
             Step 1: Description of the step.\n\
             Input: List of tables passed as input.\n\
             Output: Name of the output table.\n\
             New Columns: The new columns that have been added to the dataset.\n\
             ... (this can repeat N times)\n\
             Step N: Plan completed.\n",
        );
        if self.config.few_shot {
            system.push_str("\nHere are example translations from other domains:\n");
            system.push_str(FEW_SHOT_EXAMPLES);
        }

        let mut human = format!("My request is: {query}\n");
        if !relevant_columns.is_empty() {
            human.push_str("These columns are potentially relevant:\n");
            for column in relevant_columns {
                human.push_str(&column.render());
                human.push('\n');
            }
        }

        Conversation::new()
            .with(ChatMessage::system(system))
            .with(ChatMessage::human(human))
    }

    /// Build the mapping-phase prompt for one logical step (Figure 3, right).
    /// `intermediate` describes the tables produced by previously executed
    /// steps; `observations` carries the textual feedback of prior executions
    /// (interleaved execution, §3.1).
    #[allow(clippy::too_many_arguments)]
    pub fn mapping_prompt(
        &self,
        catalog: &Catalog,
        intermediate: &Catalog,
        query: &str,
        step: &LogicalStep,
        relevant_columns: &[RelevantColumn],
        observations: &[String],
        error_context: Option<&str>,
    ) -> Conversation {
        let mut system = String::new();
        system.push_str(&format!("You are CAESURA, and {MAPPING_MARKER}.\n"));
        system.push_str("The database contains the following tables:\n");
        system.push_str(&catalog.prompt_summary());
        if !intermediate.is_empty() {
            system.push_str("\nThe intermediate tables produced by previous steps are:\n");
            system.push_str(&intermediate.prompt_summary());
        }
        system.push_str("\n\nYou can use the following operators:\n");
        system.push_str(&OperatorKind::prompt_catalog());
        system.push_str(
            "\n\nUse the following output format:\n\
             Step <i>: What to do in this step?\n\
             Reasoning: Reason about which operator should be used for this step. Take datatypes into account.\n\
             Operator: The operator to use, should be one of the operators listed above.\n\
             Arguments: The arguments to call the operator, separated by ';'. Should be (arg_1; ...; arg_n)\n",
        );

        let mut human = String::new();
        human.push_str("Map the steps one by one.\n");
        human.push_str(&format!("My request is: {query}\n"));
        if !relevant_columns.is_empty() {
            human.push_str("These columns are relevant:\n");
            for column in relevant_columns {
                human.push_str(&column.render());
                human.push('\n');
            }
        }
        if !observations.is_empty() {
            human.push_str("Previous observations:\n");
            for observation in observations {
                human.push_str(&format!("Observation: {observation}\n"));
            }
        }
        if let Some(error) = error_context {
            human.push_str(&format!(
                "Note: a previous attempt at this step failed. {error}\n"
            ));
        }
        human.push_str(&format!("Step {}: {}\n", step.number, step.description));
        if !step.inputs.is_empty() {
            human.push_str(&format!("Input: {}\n", step.inputs.join(", ")));
        }
        if !step.output.is_empty() {
            human.push_str(&format!("Output: {}\n", step.output));
        }
        if !step.new_columns.is_empty() {
            human.push_str(&format!("New Columns: {}\n", step.new_columns.join(", ")));
        }

        Conversation::new()
            .with(ChatMessage::system(system))
            .with(ChatMessage::human(human))
    }

    /// Build the discovery-phase column-relevance prompt. (Dense retrieval has
    /// already narrowed the candidate tables; the LLM picks relevant columns.)
    pub fn discovery_prompt(&self, catalog: &Catalog, query: &str) -> Conversation {
        let mut system = String::new();
        system.push_str(&format!(
            "You are CAESURA, and {DISCOVERY_MARKER} for a user request.\n"
        ));
        system.push_str("The candidate tables are:\n");
        system.push_str(&catalog.prompt_summary());
        system.push_str(
            "\n\nAnswer with one line per relevant column in the format:\n\
             Relevant: <table>.<column>\n",
        );
        let human = format!("My request is: {query}\n");
        Conversation::new()
            .with(ChatMessage::system(system))
            .with(ChatMessage::human(human))
    }

    /// Build the error-analysis prompt (§3.2). `plan_text` is the rendered
    /// logical plan, `step_text` describes the step being executed when the
    /// error occurred, `decision_text` the chosen operator and arguments.
    pub fn error_prompt(
        &self,
        query: &str,
        plan_text: &str,
        step_text: &str,
        decision_text: &str,
        error_message: &str,
    ) -> Conversation {
        let mut system = String::new();
        system.push_str(&format!("You are CAESURA, and {ERROR_MARKER}.\n"));
        system.push_str(
            "Answer the following questions about the error:\n\
             (1) What are the potential causes of this error?\n\
             (2) Explain in detail how this error could be fixed.\n\
             (3) Is there a flaw in my plan (Yes/No)?\n\
             (4) Is there a more suitable alternative plan (Yes/No)?\n\
             (5) Should a different tool be selected for any step (Yes/No)?\n\
             (6) Do the input arguments of some of the steps need to be updated (Yes/No)?\n\
             \nUse the following output format:\n\
             Potential causes: ...\n\
             Suggested fix: ...\n\
             Flaw in plan: Yes/No\n\
             Alternative plan: Yes/No\n\
             Different tool: Yes/No\n\
             Update arguments: Yes/No\n",
        );
        let human = format!(
            "My request is: {query}\nThe logical plan was:\n{plan_text}\n\
             The step being executed was: {step_text}\n\
             The chosen operator was: {decision_text}\n\
             The error message is: {error_message}\n"
        );
        Conversation::new()
            .with(ChatMessage::system(system))
            .with(ChatMessage::human(human))
    }
}

/// Few-shot example translations shown at the start of the planning prompt.
/// They come from a different domain (a hospital data lake) so that the model
/// learns the *format*, not the answers — mirroring §3.1 of the paper.
pub const FEW_SHOT_EXAMPLES: &str = "\
Request: How many MRI scans show a fracture?\n\
Thought: The scan images must be joined with the scan metadata, inspected, and counted.\n\
Step 1: Join the 'scan_metadata' and 'scan_images' tables on the 'scan_id' column.\n\
Input: scan_metadata, scan_images\n\
Output: joined_scans\n\
New Columns: none\n\
Step 2: Extract whether a fracture is visible in each image from the 'image' column in the 'joined_scans' table.\n\
Input: joined_scans\n\
Output: joined_scans\n\
New Columns: fracture_visible\n\
Step 3: Select only the rows of 'joined_scans' where a fracture is visible.\n\
Input: joined_scans\n\
Output: fracture_scans\n\
New Columns: none\n\
Step 4: Count the number of rows in 'fracture_scans'.\n\
Input: fracture_scans\n\
Output: result_table\n\
New Columns: num_scans\n\
Step 5: Plan completed.\n\
\n\
Request: Plot the average length of stay for each ward.\n\
Thought: The stays table already contains everything; aggregate and plot.\n\
Step 1: Group the 'stays' table by 'ward' and compute the average of 'length_of_stay'.\n\
Input: stays\n\
Output: result_table\n\
New Columns: avg_length_of_stay\n\
Step 2: Plot the 'result_table' in a bar plot. The 'ward' should be on the X-axis and the 'avg_length_of_stay' on the Y-axis.\n\
Input: result_table\n\
Output: plot\n\
New Columns: none\n\
Step 3: Plan completed.\n";

#[cfg(test)]
mod tests {
    use super::*;
    use caesura_engine::{DataType, Schema, TableBuilder};

    fn catalog() -> Catalog {
        let mut catalog = Catalog::new();
        let schema = Schema::from_pairs(&[
            ("title", DataType::Str),
            ("inception", DataType::Str),
            ("img_path", DataType::Str),
        ]);
        catalog.register(
            TableBuilder::new("paintings_metadata", schema)
                .description("Metadata about paintings")
                .build(),
        );
        let schema = Schema::from_pairs(&[("img_path", DataType::Str), ("image", DataType::Image)]);
        catalog.register(TableBuilder::new("painting_images", schema).build());
        catalog
    }

    #[test]
    fn planning_prompt_contains_all_figure3_sections() {
        let builder = PromptBuilder::default();
        let relevant = vec![RelevantColumn {
            table: "paintings_metadata".into(),
            column: "inception".into(),
            examples: vec!["1889-01-05".into(), "c. 1480".into()],
        }];
        let prompt = builder.planning_prompt(
            &catalog(),
            "Plot the number of paintings depicting Madonna and Child for each century!",
            &relevant,
        );
        let system = prompt.system_text();
        let human = prompt.human_text();
        assert!(system.contains(PLANNING_MARKER));
        assert!(system.contains("paintings_metadata = table(num_rows=0"));
        assert!(system.contains("'image': 'IMAGE'"));
        assert!(system.contains("Step N: Plan completed."));
        assert!(system.contains("example translations"));
        assert!(human.contains("My request is: Plot the number of paintings"));
        assert!(human.contains("'inception' column of the 'paintings_metadata'"));
        assert!(human.contains("1889-01-05"));
    }

    #[test]
    fn few_shot_can_be_disabled() {
        let builder = PromptBuilder::new(PromptConfig {
            few_shot: false,
            example_values: 3,
        });
        let prompt = builder.planning_prompt(&catalog(), "a query", &[]);
        assert!(!prompt.system_text().contains("example translations"));
    }

    #[test]
    fn mapping_prompt_lists_operators_and_step() {
        let builder = PromptBuilder::default();
        let step = LogicalStep::new(
            2,
            "Extract the number of swords depicted in each image.",
            vec!["joined_table".into()],
            "joined_table",
            vec!["num_swords".into()],
        );
        let prompt = builder.mapping_prompt(
            &catalog(),
            &Catalog::new(),
            "Plot the maximum number of swords depicted on the paintings of each century",
            &step,
            &[],
            &["New column madonna_depicted has been added. Example values: ['yes', 'no']".into()],
            None,
        );
        let system = prompt.system_text();
        let human = prompt.human_text();
        assert!(system.contains(MAPPING_MARKER));
        assert!(system.contains("Visual Question Answering"));
        assert!(system.contains("Operator: The operator to use"));
        assert!(human.contains("Step 2: Extract the number of swords"));
        assert!(human.contains("Previous observations:"));
        assert!(human.contains("madonna_depicted"));
    }

    #[test]
    fn error_prompt_contains_the_six_questions_and_context() {
        let builder = PromptBuilder::default();
        let prompt = builder.error_prompt(
            "a query",
            "Step 1: Join ...",
            "Step 2: Select rows",
            "Operator: SQL Selection, Arguments: (bad_column = 'yes')",
            "unknown column 'bad_column'",
        );
        let system = prompt.system_text();
        let human = prompt.human_text();
        assert!(system.contains(ERROR_MARKER));
        assert!(system.contains("Flaw in plan"));
        assert!(human.contains("unknown column 'bad_column'"));
        assert!(human.contains("Step 2: Select rows"));
    }

    #[test]
    fn discovery_prompt_asks_for_relevant_lines() {
        let builder = PromptBuilder::default();
        let prompt = builder.discovery_prompt(&catalog(), "Which movements are represented?");
        assert!(prompt.system_text().contains(DISCOVERY_MARKER));
        assert!(prompt.system_text().contains("Relevant: <table>.<column>"));
        assert!(prompt.human_text().contains("Which movements"));
    }

    #[test]
    fn relevant_column_rendering() {
        let col = RelevantColumn {
            table: "teams".into(),
            column: "conference".into(),
            examples: vec!["Eastern".into(), "Western".into()],
        };
        let line = col.render();
        assert!(line.contains("'conference' column of the 'teams' table"));
        assert!(line.contains("Eastern"));
        let bare = RelevantColumn {
            table: "teams".into(),
            column: "name".into(),
            examples: vec![],
        };
        assert!(!bare.render().contains("Example values"));
    }
}
