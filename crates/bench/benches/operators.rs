//! Micro-benchmarks of the physical operators (relational and multi-modal)
//! at several input cardinalities.

use caesura_data::{generate_artwork, ArtworkConfig};
use caesura_engine::{ops, sql, Expr};
use caesura_modal::operators::{apply_python_udf, apply_visual_qa};
use caesura_modal::{TransformCodegen, VisualQaModel};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_operators(c: &mut Criterion) {
    let mut group = c.benchmark_group("operators");
    for &size in &[100usize, 1000] {
        let data = generate_artwork(&ArtworkConfig {
            num_paintings: size,
            seed: 42,
            madonna_probability: 0.25,
        });
        let catalog = data.lake.catalog().clone();
        let metadata = catalog.table("paintings_metadata").unwrap().clone();
        let images = catalog.table("painting_images").unwrap().clone();
        let store = data.lake.images().clone();

        group.bench_with_input(BenchmarkId::new("hash_join", size), &size, |b, _| {
            b.iter(|| {
                ops::hash_join(
                    black_box(&metadata),
                    black_box(&images),
                    "img_path",
                    "img_path",
                    ops::JoinType::Inner,
                )
                .unwrap()
            })
        });
        group.bench_with_input(BenchmarkId::new("filter", size), &size, |b, _| {
            let predicate = sql::parse_expression("movement = 'Baroque'").unwrap();
            b.iter(|| ops::filter(black_box(&metadata), &predicate).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("aggregate_group_by", size), &size, |b, _| {
            b.iter(|| {
                sql::run_sql(
                    black_box(&catalog),
                    "SELECT movement, COUNT(*) AS n FROM paintings_metadata GROUP BY movement",
                )
                .unwrap()
            })
        });
        group.bench_with_input(BenchmarkId::new("visual_qa", size), &size, |b, _| {
            let model = VisualQaModel::new();
            b.iter(|| {
                apply_visual_qa(
                    black_box(&images),
                    &store,
                    &model,
                    "image",
                    "num_swords",
                    "How many swords are depicted?",
                    caesura_engine::DataType::Int,
                )
                .unwrap()
            })
        });
        group.bench_with_input(BenchmarkId::new("python_udf_century", size), &size, |b, _| {
            let codegen = TransformCodegen::new();
            b.iter(|| {
                apply_python_udf(
                    black_box(&metadata),
                    &codegen,
                    "Extract the century from the dates in the 'inception' column",
                    "century",
                )
                .unwrap()
            })
        });
        group.bench_with_input(BenchmarkId::new("sort", size), &size, |b, _| {
            b.iter(|| {
                ops::sort(
                    black_box(&metadata),
                    &[ops::SortKey::asc(Expr::col("title"))],
                )
                .unwrap()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_operators);
criterion_main!(benches);
