//! Micro-benchmarks of the physical operators (relational and multi-modal)
//! at several input cardinalities.

use caesura_data::{generate_artwork, ArtworkConfig};
use caesura_engine::parallel::{self, ExecConfig};
use caesura_engine::{dict, ops, sql, DataType, Expr, Schema, Table, TableBuilder, Value};
use caesura_modal::operators::{apply_python_udf, apply_visual_qa};
use caesura_modal::{TransformCodegen, VisualQaModel};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

/// A synthetic scores table with int/float/str columns, used to measure the
/// relational operators at cardinalities (10k–1M) where the artwork generator
/// (which also builds image annotations) would dominate setup time.
fn scores_table(rows: usize) -> Table {
    let schema = Schema::from_pairs(&[
        ("game_id", DataType::Int),
        ("team", DataType::Str),
        ("points", DataType::Int),
        ("rating", DataType::Float),
    ]);
    let teams = [
        "Heat", "Spurs", "Bulls", "Lakers", "Celtics", "Nets", "Suns", "Jazz",
    ];
    let mut builder = TableBuilder::new("scores", schema);
    for i in 0..rows {
        builder
            .push_row(vec![
                Value::Int(i as i64),
                Value::str(teams[i % teams.len()]),
                Value::Int(60 + ((i * 37) % 90) as i64),
                Value::Float((i % 1000) as f64 / 10.0),
            ])
            .unwrap();
    }
    builder.build()
}

/// A keyed side table joining against `scores.team`.
fn teams_table() -> Table {
    let schema = Schema::from_pairs(&[("team", DataType::Str), ("conference", DataType::Str)]);
    let mut builder = TableBuilder::new("teams", schema);
    for (team, conference) in [
        ("Heat", "Eastern"),
        ("Spurs", "Western"),
        ("Bulls", "Eastern"),
        ("Lakers", "Western"),
        ("Celtics", "Eastern"),
        ("Nets", "Eastern"),
        ("Suns", "Western"),
        ("Jazz", "Western"),
    ] {
        builder.push_values([team, conference]).unwrap();
    }
    builder.build()
}

/// Columnar-scale benches: filter / aggregate / join / project / sort at
/// 10k–1M rows. These are the numbers recorded in BENCH_operators.json.
fn bench_columnar_scale(c: &mut Criterion) {
    let mut group = c.benchmark_group("columnar");
    group.sample_size(12);
    for &size in &[10_000usize, 100_000, 1_000_000] {
        let scores = scores_table(size);
        let teams = teams_table();
        let predicate = sql::parse_expression("points > 100").unwrap();

        group.bench_with_input(BenchmarkId::new("filter", size), &size, |b, _| {
            b.iter(|| ops::filter(black_box(&scores), &predicate).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("aggregate", size), &size, |b, _| {
            b.iter(|| {
                ops::aggregate(
                    black_box(&scores),
                    &[(Expr::col("team"), "team".to_string())],
                    &[
                        ops::AggCall::new(
                            ops::AggFunc::Max,
                            Some(Expr::col("points")),
                            "max_points",
                        ),
                        ops::AggCall::count_star("games"),
                    ],
                )
                .unwrap()
            })
        });
        group.bench_with_input(BenchmarkId::new("join", size), &size, |b, _| {
            b.iter(|| {
                ops::hash_join(
                    black_box(&scores),
                    black_box(&teams),
                    "team",
                    "team",
                    ops::JoinType::Inner,
                )
                .unwrap()
            })
        });
        group.bench_with_input(BenchmarkId::new("project_2cols", size), &size, |b, _| {
            let projections = [
                ops::Projection::column("team"),
                ops::Projection::column("points"),
            ];
            b.iter(|| ops::project(black_box(&scores), &projections).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("sort_by_points", size), &size, |b, _| {
            b.iter(|| {
                ops::sort(
                    black_box(&scores),
                    &[ops::SortKey::desc(Expr::col("points"))],
                )
                .unwrap()
            })
        });
    }
    group.finish();
}

/// Morsel-parallel scaling benches: filter / aggregate / join / sort at
/// 100k and 1M rows with a threads axis (1/2/4/8 workers, default morsel
/// size). `threads = 1` is the sequential baseline the speedups in
/// BENCH_operators.json are measured against. The configuration is pinned
/// per measurement with a scoped override, so the other groups keep running
/// under the process default.
fn bench_parallel_scale(c: &mut Criterion) {
    let mut group = c.benchmark_group("parallel");
    group.sample_size(10);
    for &size in &[100_000usize, 1_000_000] {
        let scores = scores_table(size);
        let teams = teams_table();
        let predicate = sql::parse_expression("points > 100").unwrap();
        for &threads in &[1usize, 2, 4, 8] {
            let config = ExecConfig::with_threads(threads);
            group.bench_with_input(
                BenchmarkId::new(format!("filter_t{threads}"), size),
                &size,
                |b, _| {
                    b.iter(|| {
                        parallel::with_config(config, || {
                            ops::filter(black_box(&scores), &predicate).unwrap()
                        })
                    })
                },
            );
            group.bench_with_input(
                BenchmarkId::new(format!("aggregate_t{threads}"), size),
                &size,
                |b, _| {
                    b.iter(|| {
                        parallel::with_config(config, || {
                            ops::aggregate(
                                black_box(&scores),
                                &[(Expr::col("team"), "team".to_string())],
                                &[
                                    ops::AggCall::new(
                                        ops::AggFunc::Max,
                                        Some(Expr::col("points")),
                                        "max_points",
                                    ),
                                    ops::AggCall::count_star("games"),
                                ],
                            )
                            .unwrap()
                        })
                    })
                },
            );
            group.bench_with_input(
                BenchmarkId::new(format!("join_t{threads}"), size),
                &size,
                |b, _| {
                    b.iter(|| {
                        parallel::with_config(config, || {
                            ops::hash_join(
                                black_box(&scores),
                                black_box(&teams),
                                "team",
                                "team",
                                ops::JoinType::Inner,
                            )
                            .unwrap()
                        })
                    })
                },
            );
            group.bench_with_input(
                BenchmarkId::new(format!("sort_t{threads}"), size),
                &size,
                |b, _| {
                    b.iter(|| {
                        parallel::with_config(config, || {
                            ops::sort(
                                black_box(&scores),
                                &[ops::SortKey::desc(Expr::col("points"))],
                            )
                            .unwrap()
                        })
                    })
                },
            );
        }
    }
    group.finish();
}

/// A table keyed by a string column of controllable cardinality, used to
/// compare plain vs dictionary-encoded execution.
fn keyed_table(rows: usize, cardinality: usize) -> Table {
    let schema = Schema::from_pairs(&[
        ("id", DataType::Int),
        ("name", DataType::Str),
        ("points", DataType::Int),
    ]);
    let mut builder = TableBuilder::new("keyed", schema);
    for i in 0..rows {
        builder
            .push_row(vec![
                Value::Int(i as i64),
                Value::str(format!("key-{:06}", i % cardinality)),
                Value::Int(60 + ((i * 37) % 90) as i64),
            ])
            .unwrap();
    }
    builder.build()
}

/// A build side holding every distinct key of `keyed_table(_, cardinality)`.
fn key_side(cardinality: usize) -> Table {
    let schema = Schema::from_pairs(&[("name", DataType::Str), ("bucket", DataType::Int)]);
    let mut builder = TableBuilder::new("side", schema);
    for i in 0..cardinality {
        builder
            .push_row(vec![
                Value::str(format!("key-{i:06}")),
                Value::Int((i % 7) as i64),
            ])
            .unwrap();
    }
    builder.build()
}

/// The pre-PR-6 filter→project pipeline: unfused, through the retained
/// interpreted expression evaluator. The baseline `encoded/*_compiled`
/// numbers are measured against.
fn filter_project_interpreted(
    input: &Table,
    predicate: &Expr,
    projections: &[ops::Projection],
) -> Table {
    let selected = predicate
        .selection_vector_interpreted(input.schema(), input.columns(), input.num_rows())
        .unwrap();
    let filtered = input.take(&selected);
    let columns: Vec<_> = projections
        .iter()
        .map(|p| {
            p.expr
                .evaluate_batch_interpreted(
                    filtered.schema(),
                    filtered.columns(),
                    filtered.num_rows(),
                )
                .unwrap()
        })
        .collect();
    let schema = Schema::from_pairs(
        &projections
            .iter()
            .map(|p| (p.alias.as_str(), DataType::Null))
            .collect::<Vec<_>>(),
    );
    Table::from_columns("out", schema, columns).unwrap()
}

/// Encoded-execution benches: the same join / grouped aggregate /
/// filter→project workload over plain vs dictionary-encoded string key
/// columns (`encoded/<op>_{plain,dict}_{low,high}`), and interpreted vs
/// compiled expression pipelines (`encoded/filter_project_{interpreted,compiled}`).
/// Low cardinality = 8 distinct keys (dict-eligible); high = rows/2 distinct
/// keys (ingest declines to encode, both representations are plain — the
/// no-win case the auto-selection heuristic exists for).
fn bench_encoded(c: &mut Criterion) {
    let mut group = c.benchmark_group("encoded");
    group.sample_size(10);
    for &size in &[100_000usize, 1_000_000] {
        for (card_label, cardinality) in [("low", 8usize), ("high", size / 2)] {
            // The slow join/aggregate benches keep the small sample budget;
            // filter_project below raises it again.
            group.sample_size(10);
            let base = keyed_table(size, cardinality);
            let plain = dict::decode_table(&base);
            let encoded = dict::encode_table(&base);
            let side_plain = dict::decode_table(&key_side(cardinality));
            let side_encoded = dict::encode_table(&key_side(cardinality));

            for (repr, table, side) in [
                ("plain", &plain, &side_plain),
                ("dict", &encoded, &side_encoded),
            ] {
                group.bench_with_input(
                    BenchmarkId::new(format!("join_{repr}_{card_label}"), size),
                    &size,
                    |b, _| {
                        b.iter(|| {
                            ops::hash_join(
                                black_box(table),
                                black_box(side),
                                "name",
                                "name",
                                ops::JoinType::Inner,
                            )
                            .unwrap()
                        })
                    },
                );
                group.bench_with_input(
                    BenchmarkId::new(format!("aggregate_{repr}_{card_label}"), size),
                    &size,
                    |b, _| {
                        b.iter(|| {
                            ops::aggregate(
                                black_box(table),
                                &[(Expr::col("name"), "name".to_string())],
                                &[
                                    ops::AggCall::new(
                                        ops::AggFunc::Max,
                                        Some(Expr::col("points")),
                                        "max_points",
                                    ),
                                    ops::AggCall::count_star("n"),
                                ],
                            )
                            .unwrap()
                        })
                    },
                );
            }

            // Interpreted vs compiled filter→project, both over the encoded
            // table (the representation every query sees by default). These
            // routines are two orders of magnitude cheaper than the joins
            // above, so buy extra samples — the median has to resist system
            // drift over the long whole-suite run.
            group.sample_size(40);
            let predicate = sql::parse_expression("name = 'key-000003'").unwrap();
            let projections = [
                ops::Projection::column("name"),
                ops::Projection::new(
                    sql::parse_expression("points * 2").unwrap(),
                    "double_points",
                ),
            ];
            group.bench_with_input(
                BenchmarkId::new(format!("filter_project_interpreted_{card_label}"), size),
                &size,
                |b, _| {
                    b.iter(|| {
                        filter_project_interpreted(black_box(&encoded), &predicate, &projections)
                    })
                },
            );
            group.bench_with_input(
                BenchmarkId::new(format!("filter_project_compiled_{card_label}"), size),
                &size,
                |b, _| {
                    b.iter(|| {
                        ops::filter_project(black_box(&encoded), &predicate, &projections).unwrap()
                    })
                },
            );
        }
    }
    group.finish();
}

fn bench_operators(c: &mut Criterion) {
    let mut group = c.benchmark_group("operators");
    for &size in &[100usize, 1000] {
        let data = generate_artwork(&ArtworkConfig {
            num_paintings: size,
            seed: 42,
            madonna_probability: 0.25,
        });
        let catalog = data.lake.catalog().clone();
        let metadata = catalog.table("paintings_metadata").unwrap().clone();
        let images = catalog.table("painting_images").unwrap().clone();
        let store = data.lake.images().clone();

        group.bench_with_input(BenchmarkId::new("hash_join", size), &size, |b, _| {
            b.iter(|| {
                ops::hash_join(
                    black_box(&metadata),
                    black_box(&images),
                    "img_path",
                    "img_path",
                    ops::JoinType::Inner,
                )
                .unwrap()
            })
        });
        group.bench_with_input(BenchmarkId::new("filter", size), &size, |b, _| {
            let predicate = sql::parse_expression("movement = 'Baroque'").unwrap();
            b.iter(|| ops::filter(black_box(&metadata), &predicate).unwrap())
        });
        group.bench_with_input(
            BenchmarkId::new("aggregate_group_by", size),
            &size,
            |b, _| {
                b.iter(|| {
                    sql::run_sql(
                        black_box(&catalog),
                        "SELECT movement, COUNT(*) AS n FROM paintings_metadata GROUP BY movement",
                    )
                    .unwrap()
                })
            },
        );
        group.bench_with_input(BenchmarkId::new("visual_qa", size), &size, |b, _| {
            let model = VisualQaModel::new();
            b.iter(|| {
                apply_visual_qa(
                    black_box(&images),
                    &store,
                    &model,
                    "image",
                    "num_swords",
                    "How many swords are depicted?",
                    caesura_engine::DataType::Int,
                )
                .unwrap()
            })
        });
        group.bench_with_input(
            BenchmarkId::new("python_udf_century", size),
            &size,
            |b, _| {
                let codegen = TransformCodegen::new();
                b.iter(|| {
                    apply_python_udf(
                        black_box(&metadata),
                        &codegen,
                        "Extract the century from the dates in the 'inception' column",
                        "century",
                    )
                    .unwrap()
                })
            },
        );
        group.bench_with_input(BenchmarkId::new("sort", size), &size, |b, _| {
            b.iter(|| {
                ops::sort(
                    black_box(&metadata),
                    &[ops::SortKey::asc(Expr::col("title"))],
                )
                .unwrap()
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_operators,
    bench_columnar_scale,
    bench_parallel_scale,
    bench_encoded
);
criterion_main!(benches);
