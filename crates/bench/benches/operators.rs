//! Micro-benchmarks of the physical operators (relational and multi-modal)
//! at several input cardinalities.

use caesura_data::{generate_artwork, ArtworkConfig};
use caesura_engine::parallel::{self, ExecConfig};
use caesura_engine::{ops, sql, DataType, Expr, Schema, Table, TableBuilder, Value};
use caesura_modal::operators::{apply_python_udf, apply_visual_qa};
use caesura_modal::{TransformCodegen, VisualQaModel};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

/// A synthetic scores table with int/float/str columns, used to measure the
/// relational operators at cardinalities (10k–1M) where the artwork generator
/// (which also builds image annotations) would dominate setup time.
fn scores_table(rows: usize) -> Table {
    let schema = Schema::from_pairs(&[
        ("game_id", DataType::Int),
        ("team", DataType::Str),
        ("points", DataType::Int),
        ("rating", DataType::Float),
    ]);
    let teams = [
        "Heat", "Spurs", "Bulls", "Lakers", "Celtics", "Nets", "Suns", "Jazz",
    ];
    let mut builder = TableBuilder::new("scores", schema);
    for i in 0..rows {
        builder
            .push_row(vec![
                Value::Int(i as i64),
                Value::str(teams[i % teams.len()]),
                Value::Int(60 + ((i * 37) % 90) as i64),
                Value::Float((i % 1000) as f64 / 10.0),
            ])
            .unwrap();
    }
    builder.build()
}

/// A keyed side table joining against `scores.team`.
fn teams_table() -> Table {
    let schema = Schema::from_pairs(&[("team", DataType::Str), ("conference", DataType::Str)]);
    let mut builder = TableBuilder::new("teams", schema);
    for (team, conference) in [
        ("Heat", "Eastern"),
        ("Spurs", "Western"),
        ("Bulls", "Eastern"),
        ("Lakers", "Western"),
        ("Celtics", "Eastern"),
        ("Nets", "Eastern"),
        ("Suns", "Western"),
        ("Jazz", "Western"),
    ] {
        builder.push_values([team, conference]).unwrap();
    }
    builder.build()
}

/// Columnar-scale benches: filter / aggregate / join / project / sort at
/// 10k–1M rows. These are the numbers recorded in BENCH_operators.json.
fn bench_columnar_scale(c: &mut Criterion) {
    let mut group = c.benchmark_group("columnar");
    group.sample_size(12);
    for &size in &[10_000usize, 100_000, 1_000_000] {
        let scores = scores_table(size);
        let teams = teams_table();
        let predicate = sql::parse_expression("points > 100").unwrap();

        group.bench_with_input(BenchmarkId::new("filter", size), &size, |b, _| {
            b.iter(|| ops::filter(black_box(&scores), &predicate).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("aggregate", size), &size, |b, _| {
            b.iter(|| {
                ops::aggregate(
                    black_box(&scores),
                    &[(Expr::col("team"), "team".to_string())],
                    &[
                        ops::AggCall::new(
                            ops::AggFunc::Max,
                            Some(Expr::col("points")),
                            "max_points",
                        ),
                        ops::AggCall::count_star("games"),
                    ],
                )
                .unwrap()
            })
        });
        group.bench_with_input(BenchmarkId::new("join", size), &size, |b, _| {
            b.iter(|| {
                ops::hash_join(
                    black_box(&scores),
                    black_box(&teams),
                    "team",
                    "team",
                    ops::JoinType::Inner,
                )
                .unwrap()
            })
        });
        group.bench_with_input(BenchmarkId::new("project_2cols", size), &size, |b, _| {
            let projections = [
                ops::Projection::column("team"),
                ops::Projection::column("points"),
            ];
            b.iter(|| ops::project(black_box(&scores), &projections).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("sort_by_points", size), &size, |b, _| {
            b.iter(|| {
                ops::sort(
                    black_box(&scores),
                    &[ops::SortKey::desc(Expr::col("points"))],
                )
                .unwrap()
            })
        });
    }
    group.finish();
}

/// Morsel-parallel scaling benches: filter / aggregate / join / sort at
/// 100k and 1M rows with a threads axis (1/2/4/8 workers, default morsel
/// size). `threads = 1` is the sequential baseline the speedups in
/// BENCH_operators.json are measured against. The configuration is pinned
/// per measurement with a scoped override, so the other groups keep running
/// under the process default.
fn bench_parallel_scale(c: &mut Criterion) {
    let mut group = c.benchmark_group("parallel");
    group.sample_size(10);
    for &size in &[100_000usize, 1_000_000] {
        let scores = scores_table(size);
        let teams = teams_table();
        let predicate = sql::parse_expression("points > 100").unwrap();
        for &threads in &[1usize, 2, 4, 8] {
            let config = ExecConfig::with_threads(threads);
            group.bench_with_input(
                BenchmarkId::new(format!("filter_t{threads}"), size),
                &size,
                |b, _| {
                    b.iter(|| {
                        parallel::with_config(config, || {
                            ops::filter(black_box(&scores), &predicate).unwrap()
                        })
                    })
                },
            );
            group.bench_with_input(
                BenchmarkId::new(format!("aggregate_t{threads}"), size),
                &size,
                |b, _| {
                    b.iter(|| {
                        parallel::with_config(config, || {
                            ops::aggregate(
                                black_box(&scores),
                                &[(Expr::col("team"), "team".to_string())],
                                &[
                                    ops::AggCall::new(
                                        ops::AggFunc::Max,
                                        Some(Expr::col("points")),
                                        "max_points",
                                    ),
                                    ops::AggCall::count_star("games"),
                                ],
                            )
                            .unwrap()
                        })
                    })
                },
            );
            group.bench_with_input(
                BenchmarkId::new(format!("join_t{threads}"), size),
                &size,
                |b, _| {
                    b.iter(|| {
                        parallel::with_config(config, || {
                            ops::hash_join(
                                black_box(&scores),
                                black_box(&teams),
                                "team",
                                "team",
                                ops::JoinType::Inner,
                            )
                            .unwrap()
                        })
                    })
                },
            );
            group.bench_with_input(
                BenchmarkId::new(format!("sort_t{threads}"), size),
                &size,
                |b, _| {
                    b.iter(|| {
                        parallel::with_config(config, || {
                            ops::sort(
                                black_box(&scores),
                                &[ops::SortKey::desc(Expr::col("points"))],
                            )
                            .unwrap()
                        })
                    })
                },
            );
        }
    }
    group.finish();
}

fn bench_operators(c: &mut Criterion) {
    let mut group = c.benchmark_group("operators");
    for &size in &[100usize, 1000] {
        let data = generate_artwork(&ArtworkConfig {
            num_paintings: size,
            seed: 42,
            madonna_probability: 0.25,
        });
        let catalog = data.lake.catalog().clone();
        let metadata = catalog.table("paintings_metadata").unwrap().clone();
        let images = catalog.table("painting_images").unwrap().clone();
        let store = data.lake.images().clone();

        group.bench_with_input(BenchmarkId::new("hash_join", size), &size, |b, _| {
            b.iter(|| {
                ops::hash_join(
                    black_box(&metadata),
                    black_box(&images),
                    "img_path",
                    "img_path",
                    ops::JoinType::Inner,
                )
                .unwrap()
            })
        });
        group.bench_with_input(BenchmarkId::new("filter", size), &size, |b, _| {
            let predicate = sql::parse_expression("movement = 'Baroque'").unwrap();
            b.iter(|| ops::filter(black_box(&metadata), &predicate).unwrap())
        });
        group.bench_with_input(
            BenchmarkId::new("aggregate_group_by", size),
            &size,
            |b, _| {
                b.iter(|| {
                    sql::run_sql(
                        black_box(&catalog),
                        "SELECT movement, COUNT(*) AS n FROM paintings_metadata GROUP BY movement",
                    )
                    .unwrap()
                })
            },
        );
        group.bench_with_input(BenchmarkId::new("visual_qa", size), &size, |b, _| {
            let model = VisualQaModel::new();
            b.iter(|| {
                apply_visual_qa(
                    black_box(&images),
                    &store,
                    &model,
                    "image",
                    "num_swords",
                    "How many swords are depicted?",
                    caesura_engine::DataType::Int,
                )
                .unwrap()
            })
        });
        group.bench_with_input(
            BenchmarkId::new("python_udf_century", size),
            &size,
            |b, _| {
                let codegen = TransformCodegen::new();
                b.iter(|| {
                    apply_python_udf(
                        black_box(&metadata),
                        &codegen,
                        "Extract the century from the dates in the 'inception' column",
                        "century",
                    )
                    .unwrap()
                })
            },
        );
        group.bench_with_input(BenchmarkId::new("sort", size), &size, |b, _| {
            b.iter(|| {
                ops::sort(
                    black_box(&metadata),
                    &[ops::SortKey::asc(Expr::col("title"))],
                )
                .unwrap()
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_operators,
    bench_columnar_scale,
    bench_parallel_scale
);
criterion_main!(benches);
