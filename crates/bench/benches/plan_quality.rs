//! Plan-quality sweep: measures how long the full 48-query Table-1 evaluation
//! takes per model profile (the wall-clock cost of regenerating the paper's
//! evaluation) on a reduced data scale, plus a perception-batch-size axis
//! (batch 1 vs default) over the same workload. The companion LLM-*call*
//! numbers of this workload are recorded by the `llm_calls` binary in
//! `BENCH_llm_calls.json`.

use caesura_core::CaesuraConfig;
use caesura_data::{ArtworkConfig, RotowireConfig};
use caesura_eval::{evaluate_model, EvaluationConfig};
use caesura_llm::ModelProfile;
use caesura_modal::BatchConfig;
use criterion::{criterion_group, criterion_main, Criterion};

fn eval_config(llm_batch: Option<BatchConfig>) -> EvaluationConfig {
    EvaluationConfig {
        seed: 42,
        artwork: ArtworkConfig::small(),
        rotowire: RotowireConfig::small(),
        caesura: CaesuraConfig {
            llm_batch,
            ..CaesuraConfig::default()
        },
        ..EvaluationConfig::default()
    }
}

fn bench_plan_quality(c: &mut Criterion) {
    let config = eval_config(None);
    let mut group = c.benchmark_group("plan_quality");
    group.sample_size(10);
    group.bench_function("table1_gpt4_profile_48_queries", |b| {
        b.iter(|| evaluate_model(ModelProfile::Gpt4, &config))
    });
    group.bench_function("table1_chatgpt35_profile_48_queries", |b| {
        b.iter(|| evaluate_model(ModelProfile::ChatGpt35, &config))
    });
    // Perception batch-size axis: degenerate one-request batches, compared
    // against the default-config baselines above.
    let batch1 = eval_config(Some(BatchConfig::new(1)));
    group.bench_function("table1_gpt4_profile_48_queries_llm_batch_1", |b| {
        b.iter(|| evaluate_model(ModelProfile::Gpt4, &batch1))
    });
    group.finish();
}

criterion_group!(benches, bench_plan_quality);
criterion_main!(benches);
