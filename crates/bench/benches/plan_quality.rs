//! Plan-quality sweep: measures how long the full 48-query Table-1 evaluation
//! takes per model profile (the wall-clock cost of regenerating the paper's
//! evaluation) on a reduced data scale.

use caesura_core::CaesuraConfig;
use caesura_data::{ArtworkConfig, RotowireConfig};
use caesura_eval::{evaluate_model, EvaluationConfig};
use caesura_llm::ModelProfile;
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_plan_quality(c: &mut Criterion) {
    let config = EvaluationConfig {
        seed: 42,
        artwork: ArtworkConfig::small(),
        rotowire: RotowireConfig::small(),
        caesura: CaesuraConfig::default(),
    };
    let mut group = c.benchmark_group("plan_quality");
    group.sample_size(10);
    group.bench_function("table1_gpt4_profile_48_queries", |b| {
        b.iter(|| evaluate_model(ModelProfile::Gpt4, &config))
    });
    group.bench_function("table1_chatgpt35_profile_48_queries", |b| {
        b.iter(|| evaluate_model(ModelProfile::ChatGpt35, &config))
    });
    group.finish();
}

criterion_group!(benches, bench_plan_quality);
criterion_main!(benches);
