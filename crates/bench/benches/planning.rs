//! Planning-phase latency: how long the simulated model takes to analyze a
//! query and synthesize a logical plan, and how long plan-text parsing takes.

use caesura_data::{generate_artwork, ArtworkConfig};
use caesura_llm::{
    analyze, synthesize, LlmClient, LogicalPlan, PromptBuilder, PromptContext, SimulatedLlm,
};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_planning(c: &mut Criterion) {
    let data = generate_artwork(&ArtworkConfig::default());
    let builder = PromptBuilder::default();
    let query = "Plot the number of paintings depicting Madonna and Child for each century!";
    let prompt = builder.planning_prompt(data.lake.catalog(), query, &[]);
    let llm = SimulatedLlm::gpt4();
    let response = llm.complete(&prompt).unwrap();
    let context = PromptContext::parse(&prompt);

    let mut group = c.benchmark_group("planning");
    group.bench_function("prompt_construction", |b| {
        b.iter(|| builder.planning_prompt(black_box(data.lake.catalog()), black_box(query), &[]))
    });
    group.bench_function("prompt_context_parsing", |b| {
        b.iter(|| PromptContext::parse(black_box(&prompt)))
    });
    group.bench_function("intent_analysis", |b| {
        b.iter(|| analyze(black_box(query), black_box(&context.tables)))
    });
    group.bench_function("plan_synthesis", |b| {
        let intent = analyze(query, &context.tables);
        b.iter(|| synthesize(black_box(&intent), black_box(&context.tables)))
    });
    group.bench_function("full_planning_round_trip", |b| {
        b.iter(|| llm.complete(black_box(&prompt)).unwrap())
    });
    group.bench_function("plan_text_parsing", |b| {
        b.iter(|| LogicalPlan::parse(black_box(&response)).unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench_planning);
criterion_main!(benches);
