//! End-to-end query latency (discovery → planning → mapping → execution) for
//! representative queries on both data lakes, plus a perception-batch-size
//! axis (batch 1 vs default) over the multi-modal queries. The companion
//! LLM-*call* numbers are recorded by the `llm_calls` binary in
//! `BENCH_llm_calls.json`.

use caesura_core::CaesuraConfig;
use caesura_llm::ModelProfile;
use caesura_modal::BatchConfig;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_end_to_end(c: &mut Criterion) {
    let artwork = caesura_bench::artwork_session(ModelProfile::Gpt4);
    let rotowire = caesura_bench::rotowire_session(ModelProfile::Gpt4);

    let mut group = c.benchmark_group("end_to_end");
    group.sample_size(20);
    group.bench_function("artwork_relational_count", |b| {
        b.iter(|| {
            artwork
                .query(black_box("How many paintings are in the museum?"))
                .unwrap()
        })
    });
    group.bench_function("artwork_figure1_plot", |b| {
        b.iter(|| {
            artwork
                .query(black_box(
                    "Plot the number of paintings depicting Madonna and Child for each century!",
                ))
                .unwrap()
        })
    });
    group.bench_function("rotowire_figure4_query1", |b| {
        b.iter(|| {
            rotowire
                .query(black_box(
                    "For every team, what is the highest number of points they scored in a game?",
                ))
                .unwrap()
        })
    });
    // Perception batch-size axis on the multi-modal showcase query: the
    // degenerate one-request-per-dispatch configuration, compared against
    // the default-config `artwork_figure1_plot` baseline above.
    let batch1 = caesura_bench::artwork_session_with(
        ModelProfile::Gpt4,
        CaesuraConfig {
            llm_batch: Some(BatchConfig::new(1)),
            ..CaesuraConfig::default()
        },
    );
    group.bench_function("artwork_figure1_plot_llm_batch_1", |b| {
        b.iter(|| {
            batch1
                .query(black_box(
                    "Plot the number of paintings depicting Madonna and Child for each century!",
                ))
                .unwrap()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_end_to_end);
criterion_main!(benches);
