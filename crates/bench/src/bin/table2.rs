//! Regenerates Table 2 of the paper: the number of planning / mapping mistakes
//! per error category for both simulated model profiles.

fn main() {
    let reports = caesura_bench::default_reports();
    println!("{}", caesura_eval::render_table2(&reports));
    println!();
    for report in &reports {
        println!("{}", caesura_eval::render_per_query(report));
    }
}
