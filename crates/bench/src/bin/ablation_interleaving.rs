//! Ablation: interleaved mapping + execution (§3.1) versus deciding every
//! physical operator up front without observations. The paper argues that
//! interleaving "leads to more plans that are in fact executable"; this
//! binary quantifies that claim on the 48-query benchmark.

use caesura_core::CaesuraConfig;
use caesura_llm::ModelProfile;

fn main() {
    for (label, interleaved) in [("interleaved (default)", true), ("up-front mapping", false)] {
        let config = CaesuraConfig {
            interleaved,
            ..CaesuraConfig::default()
        };
        let report = caesura_bench::report_with_config(ModelProfile::Gpt4, config);
        let (logical, physical) = report.accuracy(|_| true);
        let (_, physical_mm) = report.accuracy(|r| r.multimodal);
        println!(
            "{label:<24} logical {:>5.1}%   physical {:>5.1}%   physical (multi-modal only) {:>5.1}%",
            logical * 100.0,
            physical * 100.0,
            physical_mm * 100.0
        );
    }
}
