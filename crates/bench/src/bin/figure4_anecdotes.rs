//! Regenerates Figure 4 of the paper: the two anecdote queries, their logical
//! plans, physical plans (operators + arguments), and results.
//!
//! Query 1 (rotowire): "For every team, what is the highest number of points
//! they scored in a game?"
//! Query 2 (artwork): "Plot the maximum number of swords depicted on the
//! paintings of each century."

use caesura_core::QueryRun;
use caesura_llm::ModelProfile;

fn show(run: &QueryRun) {
    println!("Query: {}\n", run.query);
    if let Some(plan) = &run.logical_plan {
        println!("Logical plan:\n{}", plan.render());
    }
    println!("Physical plan:");
    for decision in &run.decisions {
        println!(
            "  Step {}: {} ({})",
            decision.step_number,
            decision.operator.name(),
            decision.arguments.join("; ")
        );
    }
    match &run.output {
        Ok(output) => println!("\nResult:\n{output}"),
        Err(error) => println!("\nExecution failed: {error}"),
    }
    println!("\n{}\n", "=".repeat(78));
}

fn main() {
    let rotowire = caesura_bench::rotowire_session(ModelProfile::Gpt4);
    show(
        &rotowire
            .run("For every team, what is the highest number of points they scored in a game?"),
    );
    let artwork = caesura_bench::artwork_session(ModelProfile::Gpt4);
    show(
        &artwork
            .run("Plot the maximum number of swords depicted on the paintings of each century."),
    );
}
