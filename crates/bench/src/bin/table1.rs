//! Regenerates Table 1 of the paper: plan-quality accuracy (logical /
//! physical) per dataset, modality, and output format, for the ChatGPT-3.5 and
//! GPT-4 simulated profiles.

fn main() {
    let reports = caesura_bench::default_reports();
    println!("{}", caesura_eval::render_table1(&reports));
    for report in &reports {
        println!(
            "{}: {} LLM round trips across the 48 queries",
            report.model,
            report.total_llm_calls()
        );
    }
}
