//! Ablation: few-shot examples in the planning prompt (§3.1) on vs off.

use caesura_core::CaesuraConfig;
use caesura_llm::ModelProfile;

fn main() {
    for (label, few_shot) in [
        ("with few-shot examples", true),
        ("zero-shot planning", false),
    ] {
        let config = CaesuraConfig {
            few_shot,
            ..CaesuraConfig::default()
        };
        let report = caesura_bench::report_with_config(ModelProfile::Gpt4, config);
        let (logical, physical) = report.accuracy(|_| true);
        println!(
            "{label:<24} logical {:>5.1}%   physical {:>5.1}%   ({} LLM calls)",
            logical * 100.0,
            physical * 100.0,
            report.total_llm_calls()
        );
    }
}
