//! Regenerates Figure 3 of the paper: the actual planning-phase and
//! mapping-phase prompts CAESURA builds for the running example.

use caesura_data::{generate_artwork, ArtworkConfig};
use caesura_llm::{LogicalStep, PromptBuilder, RelevantColumn};

fn main() {
    let data = generate_artwork(&ArtworkConfig::default());
    let builder = PromptBuilder::default();
    let query = "Plot the number of paintings depicting Madonna and Child for each century!";
    let relevant = vec![RelevantColumn {
        table: "paintings_metadata".into(),
        column: "inception".into(),
        examples: data
            .lake
            .catalog()
            .table("paintings_metadata")
            .unwrap()
            .example_values("inception", 3)
            .unwrap(),
    }];

    println!("================ Planning Phase Prompt ================\n");
    println!(
        "{}",
        builder
            .planning_prompt(data.lake.catalog(), query, &relevant)
            .render()
    );

    let step = LogicalStep::new(
        1,
        "Extract the century from the dates in the 'inception' column of the 'paintings_metadata' table.",
        vec!["paintings_metadata".into()],
        "paintings_metadata",
        vec!["century".into()],
    );
    println!("\n================ Mapping Phase Prompt ================\n");
    println!(
        "{}",
        builder
            .mapping_prompt(
                data.lake.catalog(),
                &caesura_engine::Catalog::new(),
                query,
                &step,
                &relevant,
                &[],
                None
            )
            .render()
    );
}
