//! The serving axis of the benchmark suite: drives the 48-query simulated-LLM
//! evaluation workload through the concurrent submission API
//! (`Caesura::submit` → scheduler pool → `QueryHandle::wait`) at concurrency
//! 1, 4, and 16 over **one shared session pair**, and records throughput
//! (queries/second) and submission-to-completion latency percentiles
//! (p50/p95, queue wait included) to `BENCH_serving.json` at the repository
//! root.
//!
//! Also asserts, per concurrency level, that every query completes and that
//! the graded accuracy matches the serial evaluation — concurrency must be a
//! pure serving optimization, never an answer change.
//!
//! Run with `cargo run --release -p caesura-bench --bin serving`.

use caesura_bench::BENCH_SEED;
use caesura_eval::{evaluate_model, evaluate_model_concurrent, EvaluationConfig};
use caesura_llm::ModelProfile;
use std::fmt::Write as _;

const CONCURRENCY_AXIS: [usize; 3] = [1, 4, 16];

fn main() {
    let config = EvaluationConfig {
        seed: BENCH_SEED,
        ..EvaluationConfig::default()
    };

    // Serial reference for the accuracy-invariance assertion.
    let serial = evaluate_model(ModelProfile::Gpt4, &config);
    let (serial_logical, serial_physical) = serial.accuracy(|_| true);

    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(
        "  \"description\": \"Throughput and latency of the concurrent session serving API \
         (PR 5): the 48-query GPT-4-profile evaluation workload submitted through \
         Caesura::submit to one shared session pair (one artwork + one rotowire session, \
         shared lake / retriever / perception cache) at scheduler concurrency 1, 4, and 16. \
         'qps' is completed queries per second of wall clock from first submission to last \
         completion; latency percentiles are per-query submission-to-completion (queue wait \
         + run time, nearest rank). Grades are asserted identical to the serial evaluation \
         at every concurrency level: the scheduler is a pure serving optimization.\",\n",
    );
    out.push_str("  \"command\": \"cargo run --release -p caesura-bench --bin serving\",\n");
    out.push_str(
        "  \"acceptance\": \"every concurrency level completes all 48 queries with accuracy \
         identical to the serial evaluation, and BENCH_serving.json records qps and p50/p95 \
         latency at concurrency {1, 4, 16} over one shared session (cancellation bounded-time \
         and no-thread-leak guarantees are asserted by tests/cancellation.rs, not here)\",\n",
    );
    out.push_str(
        "  \"hardware_note\": \"Measured on a 1-CPU container (nproc=1), same convention as \
         BENCH_operators.json: the simulated LLM answers are CPU-bound and instant, so extra \
         scheduler workers can only time-slice one core and concurrency shows scheduling \
         overhead instead of speedup here. The serving design targets the production shape \
         where each query spends most wall clock blocked on remote LLM round trips — there, \
         N workers overlap N in-flight waits. Re-run on multi-core hardware (or against a \
         remote backend) to record real scaling.\",\n",
    );
    out.push_str(&format!(
        "  \"workload\": {{\"queries\": {}, \"model\": \"{}\", \"seed\": {}, \
         \"serial_logical_accuracy\": {:.4}, \"serial_physical_accuracy\": {:.4}}},\n",
        serial.results.len(),
        serial.model,
        BENCH_SEED,
        serial_logical,
        serial_physical,
    ));

    out.push_str("  \"results\": {\n");
    for (index, &concurrency) in CONCURRENCY_AXIS.iter().enumerate() {
        let serving = evaluate_model_concurrent(ModelProfile::Gpt4, &config, concurrency);
        assert_eq!(
            serving.report.results.len(),
            serial.results.len(),
            "concurrency {concurrency}: not every query completed"
        );
        let (logical, physical) = serving.report.accuracy(|_| true);
        assert_eq!(
            (logical, physical),
            (serial_logical, serial_physical),
            "concurrency {concurrency}: accuracy diverged from the serial evaluation"
        );
        let qps = serving.queries_per_second();
        let p50 = serving.latency_percentile(0.5);
        let p95 = serving.latency_percentile(0.95);
        writeln!(
            out,
            "    \"concurrency_{concurrency}\": {{\"workers\": {concurrency}, \
             \"wall_clock_ms\": {:.3}, \"qps\": {:.2}, \"p50_latency_ms\": {:.3}, \
             \"p95_latency_ms\": {:.3}, \"logical_accuracy\": {:.4}, \
             \"physical_accuracy\": {:.4}}}{}",
            serving.wall_clock.as_secs_f64() * 1e3,
            qps,
            p50.as_secs_f64() * 1e3,
            p95.as_secs_f64() * 1e3,
            logical,
            physical,
            if index + 1 < CONCURRENCY_AXIS.len() {
                ","
            } else {
                ""
            },
        )
        .unwrap();
        println!(
            "concurrency {concurrency:>2}: {:>7.2} qps, p50 {:>8.3} ms, p95 {:>8.3} ms, \
             wall clock {:>9.3} ms",
            qps,
            p50.as_secs_f64() * 1e3,
            p95.as_secs_f64() * 1e3,
            serving.wall_clock.as_secs_f64() * 1e3,
        );
    }
    out.push_str("  }\n}\n");

    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_serving.json");
    std::fs::write(path, &out).expect("write BENCH_serving.json");
    println!("wrote {path}");
}
