//! The serving axis of the benchmark suite: drives the 48-query simulated-LLM
//! evaluation workload through the concurrent submission API
//! (`Caesura::submit` → scheduler pool → `QueryHandle::wait`) at concurrency
//! 1, 4, and 16 over **one shared session pair**, and records throughput
//! (queries/second) and submission-to-completion latency percentiles
//! (p50/p95, queue wait included) to `BENCH_serving.json` at the repository
//! root.
//!
//! Also asserts, per concurrency level, that every query completes and that
//! the graded accuracy matches the serial evaluation — concurrency must be a
//! pure serving optimization, never an answer change.
//!
//! A second, **mixed-workload** axis (PR 8) pits an interactive tenant
//! against a batch tenant flooding the queue of a one-worker session, once
//! under the weighted-fair scheduler and once under plain FIFO
//! (`fair_sched: Some(false)`), and asserts the fair scheduler improves the
//! interactive tenant's p95 submission-to-completion latency.
//!
//! A third, **fieldwork** axis (PR 9) drives the 42-query multi-step
//! multi-modal suite of the third lake through the same scheduler at
//! concurrency 1, 4 and 16, asserting every clean oracle and every
//! adversarial expectation is met at each level — multi-step traffic whose
//! every plan chains 3+ steps is scheduled without answer changes too.
//!
//! Run with `cargo run --release -p caesura-bench --bin serving`.

use caesura_bench::BENCH_SEED;
use caesura_core::{Caesura, CaesuraConfig, SubmitOptions};
use caesura_data::{generate_artwork, ArtworkConfig};
use caesura_eval::{
    evaluate_fieldwork, evaluate_fieldwork_concurrent, evaluate_model, evaluate_model_concurrent,
    percentile, EvaluationConfig,
};
use caesura_llm::{ModelProfile, SimulatedLlm};
use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Duration;

const CONCURRENCY_AXIS: [usize; 3] = [1, 4, 16];

/// Size of the batch-tenant flood in the mixed-workload axis.
const BATCH_FLOOD: usize = 40;
/// Interactive submissions measured against the flood.
const INTERACTIVE_QUERIES: usize = 8;

/// Latency summary of one mixed-workload run.
struct MixedRun {
    interactive_p50: Duration,
    interactive_p95: Duration,
    batch_completed: usize,
    interactive_completed: usize,
    wall_clock: Duration,
}

/// Drive the mixed workload through one single-worker session: flood
/// `BATCH_FLOOD` batch-priority submissions from tenant "batch", then submit
/// `INTERACTIVE_QUERIES` interactive-priority queries from tenant
/// "interactive", and measure the interactive tenant's
/// submission-to-completion latency (queue wait + run time). `fair` toggles
/// the weighted-fair scheduler against the PR 5 FIFO baseline.
fn mixed_workload(fair: bool) -> MixedRun {
    let data = generate_artwork(&ArtworkConfig::small());
    let llm = Arc::new(SimulatedLlm::new(ModelProfile::Gpt4, BENCH_SEED));
    let config = CaesuraConfig {
        session_workers: Some(1),
        session_queue: Some(BATCH_FLOOD + INTERACTIVE_QUERIES),
        fair_sched: Some(fair),
        ..CaesuraConfig::default()
    };
    let session = Caesura::with_config(data.lake, llm, config);

    let started = std::time::Instant::now();
    let batch: Vec<_> = (0..BATCH_FLOOD)
        .map(|_| {
            session
                .submit_with(
                    "How many paintings are in the museum?",
                    SubmitOptions::for_tenant("batch").batch(),
                )
                .expect("queue sized for the whole flood")
        })
        .collect();
    let interactive: Vec<_> = (0..INTERACTIVE_QUERIES)
        .map(|_| {
            session
                .submit_with(
                    "How many paintings depict a horse?",
                    SubmitOptions::for_tenant("interactive"),
                )
                .expect("queue sized for the whole flood")
        })
        .collect();

    let mut latencies: Vec<Duration> = interactive
        .into_iter()
        .map(|handle| {
            let run = handle.wait();
            assert!(
                run.succeeded(),
                "interactive query failed: {:?}",
                run.output
            );
            run.trace.timings().end_to_end()
        })
        .collect();
    for handle in batch {
        assert!(handle.wait().succeeded(), "batch query failed");
    }
    let wall_clock = started.elapsed();

    let tenants = session.tenant_stats();
    let stat = |name: &str| {
        tenants
            .iter()
            .find(|t| t.tenant == name)
            .expect("tenant served at least one query")
            .completed
    };
    MixedRun {
        interactive_p50: percentile(&mut latencies.clone(), 0.5),
        interactive_p95: percentile(&mut latencies, 0.95),
        batch_completed: stat("batch"),
        interactive_completed: stat("interactive"),
        wall_clock,
    }
}

fn main() {
    let config = EvaluationConfig {
        seed: BENCH_SEED,
        ..EvaluationConfig::default()
    };

    // Serial reference for the accuracy-invariance assertion.
    let serial = evaluate_model(ModelProfile::Gpt4, &config);
    let (serial_logical, serial_physical) = serial.accuracy(|_| true);

    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(
        "  \"description\": \"Throughput and latency of the concurrent session serving API \
         (PR 5): the 48-query GPT-4-profile evaluation workload submitted through \
         Caesura::submit to one shared session pair (one artwork + one rotowire session, \
         shared lake / retriever / perception cache) at scheduler concurrency 1, 4, and 16. \
         'qps' is completed queries per second of wall clock from first submission to last \
         completion; latency percentiles are per-query submission-to-completion (queue wait \
         + run time, nearest rank). Grades are asserted identical to the serial evaluation \
         at every concurrency level: the scheduler is a pure serving optimization. The \
         mixed_workload axis (PR 8) measures the weighted-fair scheduler against FIFO while \
         a batch tenant floods the queue. The fieldwork_results axis (PR 9) schedules the \
         42-query multi-step multi-modal suite of the third lake at the same concurrency \
         levels, asserting every clean oracle and adversarial expectation holds at each.\",\n",
    );
    out.push_str("  \"command\": \"cargo run --release -p caesura-bench --bin serving\",\n");
    out.push_str(
        "  \"acceptance\": \"every concurrency level completes all 48 queries with accuracy \
         identical to the serial evaluation; BENCH_serving.json records qps and p50/p95 \
         latency at concurrency {1, 4, 16} over one shared session, plus the mixed-workload \
         axis where the fair scheduler's interactive p95 must beat FIFO's while a batch \
         tenant saturates the queue, plus the fieldwork axis where the 42-query multi-step \
         suite meets 100% of its clean and adversarial expectations at concurrency {1, 4, 16} \
         (cancellation bounded-time and no-thread-leak guarantees are asserted by \
         tests/cancellation.rs, not here)\",\n",
    );
    out.push_str(
        "  \"hardware_note\": \"Measured on a 1-CPU container (nproc=1), same convention as \
         BENCH_operators.json: the simulated LLM answers are CPU-bound and instant, so extra \
         scheduler workers can only time-slice one core and concurrency shows scheduling \
         overhead instead of speedup here. The serving design targets the production shape \
         where each query spends most wall clock blocked on remote LLM round trips — there, \
         N workers overlap N in-flight waits. Re-run on multi-core hardware (or against a \
         remote backend) to record real scaling.\",\n",
    );
    out.push_str(&format!(
        "  \"workload\": {{\"queries\": {}, \"model\": \"{}\", \"seed\": {}, \
         \"serial_logical_accuracy\": {:.4}, \"serial_physical_accuracy\": {:.4}}},\n",
        serial.results.len(),
        serial.model,
        BENCH_SEED,
        serial_logical,
        serial_physical,
    ));

    out.push_str("  \"results\": {\n");
    for (index, &concurrency) in CONCURRENCY_AXIS.iter().enumerate() {
        let serving = evaluate_model_concurrent(ModelProfile::Gpt4, &config, concurrency);
        assert_eq!(
            serving.report.results.len(),
            serial.results.len(),
            "concurrency {concurrency}: not every query completed"
        );
        let (logical, physical) = serving.report.accuracy(|_| true);
        assert_eq!(
            (logical, physical),
            (serial_logical, serial_physical),
            "concurrency {concurrency}: accuracy diverged from the serial evaluation"
        );
        let qps = serving.queries_per_second();
        let p50 = serving.latency_percentile(0.5);
        let p95 = serving.latency_percentile(0.95);
        writeln!(
            out,
            "    \"concurrency_{concurrency}\": {{\"workers\": {concurrency}, \
             \"wall_clock_ms\": {:.3}, \"qps\": {:.2}, \"p50_latency_ms\": {:.3}, \
             \"p95_latency_ms\": {:.3}, \"logical_accuracy\": {:.4}, \
             \"physical_accuracy\": {:.4}}}{}",
            serving.wall_clock.as_secs_f64() * 1e3,
            qps,
            p50.as_secs_f64() * 1e3,
            p95.as_secs_f64() * 1e3,
            logical,
            physical,
            if index + 1 < CONCURRENCY_AXIS.len() {
                ","
            } else {
                ""
            },
        )
        .unwrap();
        println!(
            "concurrency {concurrency:>2}: {:>7.2} qps, p50 {:>8.3} ms, p95 {:>8.3} ms, \
             wall clock {:>9.3} ms",
            qps,
            p50.as_secs_f64() * 1e3,
            p95.as_secs_f64() * 1e3,
            serving.wall_clock.as_secs_f64() * 1e3,
        );
    }
    out.push_str("  },\n");

    // Fieldwork axis: the 42-query multi-step suite of the third lake,
    // scheduled at the same concurrency levels. Every plan chains 3+ steps
    // across modalities and the adversarial tier *must* fail in its expected
    // way at every level — scheduling never converts a typed execution error
    // into a NULL or vice versa.
    let fieldwork_serial = evaluate_fieldwork(ModelProfile::Gpt4, &config);
    let serial_met = fieldwork_serial.expectation_accuracy(|_| true);
    assert_eq!(
        serial_met, 1.0,
        "serial fieldwork run missed an expectation"
    );
    out.push_str(&format!(
        "  \"fieldwork_results\": {{\n    \"description\": \"the 42-query multi-step \
         multi-modal fieldwork suite ({} clean / {} adversarial) submitted through the same \
         scheduler; 'expectation_met' counts clean queries graded physically correct plus \
         adversarial queries failing exactly as expected (typed execution error or error \
         category), asserted at 1.0 for every concurrency level\",\n",
        fieldwork_serial
            .results
            .iter()
            .filter(|r| r.tier == caesura_eval::Tier::Clean)
            .count(),
        fieldwork_serial
            .results
            .iter()
            .filter(|r| r.tier == caesura_eval::Tier::Adversarial)
            .count(),
    ));
    for (index, &concurrency) in CONCURRENCY_AXIS.iter().enumerate() {
        let serving = evaluate_fieldwork_concurrent(ModelProfile::Gpt4, &config, concurrency);
        assert_eq!(
            serving.report.results.len(),
            fieldwork_serial.results.len(),
            "fieldwork concurrency {concurrency}: not every query completed"
        );
        let met = serving.report.expectation_accuracy(|_| true);
        assert_eq!(
            met, 1.0,
            "fieldwork concurrency {concurrency}: an expectation was missed"
        );
        let qps = serving.queries_per_second();
        let p50 = serving.latency_percentile(0.5);
        let p95 = serving.latency_percentile(0.95);
        writeln!(
            out,
            "    \"concurrency_{concurrency}\": {{\"workers\": {concurrency}, \
             \"wall_clock_ms\": {:.3}, \"qps\": {:.2}, \"p50_latency_ms\": {:.3}, \
             \"p95_latency_ms\": {:.3}, \"expectation_met\": {:.4}}}{}",
            serving.wall_clock.as_secs_f64() * 1e3,
            qps,
            p50.as_secs_f64() * 1e3,
            p95.as_secs_f64() * 1e3,
            met,
            if index + 1 < CONCURRENCY_AXIS.len() {
                ","
            } else {
                ""
            },
        )
        .unwrap();
        println!(
            "fieldwork concurrency {concurrency:>2}: {:>7.2} qps, p50 {:>8.3} ms, \
             p95 {:>8.3} ms, wall clock {:>9.3} ms",
            qps,
            p50.as_secs_f64() * 1e3,
            p95.as_secs_f64() * 1e3,
            serving.wall_clock.as_secs_f64() * 1e3,
        );
    }
    out.push_str("  },\n");

    // Mixed-workload axis: the fair scheduler must shield the interactive
    // tenant's tail latency from the batch flood; FIFO cannot.
    let fair = mixed_workload(true);
    let fifo = mixed_workload(false);
    assert_eq!(fair.batch_completed, BATCH_FLOOD);
    assert_eq!(fair.interactive_completed, INTERACTIVE_QUERIES);
    assert_eq!(fifo.batch_completed, BATCH_FLOOD);
    assert_eq!(fifo.interactive_completed, INTERACTIVE_QUERIES);
    assert!(
        fair.interactive_p95 < fifo.interactive_p95,
        "fair scheduling did not improve interactive p95: fair {:?} vs fifo {:?}",
        fair.interactive_p95,
        fifo.interactive_p95,
    );
    out.push_str(&format!(
        "  \"mixed_workload\": {{\n    \"description\": \"tenant 'batch' floods {BATCH_FLOOD} \
         batch-priority submissions into a 1-worker session, then tenant 'interactive' submits \
         {INTERACTIVE_QUERIES} interactive-priority queries; interactive latency is per-query \
         submission-to-completion (queue wait + run time, nearest rank). Under FIFO the \
         interactive queries drain behind the whole flood; the fair scheduler's priority tiers \
         dequeue them next, so each waits for at most the one in-flight batch query.\",\n",
    ));
    for (label, run) in [("fair", &fair), ("fifo", &fifo)] {
        writeln!(
            out,
            "    \"{label}\": {{\"interactive_p50_ms\": {:.3}, \"interactive_p95_ms\": {:.3}, \
             \"batch_completed\": {}, \"interactive_completed\": {}, \
             \"wall_clock_ms\": {:.3}}},",
            run.interactive_p50.as_secs_f64() * 1e3,
            run.interactive_p95.as_secs_f64() * 1e3,
            run.batch_completed,
            run.interactive_completed,
            run.wall_clock.as_secs_f64() * 1e3,
        )
        .unwrap();
        println!(
            "mixed workload ({label:>4}): interactive p50 {:>8.3} ms, p95 {:>8.3} ms, \
             wall clock {:>9.3} ms",
            run.interactive_p50.as_secs_f64() * 1e3,
            run.interactive_p95.as_secs_f64() * 1e3,
            run.wall_clock.as_secs_f64() * 1e3,
        );
    }
    out.push_str(&format!(
        "    \"interactive_p95_speedup\": {:.2}\n  }}\n}}\n",
        fifo.interactive_p95.as_secs_f64() / fair.interactive_p95.as_secs_f64().max(1e-9),
    ));

    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_serving.json");
    std::fs::write(path, &out).expect("write BENCH_serving.json");
    println!("wrote {path}");
}
