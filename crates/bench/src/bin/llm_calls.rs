//! The LLM-calls axis of the benchmark suite: measures how many model round
//! trips the batched, deduplicated perception layer issues — versus the
//! row-at-a-time baseline of one call per row — and writes the numbers to
//! `BENCH_llm_calls.json` at the repository root.
//!
//! Four sections:
//!
//! * `end_to_end` — the representative queries of the `end_to_end` criterion
//!   bench, run with a `CountingLlm`-wrapped simulated model under batch
//!   sizes 1 and the default. Records planner/mapping round trips
//!   (`CountingLlm::usage`) and the perception rows / unique calls / batches
//!   / dedup savings from the execution trace.
//! * `plan_quality` — the 48-query Table-1 evaluation (the `plan_quality`
//!   criterion bench's workload), aggregating the same perception axis. The
//!   evaluation sessions each run 48 queries, so the session-scoped answer
//!   cache's cross-query hits show up here too.
//! * `duplicate_heavy_operator` — a direct TextQA/VisualQA workload over
//!   duplicate-heavy tables served by an **LLM-backed** perception backend
//!   (`PerceptionLlm<CountingLlm<...>>`), demonstrating that `CountingLlm`
//!   records strictly fewer calls than rows and that batch size only changes
//!   dispatch granularity.
//! * `perception_cache` — the session-scoped answer cache (PR 4) on the two
//!   workload shapes it targets: a multi-step plan whose later step re-asks
//!   the same questions (cross-step), and the same query run back-to-back
//!   over one lake (cross-query). Cache on must show strictly fewer backend
//!   calls than cache off; the repeated step/query must cost zero.
//! * `plan_cache` — the session-scoped validated-plan cache (PR 7) on repeat
//!   traffic: a round of queries run twice through one session, with the
//!   cache off versus on. With the cache on the warm round must reach the
//!   LLM client **zero** times — planning and mapping are skipped entirely,
//!   the cached decisions replay against the executor.
//! * `fieldwork_plan_cache` — the same repeat-traffic axis over the third
//!   (fieldwork) lake, whose plans chain 3+ steps across two or three
//!   modalities: warm repeats of the multi-step chains must also replay at
//!   zero planner/mapping LLM calls.
//! * `persistent_store` — the restart axis of the durable cache tier
//!   (PR 10): one process populates a `CAESURA_CACHE_DIR`-style store and
//!   exits (session dropped, lock released); a *fresh* process over the same
//!   directory replays the workload. The warm process must make **zero**
//!   planner/mapping LLM calls and zero perception-backend dispatches — the
//!   session-scoped caches start empty, so every answer is served by the
//!   disk tier.
//!
//! Run with `cargo run --release -p caesura-bench --bin llm_calls`.

use caesura_bench::BENCH_SEED;
use caesura_core::{Caesura, CaesuraConfig, PerceptionCalls};
use caesura_data::{
    generate_artwork, generate_fieldwork, generate_rotowire, ArtworkConfig, FieldworkConfig,
    RotowireConfig,
};
use caesura_engine::{DataType, Schema, TableBuilder, Value};
use caesura_eval::{evaluate_model, EvaluationConfig};
use caesura_llm::{
    Conversation, CountingLlm, LlmClient, LlmResult, ModelProfile, PerceptionLlm, PlanCacheConfig,
    SimulatedLlm,
};
use caesura_modal::operators::{apply_text_qa_with, apply_visual_qa_with};
use caesura_modal::{BatchConfig, CacheConfig, ImageObject, ImageStore, PerceptionCache};
use caesura_store::PersistConfig;
use std::fmt::Write as _;
use std::sync::Arc;

fn main() {
    let sections = [
        end_to_end_section(),
        plan_quality_section(),
        duplicate_heavy_section(),
        perception_cache_section(),
        plan_cache_section(),
        fieldwork_plan_cache_section(),
        persistent_store_section(),
    ];

    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(
        "  \"description\": \"LLM-call counts of the batched, deduplicated perception layer \
         (PR 3). 'llm_calls' are planning/mapping/recovery completions (conversations served; \
         a complete_batch dispatch can carry several per round trip); 'perception' counts \
         the per-row perception-operator model calls after gather->dedup->batch->scatter. \
         'saved' is calls avoided by dedup versus one call per row. Counts are deterministic \
         (simulated models, fixed seed) and identical across batch sizes; batch size only \
         changes how many dispatches carry them. Note: the end_to_end / plan_quality plans \
         instantiate one question per row (e.g. 'How many points did <teams.name> score?'), so \
         every (input, question) pair is distinct and dedup honestly saves nothing there; the \
         duplicate_heavy_operator section isolates the Rotowire-style repetition (same document \
         asked the same question across rows) where dedup collapses calls. The \
         perception_cache section (PR 4) measures the session-scoped answer cache: with the \
         cache on, a question re-asked by a later plan step or a back-to-back query over the \
         same lake never reaches the backend, so backend calls are strictly fewer than with \
         the cache off on repeated-question workloads. The plan_cache section (PR 7) \
         measures the session-scoped validated-plan cache on repeat traffic: the warm round \
         of a repeated workload must make exactly zero planner/mapping LLM calls with the \
         cache on (the cached, already-validated decisions replay straight against the \
         executor), while the cache-off warm round re-pays the cold round in full. The \
         fieldwork_plan_cache section repeats that axis on the third (fieldwork) lake, \
         whose every plan chains 3+ steps across two or three modalities — the multi-step \
         chains replay from the cache just as cheaply as the short artwork plans. The \
         persistent_store section (PR 10) measures the durable on-disk tier across a \
         simulated process restart: a cold process populates the store, a fresh process \
         over the same directory replays the workload at zero planner/mapping LLM calls \
         and zero perception-backend dispatches — every answer, compiled transform, and \
         validated plan is served from disk.\",\n",
    );
    out.push_str("  \"command\": \"cargo run --release -p caesura-bench --bin llm_calls\",\n");
    out.push_str(
        "  \"acceptance\": \"on the duplicate-heavy workload CountingLlm must record strictly \
         fewer calls than rows, and batched output must be byte-identical to the row-at-a-time \
         reference (asserted by tests/property_batch.rs)\",\n",
    );
    for (i, section) in sections.iter().enumerate() {
        out.push_str(section);
        out.push_str(if i + 1 < sections.len() { ",\n" } else { "\n" });
    }
    out.push_str("}\n");

    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_llm_calls.json");
    std::fs::write(path, &out).expect("write BENCH_llm_calls.json");
    println!("{out}");
    println!("wrote {path}");
}

fn perception_json(p: &PerceptionCalls) -> String {
    format!(
        "{{\"rows\": {}, \"calls\": {}, \"batches\": {}, \"saved\": {}}}",
        p.rows, p.calls, p.batches, p.saved_calls
    )
}

fn end_to_end_section() -> String {
    let queries: &[(&str, &str, bool)] = &[
        (
            "artwork_relational_count",
            "How many paintings are in the museum?",
            true,
        ),
        (
            "artwork_figure1_plot",
            "Plot the number of paintings depicting Madonna and Child for each century!",
            true,
        ),
        (
            "rotowire_figure4_query1",
            "For every team, what is the highest number of points they scored in a game?",
            false,
        ),
    ];
    let mut out = String::from("  \"end_to_end\": {\n");
    for (qi, (name, query, artwork)) in queries.iter().enumerate() {
        write!(out, "    \"{name}\": {{").unwrap();
        // Fixed labels: keying by batch_size would emit duplicate JSON keys
        // when CAESURA_LLM_BATCH=1 makes the default batch size 1 too.
        for (bi, (label, batch)) in [
            ("batch_1", BatchConfig::new(1)),
            ("batch_default", BatchConfig::default()),
        ]
        .iter()
        .enumerate()
        {
            let counting = Arc::new(CountingLlm::new(SimulatedLlm::new(
                ModelProfile::Gpt4,
                BENCH_SEED,
            )));
            let config = CaesuraConfig {
                llm_batch: Some(*batch),
                ..CaesuraConfig::default()
            };
            let session = if *artwork {
                Caesura::with_config(
                    generate_artwork(&ArtworkConfig::default()).lake,
                    counting.clone(),
                    config,
                )
            } else {
                Caesura::with_config(
                    generate_rotowire(&RotowireConfig::default()).lake,
                    counting.clone(),
                    config,
                )
            };
            let run = session.run(query);
            assert!(run.succeeded(), "bench query '{name}' must succeed");
            let usage = counting.usage();
            write!(
                out,
                "\"{label}\": {{\"batch_size\": {}, \"llm_calls\": {}, \"prompt_tokens\": {}, \
                 \"perception\": {}}}",
                batch.batch_size,
                usage.calls,
                usage.prompt_tokens,
                perception_json(&run.trace.perception_calls())
            )
            .unwrap();
            if bi == 0 {
                out.push_str(", ");
            }
        }
        out.push('}');
        out.push_str(if qi + 1 < queries.len() { ",\n" } else { "\n" });
    }
    out.push_str("  }");
    out
}

fn plan_quality_section() -> String {
    let mut out = String::from("  \"plan_quality\": {\n");
    for (bi, (label, batch)) in [
        ("batch_1", BatchConfig::new(1)),
        ("batch_default", BatchConfig::default()),
    ]
    .iter()
    .enumerate()
    {
        let config = EvaluationConfig {
            seed: BENCH_SEED,
            artwork: ArtworkConfig::small(),
            rotowire: RotowireConfig::small(),
            caesura: CaesuraConfig {
                llm_batch: Some(*batch),
                ..CaesuraConfig::default()
            },
            ..EvaluationConfig::default()
        };
        let report = evaluate_model(ModelProfile::Gpt4, &config);
        let (dispatched, saved) = report.total_perception_calls();
        let rows: usize = report.results.iter().map(|r| r.perception.rows).sum();
        let batches: usize = report.results.iter().map(|r| r.perception.batches).sum();
        // The benchmark's sessions run 48 queries each, so the (default-on)
        // session-scoped answer cache collapses questions repeated across
        // queries — surfaced here so "calls" < "rows" is attributable.
        let cache_hits = report.total_perception_cache_hits();
        write!(
            out,
            "    \"table1_gpt4_profile_48_queries_{label}\": {{\"batch_size\": {}, \
             \"llm_calls\": {}, \"perception\": {{\"rows\": {rows}, \"calls\": {dispatched}, \
             \"batches\": {batches}, \"saved\": {saved}, \"cache_hits\": {cache_hits}}}}}",
            batch.batch_size,
            report.total_llm_calls(),
        )
        .unwrap();
        out.push_str(if bi == 0 { ",\n" } else { "\n" });
    }
    out.push_str("  }");
    out
}

/// A deterministic LLM answering every perception prompt with a constant.
struct ConstLlm;

impl LlmClient for ConstLlm {
    fn complete(&self, _conversation: &Conversation) -> LlmResult<String> {
        Ok("42".to_string())
    }
    fn name(&self) -> &str {
        "const"
    }
}

fn duplicate_heavy_section() -> String {
    // TextQA: 48 rows over 4 teams x 3 repeated reports -> 12 unique calls.
    let teams = ["Heat", "Spurs", "Bulls", "Lakers"];
    let reports = [
        "The Heat defeated the Spurs 110-102.",
        "The Bulls defeated the Lakers 99-95.",
        "The Spurs defeated the Bulls 120-101.",
    ];
    let schema = Schema::from_pairs(&[("name", DataType::Str), ("report", DataType::Text)]);
    let mut builder = TableBuilder::new("joined_reports", schema);
    for i in 0..48 {
        builder
            .push_row(vec![
                Value::str(teams[i % teams.len()]),
                Value::text(reports[i % reports.len()]),
            ])
            .unwrap();
    }
    let table = builder.build();

    // VisualQA: 64 rows over 8 distinct images -> 8 unique calls.
    let mut store = ImageStore::new();
    for i in 0..8 {
        store.insert(ImageObject::new(format!("img/{i}.png")).with_object("sword", i as u32));
    }
    let schema = Schema::from_pairs(&[("image", DataType::Image)]);
    let mut builder = TableBuilder::new("gallery", schema);
    for i in 0..64 {
        builder
            .push_row(vec![Value::image(format!("img/{}.png", i % 8))])
            .unwrap();
    }
    let gallery = builder.build();

    let mut out = String::from("  \"duplicate_heavy_operator\": {\n");
    for (bi, (label, batch)) in [
        ("batch_1", BatchConfig::new(1)),
        ("batch_default", BatchConfig::default()),
    ]
    .iter()
    .enumerate()
    {
        let text_backend = PerceptionLlm::new(CountingLlm::new(ConstLlm));
        let (text_stats, text_result) = apply_text_qa_with(
            &table,
            &text_backend,
            "report",
            "points",
            "How many points did <name> score?",
            DataType::Int,
            batch,
            None,
        );
        text_result.expect("duplicate-heavy TextQA workload");
        let text_usage = text_backend.inner().usage();
        assert!(
            text_usage.calls < table.num_rows(),
            "dedup must save calls: {} vs {} rows",
            text_usage.calls,
            table.num_rows()
        );

        let visual_backend = PerceptionLlm::new(CountingLlm::new(ConstLlm));
        let (visual_stats, visual_result) = apply_visual_qa_with(
            &gallery,
            &store,
            &visual_backend,
            "image",
            "num_swords",
            "How many swords are depicted?",
            DataType::Int,
            batch,
            None,
        );
        visual_result.expect("duplicate-heavy VisualQA workload");
        let visual_usage = visual_backend.inner().usage();
        assert!(visual_usage.calls < gallery.num_rows());

        write!(
            out,
            "    \"{label}\": {{\"batch_size\": {}, \"text_qa\": {{\"rows\": {}, \
             \"counting_llm_calls\": {}, \"batches\": {}, \"saved\": {}}}, \
             \"visual_qa\": {{\"rows\": {}, \"counting_llm_calls\": {}, \"batches\": {}, \
             \"saved\": {}}}}}",
            batch.batch_size,
            text_stats.rows,
            text_usage.calls,
            text_usage.batches,
            text_stats.saved_calls,
            visual_stats.rows,
            visual_usage.calls,
            visual_usage.batches,
            visual_stats.saved_calls,
        )
        .unwrap();
        out.push_str(if bi == 0 { ",\n" } else { "\n" });
    }
    out.push_str("  }");
    out
}

fn perception_cache_section() -> String {
    let mut out = String::from("  \"perception_cache\": {\n");

    // ---- Cross-step axis: a multi-step plan re-asking the same question --
    // Step 1 extracts points per team; step 2 re-asks the identical template
    // over the (unchanged) report column of step 1's output — the
    // Rotowire-style pattern where later plan steps revisit the same
    // documents. CountingLlm counts the calls that actually reach the model.
    let teams = ["Heat", "Spurs", "Bulls", "Lakers"];
    let reports = [
        "The Heat defeated the Spurs 110-102.",
        "The Bulls defeated the Lakers 99-95.",
        "The Spurs defeated the Bulls 120-101.",
    ];
    let schema = Schema::from_pairs(&[("name", DataType::Str), ("report", DataType::Text)]);
    let mut builder = TableBuilder::new("joined_reports", schema);
    for i in 0..48 {
        builder
            .push_row(vec![
                Value::str(teams[i % teams.len()]),
                Value::text(reports[i % reports.len()]),
            ])
            .unwrap();
    }
    let table = builder.build();
    let template = "How many points did <name> score?";

    for (label, cache) in [
        ("cache_off", None),
        ("cache_on", Some(PerceptionCache::with_capacity(1024))),
    ] {
        let backend = PerceptionLlm::new(CountingLlm::new(ConstLlm));
        let (_, step1) = apply_text_qa_with(
            &table,
            &backend,
            "report",
            "points_step1",
            template,
            DataType::Int,
            &BatchConfig::default(),
            cache.as_ref(),
        );
        let step1 = step1.expect("cross-step bench step 1");
        let after_step1 = backend.inner().usage().calls;
        let (step2_stats, step2) = apply_text_qa_with(
            &step1,
            &backend,
            "report",
            "points_step2",
            template,
            DataType::Int,
            &BatchConfig::default(),
            cache.as_ref(),
        );
        step2.expect("cross-step bench step 2");
        let total = backend.inner().usage().calls;
        if cache.is_some() {
            assert_eq!(
                total - after_step1,
                0,
                "a warm cache must serve the repeated step without backend calls"
            );
        } else {
            assert_eq!(total, 2 * after_step1, "uncached steps repeat every call");
        }
        writeln!(
            out,
            "    \"cross_step_{label}\": {{\"rows_per_step\": {}, \"step1_backend_calls\": \
             {after_step1}, \"step2_backend_calls\": {}, \"step2_cache_hits\": {}}},",
            table.num_rows(),
            total - after_step1,
            step2_stats.cache_hits,
        )
        .unwrap();
    }

    // ---- Cross-query axis: back-to-back queries over the same lake -------
    // One session, the same multi-modal Rotowire query twice. With the
    // session-scoped cache the second run's perception calls drop to zero.
    let query = "For every team, what is the highest number of points they scored in a game?";
    for (ci, (label, cache_config)) in [
        ("cache_off", CacheConfig::off()),
        ("cache_on", CacheConfig::new(CacheConfig::DEFAULT_CAPACITY)),
    ]
    .iter()
    .enumerate()
    {
        let config = CaesuraConfig {
            perception_cache: Some(*cache_config),
            ..CaesuraConfig::default()
        };
        let session = Caesura::with_config(
            generate_rotowire(&RotowireConfig::default()).lake,
            Arc::new(CountingLlm::new(SimulatedLlm::new(
                ModelProfile::Gpt4,
                BENCH_SEED,
            ))),
            config,
        );
        let first = session.run(query);
        assert!(first.succeeded(), "cross-query bench run 1");
        let second = session.run(query);
        assert!(second.succeeded(), "cross-query bench run 2");
        let (p1, p2) = (
            first.trace.perception_calls(),
            second.trace.perception_calls(),
        );
        if cache_config.is_enabled() {
            assert_eq!(
                p2.calls, 0,
                "the second identical query must be served entirely from the cache"
            );
            assert!(p2.cache_hits > 0);
        } else {
            assert_eq!(p1.calls, p2.calls, "without a cache both runs pay in full");
        }
        write!(
            out,
            "    \"cross_query_{label}\": {{\"query\": \"rotowire_figure4_query1 x2\", \
             \"run1_backend_calls\": {}, \"run2_backend_calls\": {}, \"run2_cache_hits\": {}}}",
            p1.calls, p2.calls, p2.cache_hits,
        )
        .unwrap();
        out.push_str(if ci == 0 { ",\n" } else { "\n" });
    }
    out.push_str("  }");
    out
}

fn plan_cache_section() -> String {
    // Repeat traffic: one artwork session, a round of distinct queries run
    // twice. The cold round plans live either way; the warm round is where
    // the plan cache pays — its planner/mapping LLM calls must drop to zero.
    let queries = [
        "How many paintings are in the museum?",
        "Plot the number of paintings depicting Madonna and Child for each century!",
        "List the titles of all paintings that depict a horse.",
    ];
    let mut out = String::from("  \"plan_cache\": {\n");
    for (ci, (label, cache_config)) in [
        ("cache_off", PlanCacheConfig::off()),
        (
            "cache_on",
            PlanCacheConfig::new(PlanCacheConfig::DEFAULT_CAPACITY),
        ),
    ]
    .iter()
    .enumerate()
    {
        let counting = Arc::new(CountingLlm::new(SimulatedLlm::new(
            ModelProfile::Gpt4,
            BENCH_SEED,
        )));
        let session = Caesura::with_config(
            generate_artwork(&ArtworkConfig::default()).lake,
            counting.clone(),
            CaesuraConfig {
                plan_cache: Some(*cache_config),
                ..CaesuraConfig::default()
            },
        );
        for query in queries {
            assert!(
                session.run(query).succeeded(),
                "plan-cache bench cold round"
            );
        }
        let cold_calls = counting.usage().calls;
        let mut warm_hits = 0usize;
        for query in queries {
            let run = session.run(query);
            assert!(run.succeeded(), "plan-cache bench warm round");
            warm_hits += run.trace.plan_cache_calls().hits;
        }
        let warm_calls = counting.usage().calls - cold_calls;
        if cache_config.is_enabled() {
            assert_eq!(
                warm_calls, 0,
                "warm repeats must make zero planner/mapping LLM calls with the plan cache on"
            );
            assert_eq!(warm_hits, queries.len(), "every warm repeat must hit");
        } else {
            assert_eq!(
                warm_calls, cold_calls,
                "without the cache the warm round re-pays the cold round"
            );
        }
        write!(
            out,
            "    \"repeat_workload_{label}\": {{\"queries_per_round\": {}, \
             \"cold_round_llm_calls\": {cold_calls}, \"warm_round_llm_calls\": {warm_calls}, \
             \"warm_round_plan_cache_hits\": {warm_hits}}}",
            queries.len(),
        )
        .unwrap();
        out.push_str(if ci == 0 { ",\n" } else { "\n" });
    }
    out.push_str("  }");
    out
}

fn fieldwork_plan_cache_section() -> String {
    // The third-lake axis of the plan-cache benchmark: every fieldwork query
    // is a 3+-step multi-modal chain (join -> perception -> aggregate, one
    // with a plot on top), so a cached replay skips strictly more mapping
    // round trips per hit than the artwork workload above.
    let queries = [
        "What is the maximum number of specimens collected by each station?",
        "What is the maximum number of tents depicted in the station photos of each terrain?",
        "Plot the number of station photos depicting a penguin for each region!",
    ];
    let mut out = String::from("  \"fieldwork_plan_cache\": {\n");
    for (ci, (label, cache_config)) in [
        ("cache_off", PlanCacheConfig::off()),
        (
            "cache_on",
            PlanCacheConfig::new(PlanCacheConfig::DEFAULT_CAPACITY),
        ),
    ]
    .iter()
    .enumerate()
    {
        let counting = Arc::new(CountingLlm::new(SimulatedLlm::new(
            ModelProfile::Gpt4,
            BENCH_SEED,
        )));
        let session = Caesura::with_config(
            generate_fieldwork(&FieldworkConfig::default()).lake,
            counting.clone(),
            CaesuraConfig {
                plan_cache: Some(*cache_config),
                ..CaesuraConfig::default()
            },
        );
        for query in queries {
            assert!(
                session.run(query).succeeded(),
                "fieldwork plan-cache bench cold round"
            );
        }
        let cold_calls = counting.usage().calls;
        let mut warm_hits = 0usize;
        for query in queries {
            let run = session.run(query);
            assert!(run.succeeded(), "fieldwork plan-cache bench warm round");
            warm_hits += run.trace.plan_cache_calls().hits;
        }
        let warm_calls = counting.usage().calls - cold_calls;
        if cache_config.is_enabled() {
            assert_eq!(
                warm_calls, 0,
                "warm fieldwork repeats must make zero planner/mapping LLM calls"
            );
            assert_eq!(warm_hits, queries.len(), "every warm repeat must hit");
        } else {
            assert_eq!(
                warm_calls, cold_calls,
                "without the cache the warm round re-pays the cold round"
            );
        }
        write!(
            out,
            "    \"multi_step_repeat_workload_{label}\": {{\"queries_per_round\": {}, \
             \"cold_round_llm_calls\": {cold_calls}, \"warm_round_llm_calls\": {warm_calls}, \
             \"warm_round_plan_cache_hits\": {warm_hits}}}",
            queries.len(),
        )
        .unwrap();
        out.push_str(if ci == 0 { ",\n" } else { "\n" });
    }
    out.push_str("  }");
    out
}

fn persistent_store_section() -> String {
    // The restart axis of the durable cache tier: each "process" is a fresh
    // session (empty in-memory caches) over one on-disk store directory, run
    // strictly in sequence — the store's file lock admits one live session
    // per directory, exactly like two real processes sharing a cache dir.
    let queries = [
        "How many paintings are in the museum?",
        "Plot the number of paintings depicting Madonna and Child for each century!",
        "List the titles of all paintings that depict a horse.",
    ];
    let dir = std::env::temp_dir().join(format!("caesura-bench-store-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    let run_process = |label: &str| {
        let counting = Arc::new(CountingLlm::new(SimulatedLlm::new(
            ModelProfile::Gpt4,
            BENCH_SEED,
        )));
        let session = Caesura::with_config(
            generate_artwork(&ArtworkConfig::default()).lake,
            counting.clone(),
            CaesuraConfig {
                persist: Some(PersistConfig::new(dir.clone())),
                ..CaesuraConfig::default()
            },
        );
        let mut perception = PerceptionCalls::default();
        let mut plan_disk_hits = 0usize;
        for query in queries {
            let run = session.run(query);
            assert!(run.succeeded(), "persistent-store bench {label} process");
            let p = run.trace.perception_calls();
            perception.calls += p.calls;
            perception.disk_hits += p.disk_hits;
            perception.disk_writes += p.disk_writes;
            plan_disk_hits += run.trace.plan_cache_calls().disk_hits;
        }
        (counting.usage().calls, perception, plan_disk_hits)
    };

    let (cold_llm_calls, cold_perception, _) = run_process("cold");
    // The cold session drops here, releasing the store's directory lock
    // before the "restarted" process opens it.
    let (warm_llm_calls, warm_perception, warm_plan_disk_hits) = run_process("warm");
    let _ = std::fs::remove_dir_all(&dir);

    assert_eq!(
        warm_llm_calls, 0,
        "a warm-from-disk process must make zero planner/mapping LLM calls"
    );
    assert_eq!(
        warm_perception.calls, 0,
        "a warm-from-disk process must dispatch zero perception-backend calls"
    );
    assert_eq!(
        warm_plan_disk_hits,
        queries.len(),
        "every warm query must replay its plan from the disk tier"
    );

    let mut out = String::from("  \"persistent_store\": {\n");
    writeln!(
        out,
        "    \"restart_replay\": {{\"queries_per_process\": {}, \
         \"cold_process\": {{\"llm_calls\": {cold_llm_calls}, \"perception_calls\": {}, \
         \"disk_writes\": {}}}, \
         \"warm_process\": {{\"llm_calls\": {warm_llm_calls}, \"perception_calls\": {}, \
         \"perception_disk_hits\": {}, \"plan_disk_hits\": {warm_plan_disk_hits}}}}}",
        queries.len(),
        cold_perception.calls,
        cold_perception.disk_writes,
        warm_perception.calls,
        warm_perception.disk_hits,
    )
    .unwrap();
    out.push_str("  }");
    out
}
