//! Regenerates Figure 1 of the paper: the running example query
//! "Plot the number of paintings depicting Madonna and Child for each
//! century!" translated into a multi-modal plan and executed to a plot.

use caesura_llm::ModelProfile;

fn main() {
    let session = caesura_bench::artwork_session(ModelProfile::Gpt4);
    let query = "Plot the number of paintings depicting Madonna and Child for each century!";
    println!("Query: {query}\n");
    let run = session.run(query);
    if let Some(plan) = &run.logical_plan {
        println!("Logical plan:\n{}", plan.render());
    }
    println!("Physical plan:");
    for decision in &run.decisions {
        println!(
            "  Step {}: {} ({})",
            decision.step_number,
            decision.operator.name(),
            decision.arguments.join("; ")
        );
    }
    match run.output {
        Ok(output) => println!("\nOutput:\n{output}"),
        Err(error) => println!("\nExecution failed: {error}"),
    }
}
