//! Regenerates Figure 2 of the paper: the multi-phase prompting pipeline
//! (discovery → planning → mapping interleaved with execution), shown as the
//! full execution trace of the running example query.

use caesura_llm::ModelProfile;

fn main() {
    let session = caesura_bench::artwork_session(ModelProfile::Gpt4);
    let run =
        session.run("Plot the number of paintings depicting Madonna and Child for each century!");
    println!("{}", run.trace.render(false));
}
