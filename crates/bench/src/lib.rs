//! # caesura-bench
//!
//! The benchmark harness of the CAESURA reproduction. Every table and figure
//! of the paper's evaluation has a regeneration target here:
//!
//! | Artifact | Target |
//! |---|---|
//! | Table 1 (plan quality) | `cargo run -p caesura-bench --bin table1` |
//! | Table 2 (error analysis) | `cargo run -p caesura-bench --bin table2` |
//! | Figure 1 (example query → plan → plot) | `cargo run -p caesura-bench --bin figure1` |
//! | Figure 2 (multi-phase pipeline trace) | `cargo run -p caesura-bench --bin figure2_pipeline` |
//! | Figure 3 (planning / mapping prompts) | `cargo run -p caesura-bench --bin figure3_prompts` |
//! | Figure 4 (anecdote plans) | `cargo run -p caesura-bench --bin figure4_anecdotes` |
//! | Ablation: interleaved execution | `cargo run -p caesura-bench --bin ablation_interleaving` |
//! | Ablation: few-shot planning examples | `cargo run -p caesura-bench --bin ablation_fewshot` |
//!
//! Criterion micro-benchmarks live in `benches/` (operator throughput,
//! planning latency, end-to-end latency, plan-quality sweep).

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

use caesura_core::{Caesura, CaesuraConfig};
use caesura_data::{generate_artwork, generate_rotowire, ArtworkConfig, RotowireConfig};
use caesura_eval::{evaluate_model, EvaluationConfig, EvaluationReport};
use caesura_llm::{ModelProfile, SimulatedLlm};
use std::sync::Arc;

/// The standard benchmark seed used by every binary (kept fixed so that the
/// numbers in EXPERIMENTS.md are reproducible).
pub const BENCH_SEED: u64 = 42;

/// Build the default artwork session used by the figure binaries.
pub fn artwork_session(profile: ModelProfile) -> Caesura {
    let data = generate_artwork(&ArtworkConfig::default());
    Caesura::new(data.lake, Arc::new(SimulatedLlm::new(profile, BENCH_SEED)))
}

/// Build the default rotowire session used by the figure binaries.
pub fn rotowire_session(profile: ModelProfile) -> Caesura {
    let data = generate_rotowire(&RotowireConfig::default());
    Caesura::new(data.lake, Arc::new(SimulatedLlm::new(profile, BENCH_SEED)))
}

/// Build an artwork session with a custom CAESURA configuration.
pub fn artwork_session_with(profile: ModelProfile, config: CaesuraConfig) -> Caesura {
    let data = generate_artwork(&ArtworkConfig::default());
    Caesura::with_config(
        data.lake,
        Arc::new(SimulatedLlm::new(profile, BENCH_SEED)),
        config,
    )
}

/// Run the 48-query evaluation for both model profiles with the default
/// configuration (used by the `table1` and `table2` binaries).
pub fn default_reports() -> Vec<EvaluationReport> {
    let config = EvaluationConfig {
        seed: BENCH_SEED,
        ..EvaluationConfig::default()
    };
    vec![
        evaluate_model(ModelProfile::ChatGpt35, &config),
        evaluate_model(ModelProfile::Gpt4, &config),
    ]
}

/// Run the 48-query evaluation for one profile under a custom CAESURA
/// configuration (used by the ablation binaries).
pub fn report_with_config(profile: ModelProfile, caesura: CaesuraConfig) -> EvaluationReport {
    let config = EvaluationConfig {
        seed: BENCH_SEED,
        caesura,
        ..EvaluationConfig::default()
    };
    evaluate_model(profile, &config)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sessions_build_for_both_profiles() {
        let artwork = artwork_session(ModelProfile::Gpt4);
        assert_eq!(artwork.lake().name, "artwork");
        let rotowire = rotowire_session(ModelProfile::ChatGpt35);
        assert_eq!(rotowire.lake().name, "rotowire");
    }

    #[test]
    fn figure_queries_succeed_with_the_bench_seed() {
        // The showcase queries of Figures 1 and 4 must execute correctly under
        // the default benchmark seed (the paper reports them as successes).
        let artwork = artwork_session(ModelProfile::Gpt4);
        assert!(artwork
            .run("Plot the number of paintings depicting Madonna and Child for each century!")
            .succeeded());
        assert!(artwork
            .run("Plot the maximum number of swords depicted on the paintings of each century.")
            .succeeded());
        let rotowire = rotowire_session(ModelProfile::Gpt4);
        assert!(rotowire
            .run("For every team, what is the highest number of points they scored in a game?")
            .succeeded());
    }
}
