//! Minimal, offline stand-in for the `criterion` benchmark harness.
//!
//! It implements the API subset the workspace benches use — `Criterion`,
//! `benchmark_group`, `bench_function`, `bench_with_input`, `BenchmarkId`,
//! the `criterion_group!`/`criterion_main!` macros and `Bencher::iter` — with
//! a simple warmup + timed-samples measurement loop. Results are printed as
//! `bench: <group>/<name> ... median <time> (n=<samples>)` lines and, when the
//! `CRITERION_JSON` environment variable names a file, appended to it as JSON
//! lines so scripts can collect machine-readable numbers.

#![warn(missing_docs)]

use std::fmt;
use std::io::Write as _;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Start a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 30,
            measurement_time: Duration::from_millis(600),
            _criterion: std::marker::PhantomData,
        }
    }

    /// Run a free-standing benchmark (outside any group).
    pub fn bench_function<F>(&mut self, name: &str, f: F)
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark("", name, 30, Duration::from_millis(600), f);
    }
}

/// A group of related benchmarks sharing measurement settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    measurement_time: Duration,
    _criterion: std::marker::PhantomData<&'a mut Criterion>,
}

impl BenchmarkGroup<'_> {
    /// Set the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(5);
        self
    }

    /// Set the measurement-time budget per benchmark.
    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.measurement_time = t;
        self
    }

    /// Run a benchmark in this group.
    pub fn bench_function<F>(&mut self, name: impl fmt::Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(
            &self.name,
            &name.to_string(),
            self.sample_size,
            self.measurement_time,
            f,
        );
        self
    }

    /// Run a parameterized benchmark in this group.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_benchmark(
            &self.name,
            &id.to_string(),
            self.sample_size,
            self.measurement_time,
            |b| f(b, input),
        );
        self
    }

    /// Finish the group (no-op; provided for API compatibility).
    pub fn finish(&mut self) {}
}

/// Identifier of a parameterized benchmark: `function/parameter`.
pub struct BenchmarkId {
    function: String,
    parameter: String,
}

impl BenchmarkId {
    /// Build an id from a function name and a parameter value.
    pub fn new(function: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            function: function.into(),
            parameter: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.function, self.parameter)
    }
}

/// Timing helper handed to each benchmark closure.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
    measurement_time: Duration,
}

impl Bencher {
    /// Measure a closure: a few warmup runs, then timed samples.
    pub fn iter<O, F>(&mut self, mut routine: F)
    where
        F: FnMut() -> O,
    {
        // Warmup + calibration: find how many iterations fit in ~1ms.
        let calibrate_start = Instant::now();
        black_box(routine());
        let once = calibrate_start.elapsed().max(Duration::from_nanos(50));
        let per_sample_budget = self.measurement_time / (self.sample_size as u32);
        let iters = (per_sample_budget.as_nanos() / once.as_nanos()).clamp(1, 10_000) as u64;

        let deadline = Instant::now() + self.measurement_time;
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            self.samples.push(start.elapsed() / (iters as u32));
            if Instant::now() > deadline {
                break;
            }
        }
    }
}

fn run_benchmark<F>(
    group: &str,
    name: &str,
    sample_size: usize,
    measurement_time: Duration,
    mut f: F,
) where
    F: FnMut(&mut Bencher),
{
    let mut bencher = Bencher {
        samples: Vec::new(),
        sample_size,
        measurement_time,
    };
    f(&mut bencher);
    let label = if group.is_empty() {
        name.to_string()
    } else {
        format!("{group}/{name}")
    };
    if bencher.samples.is_empty() {
        println!("bench: {label:<50} (no samples)");
        return;
    }
    bencher.samples.sort();
    let median = bencher.samples[bencher.samples.len() / 2];
    println!(
        "bench: {label:<50} median {:>12} (n={})",
        format_duration(median),
        bencher.samples.len()
    );
    if let Ok(path) = std::env::var("CRITERION_JSON") {
        if let Ok(mut file) = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)
        {
            let _ = writeln!(
                file,
                "{{\"bench\":\"{label}\",\"median_ns\":{}}}",
                median.as_nanos()
            );
        }
    }
}

fn format_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1_000.0)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1_000_000.0)
    } else {
        format!("{:.2} s", ns as f64 / 1_000_000_000.0)
    }
}

/// Collect benchmark functions into a runner (API-compatible with criterion).
#[macro_export]
macro_rules! criterion_group {
    ($group_name:ident, $($target:path),+ $(,)?) => {
        fn $group_name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generate `main` for a set of benchmark groups (API-compatible).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_collects_samples() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group
            .sample_size(5)
            .measurement_time(Duration::from_millis(10));
        group.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
        group.finish();
    }

    #[test]
    fn benchmark_id_renders_function_and_parameter() {
        assert_eq!(BenchmarkId::new("filter", 100).to_string(), "filter/100");
    }
}
