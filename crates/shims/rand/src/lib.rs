//! Minimal, deterministic stand-in for the `rand` crate.
//!
//! The build environment of this repository has no network access, so the
//! small API subset the workspace actually uses (`StdRng::seed_from_u64`,
//! `Rng::gen_range` over integer ranges, `Rng::gen_bool`) is provided here.
//! The generator is a SplitMix64-seeded xoshiro256++, which is a real,
//! well-distributed PRNG — streams are deterministic per seed, which is
//! exactly what the synthetic data generators need for reproducible lakes.

#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Pseudo-random number generators (mirrors `rand::rngs`).
pub mod rngs {
    /// The standard PRNG: xoshiro256++ behind the same name `rand` uses.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        pub(crate) state: [u64; 4],
    }
}

pub use rngs::StdRng;

/// Seedable construction (mirrors `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        // SplitMix64 expansion of the seed into the xoshiro state.
        let mut s = seed;
        let mut next = || {
            s = s.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = s;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        StdRng {
            state: [next(), next(), next(), next()],
        }
    }
}

impl StdRng {
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.state;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

/// A type that can be sampled uniformly from an integer range.
pub trait SampleUniform: Copy {
    /// Sample uniformly from `[low, high)` (`high` exclusive).
    fn sample_range(rng: &mut StdRng, low: Self, high: Self) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range(rng: &mut StdRng, low: Self, high: Self) -> Self {
                debug_assert!(low < high, "gen_range called with an empty range");
                let span = (high as i128 - low as i128) as u128;
                // Multiply-shift reduction of a 64-bit draw onto the span.
                let draw = rng.next_u64() as u128;
                let offset = (draw.wrapping_mul(span)) >> 64;
                (low as i128 + offset as i128) as $t
            }
        }
    )*};
}

impl_sample_uniform!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

/// Range sampling (mirrors the parts of `rand::Rng` the workspace uses).
pub trait Rng {
    /// Sample uniformly from a range (`low..high` or `low..=high`).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: IntoSampleRange<T>;

    /// Return `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool;
}

impl Rng for StdRng {
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: IntoSampleRange<T>,
    {
        let (low, high) = range.into_bounds();
        T::sample_range(self, low, high)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        debug_assert!((0.0..=1.0).contains(&p));
        let draw = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        draw < p
    }
}

/// Conversion of `Range`/`RangeInclusive` into half-open bounds.
pub trait IntoSampleRange<T> {
    /// `(low, high)` with `high` exclusive.
    fn into_bounds(self) -> (T, T);
}

macro_rules! impl_into_sample_range {
    ($($t:ty),*) => {$(
        impl IntoSampleRange<$t> for Range<$t> {
            fn into_bounds(self) -> ($t, $t) {
                (self.start, self.end)
            }
        }
        impl IntoSampleRange<$t> for RangeInclusive<$t> {
            fn into_bounds(self) -> ($t, $t) {
                (*self.start(), *self.end() + 1)
            }
        }
    )*};
}

impl_into_sample_range!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0..1000u64), b.gen_range(0..1000u64));
        }
    }

    #[test]
    fn ranges_are_respected() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v: i32 = rng.gen_range(1300..=1950);
            assert!((1300..=1950).contains(&v));
            let u: usize = rng.gen_range(0..3);
            assert!(u < 3);
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(1);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "got {hits}");
    }
}
