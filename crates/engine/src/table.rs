//! In-memory row-oriented tables.
//!
//! Tables are the unit of data that flows through CAESURA's physical plans:
//! every operator consumes one or more tables and produces a new table. They
//! also know how to describe themselves to the language model (`prompt
//! summary`, example values, observation strings).

use crate::error::{EngineError, EngineResult};
use crate::schema::{Field, Schema};
use crate::value::{DataType, Value};
use std::fmt;

/// A row is simply an ordered vector of values matching the table schema.
pub type Row = Vec<Value>;

/// An immutable, in-memory, row-oriented table.
#[derive(Debug, Clone, PartialEq)]
pub struct Table {
    name: String,
    schema: Schema,
    rows: Vec<Row>,
    description: Option<String>,
}

impl Table {
    /// Create a table, validating that every row matches the schema arity.
    pub fn new(name: impl Into<String>, schema: Schema, rows: Vec<Row>) -> EngineResult<Self> {
        for (i, row) in rows.iter().enumerate() {
            if row.len() != schema.len() {
                return Err(EngineError::ArityMismatch {
                    expected: schema.len(),
                    found: row.len(),
                    row: i,
                });
            }
        }
        Ok(Table {
            name: name.into(),
            schema,
            rows,
            description: None,
        })
    }

    /// Create an empty table with the given schema.
    pub fn empty(name: impl Into<String>, schema: Schema) -> Self {
        Table {
            name: name.into(),
            schema,
            rows: Vec::new(),
            description: None,
        }
    }

    /// Attach a human-readable description (rendered into prompts).
    pub fn with_description(mut self, description: impl Into<String>) -> Self {
        self.description = Some(description.into());
        self
    }

    /// Table name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Rename the table (used when operators produce derived tables).
    pub fn renamed(mut self, name: impl Into<String>) -> Self {
        self.name = name.into();
        self
    }

    /// Table schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Optional description.
    pub fn description(&self) -> Option<&str> {
        self.description.as_deref()
    }

    /// All rows.
    pub fn rows(&self) -> &[Row] {
        &self.rows
    }

    /// Number of rows.
    pub fn num_rows(&self) -> usize {
        self.rows.len()
    }

    /// Number of columns.
    pub fn num_columns(&self) -> usize {
        self.schema.len()
    }

    /// Whether the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Get a cell by row and column index.
    pub fn cell(&self, row: usize, col: usize) -> Option<&Value> {
        self.rows.get(row).and_then(|r| r.get(col))
    }

    /// Get the value of a named column in a given row.
    pub fn value(&self, row: usize, column: &str) -> EngineResult<&Value> {
        let idx = self.schema.resolve(column)?;
        self.rows
            .get(row)
            .map(|r| &r[idx])
            .ok_or_else(|| EngineError::execution(format!("row index {row} out of bounds")))
    }

    /// Extract an entire column by name.
    pub fn column(&self, column: &str) -> EngineResult<Vec<Value>> {
        let idx = self.schema.resolve(column)?;
        Ok(self.rows.iter().map(|r| r[idx].clone()).collect())
    }

    /// Iterate over rows.
    pub fn iter(&self) -> impl Iterator<Item = &Row> {
        self.rows.iter()
    }

    /// Consume the table and return its rows.
    pub fn into_rows(self) -> Vec<Row> {
        self.rows
    }

    /// Append a new column computed per-row by `f`, returning a new table.
    /// This is how multi-modal operators (VisualQA, TextQA, Python) add their
    /// extracted columns.
    pub fn with_new_column<F>(
        &self,
        name: impl Into<String>,
        data_type: DataType,
        mut f: F,
    ) -> EngineResult<Table>
    where
        F: FnMut(usize, &Row) -> EngineResult<Value>,
    {
        let mut schema = self.schema.clone();
        schema.push(Field::new(name, data_type))?;
        let mut rows = Vec::with_capacity(self.rows.len());
        for (i, row) in self.rows.iter().enumerate() {
            let mut new_row = row.clone();
            new_row.push(f(i, row)?);
            rows.push(new_row);
        }
        Ok(Table {
            name: self.name.clone(),
            schema,
            rows,
            description: self.description.clone(),
        })
    }

    /// Keep only the rows for which the predicate returns true.
    pub fn filter_rows<F>(&self, mut predicate: F) -> EngineResult<Table>
    where
        F: FnMut(&Row) -> EngineResult<bool>,
    {
        let mut rows = Vec::new();
        for row in &self.rows {
            if predicate(row)? {
                rows.push(row.clone());
            }
        }
        Ok(Table {
            name: self.name.clone(),
            schema: self.schema.clone(),
            rows,
            description: self.description.clone(),
        })
    }

    /// Up to `n` example values of a column, unique, in first-seen order.
    /// This feeds the "These are some relevant values for the column" part of
    /// the discovery/planning prompts and the observations after execution.
    pub fn example_values(&self, column: &str, n: usize) -> EngineResult<Vec<String>> {
        let idx = self.schema.resolve(column)?;
        let mut seen = Vec::new();
        for row in &self.rows {
            let rendered = row[idx].preview(40);
            if !seen.contains(&rendered) {
                seen.push(rendered);
                if seen.len() >= n {
                    break;
                }
            }
        }
        Ok(seen)
    }

    /// The `table(num_rows=..., columns=[...])` notation used in prompts.
    pub fn prompt_summary(&self) -> String {
        let mut summary = format!(
            "{} = table(num_rows={}, columns={}",
            self.name,
            self.num_rows(),
            self.schema.prompt_notation()
        );
        if let Some(desc) = &self.description {
            summary.push_str(&format!(", description='{desc}'"));
        }
        summary.push(')');
        summary
    }

    /// Render the first `max_rows` rows as an aligned ASCII table.
    pub fn pretty(&self, max_rows: usize) -> String {
        let names = self.schema.names();
        let mut widths: Vec<usize> = names.iter().map(|n| n.chars().count()).collect();
        let shown = self.rows.iter().take(max_rows).collect::<Vec<_>>();
        let rendered: Vec<Vec<String>> = shown
            .iter()
            .map(|row| row.iter().map(|v| v.preview(30)).collect())
            .collect();
        for row in &rendered {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.chars().count());
            }
        }
        let mut out = String::new();
        let header: Vec<String> = names
            .iter()
            .enumerate()
            .map(|(i, n)| format!("{:w$}", n, w = widths[i]))
            .collect();
        out.push_str(&format!("| {} |\n", header.join(" | ")));
        let sep: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
        out.push_str(&format!("|-{}-|\n", sep.join("-|-")));
        for row in &rendered {
            let cells: Vec<String> = row
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:w$}", c, w = widths[i]))
                .collect();
            out.push_str(&format!("| {} |\n", cells.join(" | ")));
        }
        if self.rows.len() > max_rows {
            out.push_str(&format!("... ({} rows total)\n", self.rows.len()));
        }
        out
    }

    /// Export the table as CSV (used by the report binaries).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        out.push_str(&self.schema.names().join(","));
        out.push('\n');
        for row in &self.rows {
            let cells: Vec<String> = row
                .iter()
                .map(|v| {
                    let s = v.to_string();
                    if s.contains(',') || s.contains('"') || s.contains('\n') {
                        format!("\"{}\"", s.replace('"', "\"\""))
                    } else {
                        s
                    }
                })
                .collect();
            out.push_str(&cells.join(","));
            out.push('\n');
        }
        out
    }

    /// A short observation string describing this table to the LLM after an
    /// operator has executed (Figure 2: "New column madonna_depicted has been
    /// added. Example values: ...").
    pub fn observation(&self, new_columns: &[String]) -> String {
        let mut parts = vec![format!(
            "Table '{}' now has {} rows and columns {}.",
            self.name,
            self.num_rows(),
            self.schema.prompt_notation()
        )];
        for col in new_columns {
            if let Ok(examples) = self.example_values(col, 3) {
                parts.push(format!(
                    "New column '{}' has been added. Example values: [{}].",
                    col,
                    examples.join(", ")
                ));
            }
        }
        parts.join(" ")
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.pretty(20))
    }
}

/// Incremental builder for tables.
#[derive(Debug, Clone)]
pub struct TableBuilder {
    name: String,
    schema: Schema,
    rows: Vec<Row>,
    description: Option<String>,
}

impl TableBuilder {
    /// Start building a table with the given name and schema.
    pub fn new(name: impl Into<String>, schema: Schema) -> Self {
        TableBuilder {
            name: name.into(),
            schema,
            rows: Vec::new(),
            description: None,
        }
    }

    /// Set the table description.
    pub fn description(mut self, description: impl Into<String>) -> Self {
        self.description = Some(description.into());
        self
    }

    /// Append a row, validating its arity.
    pub fn push_row(&mut self, row: Row) -> EngineResult<&mut Self> {
        if row.len() != self.schema.len() {
            return Err(EngineError::ArityMismatch {
                expected: self.schema.len(),
                found: row.len(),
                row: self.rows.len(),
            });
        }
        self.rows.push(row);
        Ok(self)
    }

    /// Append a row built from values convertible into [`Value`].
    pub fn push_values<I, V>(&mut self, values: I) -> EngineResult<&mut Self>
    where
        I: IntoIterator<Item = V>,
        V: Into<Value>,
    {
        let row: Row = values.into_iter().map(Into::into).collect();
        self.push_row(row)
    }

    /// Number of rows added so far.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether no rows have been added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Finish building.
    pub fn build(self) -> Table {
        Table {
            name: self.name,
            schema: self.schema,
            rows: self.rows,
            description: self.description,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paintings() -> Table {
        let schema = Schema::from_pairs(&[
            ("title", DataType::Str),
            ("inception", DataType::Str),
            ("img_path", DataType::Str),
        ]);
        let mut builder = TableBuilder::new("paintings_metadata", schema);
        builder
            .push_values(["Madonna", "1889-01-05", "img/1.png"])
            .unwrap();
        builder
            .push_values(["Irises", "1480-05-12", "img/2.png"])
            .unwrap();
        builder
            .push_values(["Scream", "1893-03-01", "img/3.png"])
            .unwrap();
        builder.build()
    }

    #[test]
    fn new_rejects_arity_mismatch() {
        let schema = Schema::from_pairs(&[("a", DataType::Int)]);
        let result = Table::new("t", schema, vec![vec![Value::Int(1), Value::Int(2)]]);
        assert!(matches!(result, Err(EngineError::ArityMismatch { .. })));
    }

    #[test]
    fn builder_produces_expected_shape() {
        let table = paintings();
        assert_eq!(table.num_rows(), 3);
        assert_eq!(table.num_columns(), 3);
        assert_eq!(
            table.value(0, "title").unwrap(),
            &Value::str("Madonna")
        );
    }

    #[test]
    fn with_new_column_appends_values() {
        let table = paintings();
        let extended = table
            .with_new_column("century", DataType::Int, |_, row| {
                let inception = row[1].as_str().unwrap();
                let year: i32 = inception[..4].parse().unwrap();
                Ok(Value::Int(((year - 1) / 100 + 1) as i64))
            })
            .unwrap();
        assert_eq!(extended.num_columns(), 4);
        assert_eq!(extended.value(0, "century").unwrap(), &Value::Int(19));
        assert_eq!(extended.value(1, "century").unwrap(), &Value::Int(15));
    }

    #[test]
    fn filter_rows_keeps_matching_rows() {
        let table = paintings();
        let filtered = table
            .filter_rows(|row| Ok(row[0].as_str() == Some("Madonna")))
            .unwrap();
        assert_eq!(filtered.num_rows(), 1);
        assert_eq!(filtered.schema(), table.schema());
    }

    #[test]
    fn example_values_are_unique_and_bounded() {
        let schema = Schema::from_pairs(&[("answer", DataType::Str)]);
        let mut builder = TableBuilder::new("t", schema);
        for answer in ["yes", "no", "no", "yes", "maybe"] {
            builder.push_values([answer]).unwrap();
        }
        let table = builder.build();
        let examples = table.example_values("answer", 2).unwrap();
        assert_eq!(examples, vec!["yes", "no"]);
    }

    #[test]
    fn prompt_summary_follows_figure3_notation() {
        let table = paintings().with_description("Metadata about paintings");
        let summary = table.prompt_summary();
        assert!(summary.starts_with("paintings_metadata = table(num_rows=3"));
        assert!(summary.contains("'title': 'str'"));
        assert!(summary.contains("description='Metadata about paintings'"));
    }

    #[test]
    fn observation_mentions_new_columns_and_examples() {
        let table = paintings()
            .with_new_column("madonna_depicted", DataType::Str, |i, _| {
                Ok(Value::str(if i == 0 { "yes" } else { "no" }))
            })
            .unwrap();
        let obs = table.observation(&["madonna_depicted".to_string()]);
        assert!(obs.contains("madonna_depicted"));
        assert!(obs.contains("yes"));
    }

    #[test]
    fn csv_export_quotes_fields_with_commas() {
        let schema = Schema::from_pairs(&[("a", DataType::Str)]);
        let mut builder = TableBuilder::new("t", schema);
        builder.push_values(["hello, world"]).unwrap();
        let table = builder.build();
        assert!(table.to_csv().contains("\"hello, world\""));
    }

    #[test]
    fn pretty_truncates_after_max_rows() {
        let table = paintings();
        let text = table.pretty(2);
        assert!(text.contains("(3 rows total)"));
    }

    #[test]
    fn column_extraction_and_cell_access() {
        let table = paintings();
        let titles = table.column("title").unwrap();
        assert_eq!(titles.len(), 3);
        assert_eq!(table.cell(2, 0), Some(&Value::str("Scream")));
        assert_eq!(table.cell(9, 0), None);
    }
}
