//! In-memory columnar tables with `Arc`-shared columns.
//!
//! Tables are the unit of data that flows through CAESURA's physical plans:
//! every operator consumes one or more tables and produces a new table. Since
//! the interleaved planner (§3.1 of the paper) re-executes operators after
//! every mapping step, tables are stored column-oriented — one typed
//! [`Column`] per schema field, each behind an [`Arc`] — so projections,
//! catalog lookups, and intermediate results share column data zero-copy
//! instead of deep-cloning rows.
//!
//! Row-oriented consumers (prompt summaries, observations, the perception
//! operators, tests) use the [`RowRef`] view returned by [`Table::rows`],
//! which materializes cells lazily from the underlying columns.
//!
//! Tables also know how to describe themselves to the language model
//! (`prompt_summary`, example values, observation strings).

use crate::column::{Column, ColumnBuilder};
use crate::error::{EngineError, EngineResult};
use crate::schema::{Field, Schema};
use crate::value::{DataType, Value};
use std::fmt;
use std::sync::Arc;

/// A materialized row: an ordered vector of values matching the table schema.
pub type Row = Vec<Value>;

/// An immutable, in-memory, column-oriented table.
///
/// Cloning a `Table` is cheap: it bumps one `Arc` per column and copies the
/// name/schema metadata, never the cell data.
#[derive(Debug, Clone)]
pub struct Table {
    name: String,
    schema: Schema,
    columns: Vec<Arc<Column>>,
    num_rows: usize,
    description: Option<String>,
}

impl PartialEq for Table {
    /// Logical equality: same name, schema, and cell values (`NULL` equals
    /// `NULL` here, matching the previous row-derived implementation).
    fn eq(&self, other: &Self) -> bool {
        self.name == other.name
            && self.schema == other.schema
            && self.num_rows == other.num_rows
            && self
                .columns
                .iter()
                .zip(&other.columns)
                .all(|(a, b)| Arc::ptr_eq(a, b) || columns_logically_equal(a, b))
    }
}

fn columns_logically_equal(a: &Column, b: &Column) -> bool {
    a.len() == b.len() && (0..a.len()).all(|i| a.get(i) == b.get(i))
}

/// A lightweight view of one table row, materializing cells on demand.
#[derive(Debug, Clone, Copy)]
pub struct RowRef<'a> {
    table: &'a Table,
    index: usize,
}

impl<'a> RowRef<'a> {
    /// The row index inside the table.
    pub fn index(&self) -> usize {
        self.index
    }

    /// Number of columns.
    pub fn len(&self) -> usize {
        self.table.num_columns()
    }

    /// Whether the row has no columns.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Materialize the cell in column `col` (string payloads are Arc-shared).
    #[inline]
    pub fn get(&self, col: usize) -> Value {
        self.table.columns[col].get(self.index)
    }

    /// Whether the cell in column `col` is NULL.
    pub fn is_null(&self, col: usize) -> bool {
        !self.table.columns[col].is_valid(self.index)
    }

    /// Materialize the whole row.
    pub fn to_vec(&self) -> Row {
        (0..self.len()).map(|c| self.get(c)).collect()
    }

    /// Iterate over the row's cells.
    pub fn values(&self) -> impl Iterator<Item = Value> + 'a {
        let table = self.table;
        let index = self.index;
        (0..table.num_columns()).map(move |c| table.columns[c].get(index))
    }
}

/// Iterator over the rows of a table, yielding [`RowRef`] views.
#[derive(Debug, Clone)]
pub struct Rows<'a> {
    table: &'a Table,
    next: usize,
}

impl<'a> Iterator for Rows<'a> {
    type Item = RowRef<'a>;

    fn next(&mut self) -> Option<RowRef<'a>> {
        if self.next < self.table.num_rows {
            let row = RowRef {
                table: self.table,
                index: self.next,
            };
            self.next += 1;
            Some(row)
        } else {
            None
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let remaining = self.table.num_rows - self.next;
        (remaining, Some(remaining))
    }
}

impl ExactSizeIterator for Rows<'_> {}

impl Table {
    /// Create a table from rows, validating that every row matches the schema
    /// arity. The rows are transposed into typed columns.
    pub fn new(name: impl Into<String>, schema: Schema, rows: Vec<Row>) -> EngineResult<Self> {
        // Track the row count independently of the builders so a degenerate
        // zero-column schema still reports its rows.
        let num_rows = rows.len();
        let mut builders: Vec<ColumnBuilder> = schema
            .fields()
            .iter()
            .map(|f| ColumnBuilder::with_capacity(f.data_type, num_rows))
            .collect();
        for (i, row) in rows.into_iter().enumerate() {
            if row.len() != schema.len() {
                return Err(EngineError::ArityMismatch {
                    expected: schema.len(),
                    found: row.len(),
                    row: i,
                });
            }
            for (builder, value) in builders.iter_mut().zip(row) {
                builder.push(value);
            }
        }
        Ok(Table {
            name: name.into(),
            schema,
            // Ingest is the one place low-cardinality string columns get
            // dictionary-encoded (`CAESURA_DICT_ENCODE`); operators preserve
            // whatever representation they are handed.
            columns: builders
                .into_iter()
                .map(|b| crate::dict::maybe_encode(Arc::new(b.finish())))
                .collect(),
            num_rows,
            description: None,
        })
    }

    /// Create a table directly from columns (the zero-copy constructor used by
    /// the vectorized operators). Columns must all have the same length and
    /// match the schema arity.
    pub fn from_columns(
        name: impl Into<String>,
        schema: Schema,
        columns: Vec<Arc<Column>>,
    ) -> EngineResult<Self> {
        if columns.len() != schema.len() {
            return Err(EngineError::schema(format!(
                "table has {} columns but the schema declares {}",
                columns.len(),
                schema.len()
            )));
        }
        let num_rows = columns.first().map(|c| c.len()).unwrap_or(0);
        if let Some(bad) = columns.iter().find(|c| c.len() != num_rows) {
            return Err(EngineError::schema(format!(
                "column length mismatch: expected {} rows, found a column with {}",
                num_rows,
                bad.len()
            )));
        }
        Ok(Table {
            name: name.into(),
            schema,
            columns,
            num_rows,
            description: None,
        })
    }

    /// Create an empty table with the given schema.
    pub fn empty(name: impl Into<String>, schema: Schema) -> Self {
        let columns = schema
            .fields()
            .iter()
            .map(|f| Arc::new(Column::empty(f.data_type)))
            .collect();
        Table {
            name: name.into(),
            schema,
            columns,
            num_rows: 0,
            description: None,
        }
    }

    /// Attach a human-readable description (rendered into prompts).
    pub fn with_description(mut self, description: impl Into<String>) -> Self {
        self.description = Some(description.into());
        self
    }

    /// Table name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Rename the table (used when operators produce derived tables). Cheap:
    /// column data stays shared.
    pub fn renamed(mut self, name: impl Into<String>) -> Self {
        self.name = name.into();
        self
    }

    /// Table schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Optional description.
    pub fn description(&self) -> Option<&str> {
        self.description.as_deref()
    }

    /// The `Arc`-shared columns in schema order.
    pub fn columns(&self) -> &[Arc<Column>] {
        &self.columns
    }

    /// The column at a schema position.
    pub fn column_at(&self, index: usize) -> Option<&Arc<Column>> {
        self.columns.get(index)
    }

    /// Resolve a column by name and return its `Arc`-shared storage
    /// (zero-copy; bump the `Arc` to keep it).
    pub fn column_data(&self, column: &str) -> EngineResult<&Arc<Column>> {
        let idx = self.schema.resolve(column)?;
        Ok(&self.columns[idx])
    }

    /// Iterate over rows as lightweight [`RowRef`] views.
    pub fn rows(&self) -> Rows<'_> {
        Rows {
            table: self,
            next: 0,
        }
    }

    /// Iterate over rows (alias of [`Table::rows`]).
    pub fn iter(&self) -> Rows<'_> {
        self.rows()
    }

    /// Number of rows.
    pub fn num_rows(&self) -> usize {
        self.num_rows
    }

    /// Number of columns.
    pub fn num_columns(&self) -> usize {
        self.schema.len()
    }

    /// Whether the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.num_rows == 0
    }

    /// Materialize a cell by row and column index.
    pub fn cell(&self, row: usize, col: usize) -> Option<Value> {
        if row < self.num_rows {
            self.columns.get(col).map(|c| c.get(row))
        } else {
            None
        }
    }

    /// Materialize the value of a named column in a given row.
    pub fn value(&self, row: usize, column: &str) -> EngineResult<Value> {
        let idx = self.schema.resolve(column)?;
        if row >= self.num_rows {
            return Err(EngineError::execution(format!(
                "row index {row} out of bounds"
            )));
        }
        Ok(self.columns[idx].get(row))
    }

    /// Materialize an entire column by name.
    pub fn column(&self, column: &str) -> EngineResult<Vec<Value>> {
        Ok(self.column_data(column)?.to_values())
    }

    /// Materialize all rows.
    pub fn to_rows(&self) -> Vec<Row> {
        self.rows().map(|r| r.to_vec()).collect()
    }

    /// Consume the table and return its rows, materialized.
    pub fn into_rows(self) -> Vec<Row> {
        self.to_rows()
    }

    /// Gather the rows at `indices` into a new table (the "take" kernel);
    /// all metadata is preserved. Large gathers run morsel-parallel per
    /// column (see [`parallel`](crate::parallel)); the output is
    /// byte-identical to the sequential gather.
    pub fn take(&self, indices: &[usize]) -> Table {
        let config = crate::parallel::exec_config();
        Table {
            name: self.name.clone(),
            schema: self.schema.clone(),
            columns: self
                .columns
                .iter()
                .map(|c| Arc::new(crate::parallel::take_column(c, indices, &config)))
                .collect(),
            num_rows: indices.len(),
            description: self.description.clone(),
        }
    }

    /// A table sharing this table's columns zero-copy (same data, same
    /// schema), used by operators whose selection keeps every row.
    pub fn shared_copy(&self) -> Table {
        self.clone()
    }

    /// Replace the column set (used by the vectorized operators). The new
    /// columns must match `schema`.
    pub fn with_columns(&self, schema: Schema, columns: Vec<Arc<Column>>) -> EngineResult<Table> {
        let mut table = Table::from_columns(self.name.clone(), schema, columns)?;
        table.description = self.description.clone();
        Ok(table)
    }

    /// Append an already-evaluated column, returning a new table whose
    /// existing columns are `Arc`-shared with the input (the vectorized
    /// sibling of [`Table::with_new_column`]).
    pub fn append_column(
        &self,
        name: impl Into<String>,
        data_type: DataType,
        column: Arc<Column>,
    ) -> EngineResult<Table> {
        if column.len() != self.num_rows {
            return Err(EngineError::schema(format!(
                "appended column has {} rows but the table has {}",
                column.len(),
                self.num_rows
            )));
        }
        let mut schema = self.schema.clone();
        schema.push(Field::new(name, data_type))?;
        let mut columns = self.columns.clone();
        columns.push(column);
        Ok(Table {
            name: self.name.clone(),
            schema,
            columns,
            num_rows: self.num_rows,
            description: self.description.clone(),
        })
    }

    /// Append a new column computed per-row by `f`, returning a new table.
    /// The existing columns are `Arc`-shared with the input — only the new
    /// column is materialized. This is how multi-modal operators (VisualQA,
    /// TextQA, Python) add their extracted columns.
    pub fn with_new_column<F>(
        &self,
        name: impl Into<String>,
        data_type: DataType,
        mut f: F,
    ) -> EngineResult<Table>
    where
        F: FnMut(usize, RowRef<'_>) -> EngineResult<Value>,
    {
        let mut schema = self.schema.clone();
        schema.push(Field::new(name, data_type))?;
        let mut builder = ColumnBuilder::with_capacity(data_type, self.num_rows);
        for row in self.rows() {
            builder.push(f(row.index(), row)?);
        }
        let mut columns = self.columns.clone();
        columns.push(Arc::new(builder.finish()));
        Ok(Table {
            name: self.name.clone(),
            schema,
            columns,
            num_rows: self.num_rows,
            description: self.description.clone(),
        })
    }

    /// Keep only the rows for which the predicate returns true.
    pub fn filter_rows<F>(&self, mut predicate: F) -> EngineResult<Table>
    where
        F: FnMut(RowRef<'_>) -> EngineResult<bool>,
    {
        let mut indices = Vec::new();
        for row in self.rows() {
            if predicate(row)? {
                indices.push(row.index());
            }
        }
        if indices.len() == self.num_rows {
            return Ok(self.shared_copy());
        }
        Ok(self.take(&indices))
    }

    /// Up to `n` example values of a column, unique, in first-seen order.
    /// This feeds the "These are some relevant values for the column" part of
    /// the discovery/planning prompts and the observations after execution.
    pub fn example_values(&self, column: &str, n: usize) -> EngineResult<Vec<String>> {
        let col = self.column_data(column)?;
        let mut seen = Vec::new();
        for i in 0..self.num_rows {
            let rendered = col.get(i).preview(40);
            if !seen.contains(&rendered) {
                seen.push(rendered);
                if seen.len() >= n {
                    break;
                }
            }
        }
        Ok(seen)
    }

    /// The `table(num_rows=..., columns=[...])` notation used in prompts.
    pub fn prompt_summary(&self) -> String {
        let mut summary = format!(
            "{} = table(num_rows={}, columns={}",
            self.name,
            self.num_rows(),
            self.schema.prompt_notation()
        );
        if let Some(desc) = &self.description {
            summary.push_str(&format!(", description='{desc}'"));
        }
        summary.push(')');
        summary
    }

    /// Render the first `max_rows` rows as an aligned ASCII table.
    pub fn pretty(&self, max_rows: usize) -> String {
        let names = self.schema.names();
        let mut widths: Vec<usize> = names.iter().map(|n| n.chars().count()).collect();
        let shown = self.num_rows.min(max_rows);
        let rendered: Vec<Vec<String>> = (0..shown)
            .map(|i| self.columns.iter().map(|c| c.get(i).preview(30)).collect())
            .collect();
        for row in &rendered {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.chars().count());
            }
        }
        let mut out = String::new();
        let header: Vec<String> = names
            .iter()
            .enumerate()
            .map(|(i, n)| format!("{:w$}", n, w = widths[i]))
            .collect();
        out.push_str(&format!("| {} |\n", header.join(" | ")));
        let sep: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
        out.push_str(&format!("|-{}-|\n", sep.join("-|-")));
        for row in &rendered {
            let cells: Vec<String> = row
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:w$}", c, w = widths[i]))
                .collect();
            out.push_str(&format!("| {} |\n", cells.join(" | ")));
        }
        if self.num_rows > max_rows {
            out.push_str(&format!("... ({} rows total)\n", self.num_rows));
        }
        out
    }

    /// Export the table as CSV (used by the report binaries).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        out.push_str(&self.schema.names().join(","));
        out.push('\n');
        for row in self.rows() {
            let cells: Vec<String> = row
                .values()
                .map(|v| {
                    let s = v.to_string();
                    if s.contains(',') || s.contains('"') || s.contains('\n') {
                        format!("\"{}\"", s.replace('"', "\"\""))
                    } else {
                        s
                    }
                })
                .collect();
            out.push_str(&cells.join(","));
            out.push('\n');
        }
        out
    }

    /// A short observation string describing this table to the LLM after an
    /// operator has executed (Figure 2: "New column madonna_depicted has been
    /// added. Example values: ...").
    pub fn observation(&self, new_columns: &[String]) -> String {
        let mut parts = vec![format!(
            "Table '{}' now has {} rows and columns {}.",
            self.name,
            self.num_rows(),
            self.schema.prompt_notation()
        )];
        for col in new_columns {
            if let Ok(examples) = self.example_values(col, 3) {
                parts.push(format!(
                    "New column '{}' has been added. Example values: [{}].",
                    col,
                    examples.join(", ")
                ));
            }
        }
        parts.join(" ")
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.pretty(20))
    }
}

/// Incremental builder for tables: rows are distributed into per-column
/// [`ColumnBuilder`]s as they are pushed, so `build()` never transposes.
#[derive(Debug, Clone)]
pub struct TableBuilder {
    name: String,
    schema: Schema,
    builders: Vec<ColumnBuilder>,
    num_rows: usize,
    description: Option<String>,
}

impl TableBuilder {
    /// Start building a table with the given name and schema.
    pub fn new(name: impl Into<String>, schema: Schema) -> Self {
        let builders = schema
            .fields()
            .iter()
            .map(|f| ColumnBuilder::new(f.data_type))
            .collect();
        TableBuilder {
            name: name.into(),
            schema,
            builders,
            num_rows: 0,
            description: None,
        }
    }

    /// Set the table description.
    pub fn description(mut self, description: impl Into<String>) -> Self {
        self.description = Some(description.into());
        self
    }

    /// Append a row, validating its arity.
    pub fn push_row(&mut self, row: Row) -> EngineResult<&mut Self> {
        if row.len() != self.schema.len() {
            return Err(EngineError::ArityMismatch {
                expected: self.schema.len(),
                found: row.len(),
                row: self.num_rows,
            });
        }
        for (builder, value) in self.builders.iter_mut().zip(row) {
            builder.push(value);
        }
        self.num_rows += 1;
        Ok(self)
    }

    /// Append a row built from values convertible into [`Value`].
    pub fn push_values<I, V>(&mut self, values: I) -> EngineResult<&mut Self>
    where
        I: IntoIterator<Item = V>,
        V: Into<Value>,
    {
        let row: Row = values.into_iter().map(Into::into).collect();
        self.push_row(row)
    }

    /// Number of rows added so far.
    pub fn len(&self) -> usize {
        self.num_rows
    }

    /// Whether no rows have been added.
    pub fn is_empty(&self) -> bool {
        self.num_rows == 0
    }

    /// Finish building. Low-cardinality string columns are
    /// dictionary-encoded here (table ingest), behind `CAESURA_DICT_ENCODE`.
    pub fn build(self) -> Table {
        Table {
            name: self.name,
            schema: self.schema,
            columns: self
                .builders
                .into_iter()
                .map(|b| crate::dict::maybe_encode(Arc::new(b.finish())))
                .collect(),
            num_rows: self.num_rows,
            description: self.description,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paintings() -> Table {
        let schema = Schema::from_pairs(&[
            ("title", DataType::Str),
            ("inception", DataType::Str),
            ("img_path", DataType::Str),
        ]);
        let mut builder = TableBuilder::new("paintings_metadata", schema);
        builder
            .push_values(["Madonna", "1889-01-05", "img/1.png"])
            .unwrap();
        builder
            .push_values(["Irises", "1480-05-12", "img/2.png"])
            .unwrap();
        builder
            .push_values(["Scream", "1893-03-01", "img/3.png"])
            .unwrap();
        builder.build()
    }

    #[test]
    fn new_rejects_arity_mismatch() {
        let schema = Schema::from_pairs(&[("a", DataType::Int)]);
        let result = Table::new("t", schema, vec![vec![Value::Int(1), Value::Int(2)]]);
        assert!(matches!(result, Err(EngineError::ArityMismatch { .. })));
    }

    #[test]
    fn builder_produces_expected_shape() {
        let table = paintings();
        assert_eq!(table.num_rows(), 3);
        assert_eq!(table.num_columns(), 3);
        assert_eq!(table.value(0, "title").unwrap(), Value::str("Madonna"));
    }

    #[test]
    fn with_new_column_appends_values_and_shares_existing_columns() {
        let table = paintings();
        let extended = table
            .with_new_column("century", DataType::Int, |_, row| {
                let inception = row.get(1);
                let year: i32 = inception.as_str().unwrap()[..4].parse().unwrap();
                Ok(Value::Int(((year - 1) / 100 + 1) as i64))
            })
            .unwrap();
        assert_eq!(extended.num_columns(), 4);
        assert_eq!(extended.value(0, "century").unwrap(), Value::Int(19));
        assert_eq!(extended.value(1, "century").unwrap(), Value::Int(15));
        // The untouched columns are shared, not copied.
        for i in 0..3 {
            assert!(Arc::ptr_eq(
                table.column_at(i).unwrap(),
                extended.column_at(i).unwrap()
            ));
        }
    }

    #[test]
    fn filter_rows_keeps_matching_rows() {
        let table = paintings();
        let filtered = table
            .filter_rows(|row| Ok(row.get(0).as_str() == Some("Madonna")))
            .unwrap();
        assert_eq!(filtered.num_rows(), 1);
        assert_eq!(filtered.schema(), table.schema());
    }

    #[test]
    fn filter_rows_keeping_everything_shares_columns() {
        let table = paintings();
        let all = table.filter_rows(|_| Ok(true)).unwrap();
        assert_eq!(all.num_rows(), 3);
        assert!(Arc::ptr_eq(
            table.column_at(0).unwrap(),
            all.column_at(0).unwrap()
        ));
    }

    #[test]
    fn example_values_are_unique_and_bounded() {
        let schema = Schema::from_pairs(&[("answer", DataType::Str)]);
        let mut builder = TableBuilder::new("t", schema);
        for answer in ["yes", "no", "no", "yes", "maybe"] {
            builder.push_values([answer]).unwrap();
        }
        let table = builder.build();
        let examples = table.example_values("answer", 2).unwrap();
        assert_eq!(examples, vec!["yes", "no"]);
    }

    #[test]
    fn prompt_summary_follows_figure3_notation() {
        let table = paintings().with_description("Metadata about paintings");
        let summary = table.prompt_summary();
        assert!(summary.starts_with("paintings_metadata = table(num_rows=3"));
        assert!(summary.contains("'title': 'str'"));
        assert!(summary.contains("description='Metadata about paintings'"));
    }

    #[test]
    fn observation_mentions_new_columns_and_examples() {
        let table = paintings()
            .with_new_column("madonna_depicted", DataType::Str, |i, _| {
                Ok(Value::str(if i == 0 { "yes" } else { "no" }))
            })
            .unwrap();
        let obs = table.observation(&["madonna_depicted".to_string()]);
        assert!(obs.contains("madonna_depicted"));
        assert!(obs.contains("yes"));
    }

    #[test]
    fn csv_export_quotes_fields_with_commas() {
        let schema = Schema::from_pairs(&[("a", DataType::Str)]);
        let mut builder = TableBuilder::new("t", schema);
        builder.push_values(["hello, world"]).unwrap();
        let table = builder.build();
        assert!(table.to_csv().contains("\"hello, world\""));
    }

    #[test]
    fn pretty_truncates_after_max_rows() {
        let table = paintings();
        let text = table.pretty(2);
        assert!(text.contains("(3 rows total)"));
    }

    #[test]
    fn column_extraction_and_cell_access() {
        let table = paintings();
        let titles = table.column("title").unwrap();
        assert_eq!(titles.len(), 3);
        assert_eq!(table.cell(2, 0), Some(Value::str("Scream")));
        assert_eq!(table.cell(9, 0), None);
    }

    #[test]
    fn rows_round_trip_through_columns() {
        let table = paintings();
        let rows = table.to_rows();
        let rebuilt = Table::new("paintings_metadata", table.schema().clone(), rows).unwrap();
        assert_eq!(rebuilt, table);
    }

    #[test]
    fn take_gathers_rows() {
        let table = paintings();
        let taken = table.take(&[2, 0]);
        assert_eq!(taken.num_rows(), 2);
        assert_eq!(taken.value(0, "title").unwrap(), Value::str("Scream"));
        assert_eq!(taken.value(1, "title").unwrap(), Value::str("Madonna"));
    }

    #[test]
    fn zero_column_tables_keep_their_row_count() {
        let table = Table::new("z", Schema::empty(), vec![vec![], vec![]]).unwrap();
        assert_eq!(table.num_rows(), 2);
        assert!(!table.is_empty());
    }

    #[test]
    fn clone_is_shallow() {
        let table = paintings();
        let copy = table.clone();
        for i in 0..table.num_columns() {
            assert!(Arc::ptr_eq(
                table.column_at(i).unwrap(),
                copy.column_at(i).unwrap()
            ));
        }
    }
}
