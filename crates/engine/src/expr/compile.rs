//! Compiled expression pipelines.
//!
//! [`CompiledExpr::compile`] lowers an [`Expr`] tree into a tree of
//! pre-resolved kernel nodes once per batch, instead of re-interpreting the
//! AST per morsel:
//!
//! * column names are bound to positional indices (no `Schema::resolve`
//!   hash lookups on the hot path; unresolvable names become lazy error
//!   nodes so the error surfaces exactly where interpretation would raise
//!   it),
//! * constant subtrees are folded to a single pre-computed value — or a
//!   pre-computed error that is only raised if the node is actually
//!   demanded, preserving the laziness of `CASE` branches and `IN` items,
//! * evaluation runs over an **offset view** of the input columns
//!   (`columns` + row range), so morsel-parallel execution reads the shared
//!   `Arc` buffers in place instead of memcpying a slice per morsel,
//! * the binary-operator kernels are monomorphized over the operand
//!   representations, including code-native kernels for dictionary-encoded
//!   string columns (one comparison per *dictionary entry* instead of one
//!   per row).
//!
//! The interpreted evaluator
//! ([`Expr::evaluate_batch_interpreted`](super::Expr::evaluate_batch_interpreted))
//! stays untouched as the reference; `tests/property_encoded.rs` proves the
//! compiled path byte-identical to it on randomized expression trees. Both
//! paths share the innermost operator kernels in this module, so the typed
//! loops cannot drift apart.

use super::{eval_binary, eval_func, eval_unary, int_cmp_result, like_match, Batch};
use super::{BinaryOp, Expr, ScalarFunc, UnaryOp};
use crate::column::{Bitmap, Column};
use crate::error::EngineResult;
use crate::schema::Schema;
use crate::value::Value;
use std::cell::RefCell;
use std::ops::Range;
use std::sync::Arc;

thread_local! {
    /// Per-worker argument buffer for row-wise function application, reused
    /// across every morsel a worker evaluates.
    static ARGV_SCRATCH: RefCell<Vec<Value>> = const { RefCell::new(Vec::new()) };
}

// ---------------------------------------------------------------------------
// Shared operand views and binary kernels
//
// Both the interpreted evaluator (`eval_binary_batch` in the parent module)
// and the compiled nodes below funnel into `eval_binary_view`, so there is
// exactly one implementation of every typed loop.
// ---------------------------------------------------------------------------

/// A binary-kernel operand: a column viewed at an offset (zero-copy), or a
/// scalar broadcast across the batch.
pub(super) enum ValuesView<'a> {
    /// `col` read at rows `offset..offset + len` (len is the kernel's).
    View {
        /// The (possibly larger) backing column.
        col: &'a Column,
        /// First row of the batch within `col`.
        offset: usize,
    },
    /// One value standing for every row.
    Scalar(&'a Value),
}

impl ValuesView<'_> {
    #[inline]
    fn get(&self, i: usize) -> Value {
        match self {
            ValuesView::View { col, offset } => col.get(offset + i),
            ValuesView::Scalar(v) => (*v).clone(),
        }
    }
}

/// A unified numeric view of an operand. Column data is pre-sliced to the
/// batch, while validity checks go through the backing bitmap at the
/// original offset.
enum NumOp<'a> {
    IntCol(&'a [i64], &'a Bitmap, usize),
    FloatCol(&'a [f64], &'a Bitmap, usize),
    IntScalar(i64),
    FloatScalar(f64),
}

impl NumOp<'_> {
    fn from_view<'a>(view: &ValuesView<'a>, len: usize) -> Option<NumOp<'a>> {
        match view {
            ValuesView::View { col, offset } => match col {
                Column::Int64(v, b) => Some(NumOp::IntCol(&v[*offset..*offset + len], b, *offset)),
                Column::Float64(v, b) => {
                    Some(NumOp::FloatCol(&v[*offset..*offset + len], b, *offset))
                }
                _ => None,
            },
            ValuesView::Scalar(Value::Int(i)) => Some(NumOp::IntScalar(*i)),
            ValuesView::Scalar(Value::Float(f)) => Some(NumOp::FloatScalar(*f)),
            _ => None,
        }
    }

    fn is_int(&self) -> bool {
        matches!(self, NumOp::IntCol(..) | NumOp::IntScalar(_))
    }

    #[inline]
    fn valid(&self, i: usize) -> bool {
        match self {
            NumOp::IntCol(_, b, off) => b.is_valid(off + i),
            NumOp::FloatCol(_, b, off) => b.is_valid(off + i),
            _ => true,
        }
    }

    #[inline]
    fn int_at(&self, i: usize) -> i64 {
        match self {
            NumOp::IntCol(v, ..) => v[i],
            NumOp::IntScalar(s) => *s,
            _ => unreachable!("int_at on a float operand"),
        }
    }

    #[inline]
    fn float_at(&self, i: usize) -> f64 {
        match self {
            NumOp::IntCol(v, ..) => v[i] as f64,
            NumOp::FloatCol(v, ..) => v[i],
            NumOp::IntScalar(s) => *s as f64,
            NumOp::FloatScalar(s) => *s,
        }
    }
}

/// A string-column operand: plain UTF-8 or dictionary-encoded. Data slices
/// are pre-offset to the batch; bitmaps keep the original offset.
enum StrSide<'a> {
    Plain(&'a [Arc<str>], &'a Bitmap, usize),
    Dict(&'a [u32], &'a Arc<Vec<Arc<str>>>, &'a Bitmap, usize),
}

impl StrSide<'_> {
    fn from_view<'a>(view: &ValuesView<'a>, len: usize) -> Option<StrSide<'a>> {
        match view {
            ValuesView::View { col, offset } => match col {
                Column::Utf8(v, b) => Some(StrSide::Plain(&v[*offset..*offset + len], b, *offset)),
                Column::Dict {
                    codes,
                    dict,
                    bitmap,
                } => Some(StrSide::Dict(
                    &codes[*offset..*offset + len],
                    dict,
                    bitmap,
                    *offset,
                )),
                _ => None,
            },
            ValuesView::Scalar(_) => None,
        }
    }

    #[inline]
    fn valid(&self, i: usize) -> bool {
        match self {
            StrSide::Plain(_, b, off) => b.is_valid(off + i),
            StrSide::Dict(_, _, b, off) => b.is_valid(off + i),
        }
    }

    #[inline]
    fn str_at(&self, i: usize) -> &str {
        match self {
            StrSide::Plain(v, ..) => v[i].as_ref(),
            StrSide::Dict(codes, dict, ..) => dict[codes[i] as usize].as_ref(),
        }
    }
}

/// Evaluate a binary operation over two operand views — the single shared
/// kernel behind both the interpreted and the compiled evaluator. Uses typed
/// vector loops for numeric arithmetic/comparisons and string
/// comparisons/LIKE (with code-native dictionary kernels), and falls back to
/// element-wise [`eval_binary`] everywhere else.
pub(super) fn eval_binary_view(
    lhs: &ValuesView<'_>,
    op: BinaryOp,
    rhs: &ValuesView<'_>,
    num_rows: usize,
) -> EngineResult<Batch> {
    use BinaryOp::*;
    if let (ValuesView::Scalar(a), ValuesView::Scalar(b)) = (lhs, rhs) {
        return Ok(Batch::Scalar(eval_binary(a, op, b)?));
    }

    // Typed numeric kernels: + - * and the orderings.
    if let (Some(a), Some(b)) = (
        NumOp::from_view(lhs, num_rows),
        NumOp::from_view(rhs, num_rows),
    ) {
        match op {
            Add | Sub | Mul => {
                let column = if a.is_int() && b.is_int() {
                    let mut data = Vec::with_capacity(num_rows);
                    let mut validity = Bitmap::new();
                    for i in 0..num_rows {
                        let valid = a.valid(i) && b.valid(i);
                        // The row engine computes int arithmetic through f64
                        // and casts back (saturating, 53-bit precision);
                        // mirror that exactly so both evaluation paths agree.
                        let (x, y) = (a.int_at(i) as f64, b.int_at(i) as f64);
                        data.push(match op {
                            Add => (x + y) as i64,
                            Sub => (x - y) as i64,
                            _ => (x * y) as i64,
                        });
                        validity.push(valid);
                    }
                    Column::Int64(data, validity)
                } else {
                    let mut data = Vec::with_capacity(num_rows);
                    let mut validity = Bitmap::new();
                    for i in 0..num_rows {
                        let valid = a.valid(i) && b.valid(i);
                        let (x, y) = (a.float_at(i), b.float_at(i));
                        data.push(match op {
                            Add => x + y,
                            Sub => x - y,
                            _ => x * y,
                        });
                        validity.push(valid);
                    }
                    Column::Float64(data, validity)
                };
                return Ok(Batch::Col(Arc::new(column)));
            }
            Lt | LtEq | Gt | GtEq | Eq | NotEq => {
                let mut data = Vec::with_capacity(num_rows);
                let mut validity = Bitmap::new();
                if a.is_int() && b.is_int() {
                    for i in 0..num_rows {
                        let valid = a.valid(i) && b.valid(i);
                        let (x, y) = (a.int_at(i), b.int_at(i));
                        data.push(int_cmp_result(op, x.cmp(&y)));
                        validity.push(valid);
                    }
                } else {
                    // sql_eq compares a mixed int/float pair with `==` but a
                    // float/float pair with total_cmp — mirror that exactly.
                    let mixed = a.is_int() != b.is_int();
                    for i in 0..num_rows {
                        let valid = a.valid(i) && b.valid(i);
                        let (x, y) = (a.float_at(i), b.float_at(i));
                        data.push(match op {
                            Eq if mixed => x == y,
                            NotEq if mixed => x != y,
                            _ => int_cmp_result(op, x.total_cmp(&y)),
                        });
                        validity.push(valid);
                    }
                }
                return Ok(Batch::Col(Arc::new(Column::Bool(data, validity))));
            }
            _ => {}
        }
    }

    // Typed string kernels: orderings, equality, and LIKE.
    if let Some(batch) = eval_str_view(lhs, op, rhs, num_rows) {
        return Ok(batch);
    }

    // Element-wise fallback preserves the exact dynamic-typing semantics
    // (including the per-row type errors the planner relies on observing).
    let mut out = Vec::with_capacity(num_rows);
    for i in 0..num_rows {
        out.push(eval_binary(&lhs.get(i), op, &rhs.get(i))?);
    }
    Ok(Batch::Col(Arc::new(Column::from_values(out))))
}

/// String kernels for the comparison operators and LIKE. Returns `None` when
/// neither shape applies (the caller falls back to element-wise evaluation).
fn eval_str_view(
    lhs: &ValuesView<'_>,
    op: BinaryOp,
    rhs: &ValuesView<'_>,
    num_rows: usize,
) -> Option<Batch> {
    use BinaryOp::*;
    if !matches!(op, Lt | LtEq | Gt | GtEq | Eq | NotEq | Like) {
        return None;
    }
    let str_scalar = |view: &ValuesView<'_>| match view {
        ValuesView::Scalar(Value::Str(s)) => Some(Arc::clone(s)),
        _ => None,
    };
    // Column vs scalar — the common predicate shape (`movement = 'Baroque'`).
    if let (Some(side), Some(s)) = (StrSide::from_view(lhs, num_rows), str_scalar(rhs)) {
        let column = match side {
            StrSide::Plain(data, bitmap, off) => {
                let mut out = Vec::with_capacity(num_rows);
                let mut validity = Bitmap::new();
                for (i, v) in data.iter().enumerate() {
                    let valid = bitmap.is_valid(off + i);
                    out.push(if valid {
                        match op {
                            Like => like_match(v, &s),
                            _ => int_cmp_result(op, v.as_ref().cmp(s.as_ref())),
                        }
                    } else {
                        false
                    });
                    validity.push(valid);
                }
                Column::Bool(out, validity)
            }
            StrSide::Dict(codes, dict, bitmap, off) => {
                // Code-native kernel: one comparison (or LIKE match) per
                // dictionary *entry*, then a table lookup per row.
                let table: Vec<bool> = dict
                    .iter()
                    .map(|entry| match op {
                        Like => like_match(entry, &s),
                        _ => int_cmp_result(op, entry.as_ref().cmp(s.as_ref())),
                    })
                    .collect();
                let mut out = Vec::with_capacity(num_rows);
                let mut validity = Bitmap::new();
                for (i, &code) in codes.iter().enumerate() {
                    let valid = bitmap.is_valid(off + i);
                    out.push(valid && table[code as usize]);
                    validity.push(valid);
                }
                Column::Bool(out, validity)
            }
        };
        return Some(Batch::Col(Arc::new(column)));
    }
    // Column vs column.
    if let (Some(left), Some(right)) = (
        StrSide::from_view(lhs, num_rows),
        StrSide::from_view(rhs, num_rows),
    ) {
        // Code-native equality when both sides index the same dictionary:
        // entries are duplicate-free, so equal codes ⇔ equal strings.
        if let (
            StrSide::Dict(lcodes, ldict, lbitmap, loff),
            StrSide::Dict(rcodes, rdict, rbitmap, roff),
        ) = (&left, &right)
        {
            if matches!(op, Eq | NotEq) && Arc::ptr_eq(ldict, rdict) {
                let mut out = Vec::with_capacity(num_rows);
                let mut validity = Bitmap::new();
                for i in 0..num_rows {
                    let valid = lbitmap.is_valid(loff + i) && rbitmap.is_valid(roff + i);
                    let equal = lcodes[i] == rcodes[i];
                    out.push(valid && (equal == matches!(op, Eq)));
                    validity.push(valid);
                }
                return Some(Batch::Col(Arc::new(Column::Bool(out, validity))));
            }
        }
        let mut out = Vec::with_capacity(num_rows);
        let mut validity = Bitmap::new();
        for i in 0..num_rows {
            let valid = left.valid(i) && right.valid(i);
            out.push(if valid {
                match op {
                    Like => like_match(left.str_at(i), right.str_at(i)),
                    _ => int_cmp_result(op, left.str_at(i).cmp(right.str_at(i))),
                }
            } else {
                false
            });
            validity.push(valid);
        }
        return Some(Batch::Col(Arc::new(Column::Bool(out, validity))));
    }
    None
}

// ---------------------------------------------------------------------------
// The compiled node tree
// ---------------------------------------------------------------------------

/// A compiled expression node: column references bound to indices, constant
/// subtrees folded to their (lazily raised) results.
#[derive(Debug, Clone)]
enum Node {
    /// A pre-computed constant — or a pre-computed error, raised only when
    /// the node is actually demanded (so `CASE`/`IN` laziness is preserved).
    Const(EngineResult<Value>),
    /// A column reference bound to its positional index.
    Col(usize),
    /// A binary operation.
    Binary {
        left: Box<Node>,
        op: BinaryOp,
        right: Box<Node>,
    },
    /// A unary operation.
    Unary { op: UnaryOp, operand: Box<Node> },
    /// A scalar function call.
    Func { func: ScalarFunc, args: Vec<Node> },
    /// `expr IN (...)`, evaluated lazily per row (or per dictionary entry).
    InList {
        expr: Box<Node>,
        list: Vec<Node>,
        negated: bool,
    },
    /// `CASE WHEN ... END`, evaluated lazily per row.
    Case {
        branches: Vec<(Node, Node)>,
        otherwise: Option<Box<Node>>,
    },
}

/// The result of evaluating a compiled node over a row range.
enum NodeBatch<'a> {
    /// A borrowed input column viewed at an offset — zero-copy.
    View(&'a Column, usize),
    /// A computed column of exactly the batch length.
    Col(Arc<Column>),
    /// One value standing for every row.
    Scalar(Value),
}

impl NodeBatch<'_> {
    #[inline]
    fn get(&self, i: usize) -> Value {
        match self {
            NodeBatch::View(col, off) => col.get(off + i),
            NodeBatch::Col(col) => col.get(i),
            NodeBatch::Scalar(v) => v.clone(),
        }
    }

    fn as_view(&self) -> ValuesView<'_> {
        match self {
            NodeBatch::View(col, off) => ValuesView::View { col, offset: *off },
            NodeBatch::Col(col) => ValuesView::View {
                col: col.as_ref(),
                offset: 0,
            },
            NodeBatch::Scalar(v) => ValuesView::Scalar(v),
        }
    }
}

impl Node {
    fn is_constant(&self) -> bool {
        match self {
            Node::Const(_) => true,
            Node::Col(_) => false,
            Node::Binary { left, right, .. } => left.is_constant() && right.is_constant(),
            Node::Unary { operand, .. } => operand.is_constant(),
            Node::Func { args, .. } => args.iter().all(Node::is_constant),
            // IN and CASE are evaluated strictly per-row by the interpreter,
            // which also means a parent of a constant IN/CASE sees a column
            // batch, not a scalar — so constant-ness stops here. Treating
            // them (or their parents) as foldable would pre-raise errors no
            // row demanded (zero rows, short-circuited items, untaken
            // branches).
            Node::InList { .. } | Node::Case { .. } => false,
        }
    }

    /// Evaluate the node at one absolute row — the compiled mirror of
    /// [`Expr::evaluate_at`], used for the lazily evaluated constructs and
    /// for constant folding (where `columns` is empty and never read).
    fn eval_row(&self, columns: &[Arc<Column>], i: usize) -> EngineResult<Value> {
        match self {
            Node::Const(result) => result.clone(),
            Node::Col(idx) => Ok(columns[*idx].get(i)),
            Node::Binary { left, op, right } => {
                let lhs = left.eval_row(columns, i)?;
                let rhs = right.eval_row(columns, i)?;
                eval_binary(&lhs, *op, &rhs)
            }
            Node::Unary { op, operand } => {
                let value = operand.eval_row(columns, i)?;
                eval_unary(*op, &value)
            }
            Node::Func { func, args } => {
                let mut values = Vec::with_capacity(args.len());
                for arg in args {
                    values.push(arg.eval_row(columns, i)?);
                }
                eval_func(*func, &values)
            }
            Node::InList {
                expr,
                list,
                negated,
            } => {
                let needle = expr.eval_row(columns, i)?;
                if needle.is_null() {
                    return Ok(Value::Null);
                }
                in_list_scan(&needle, list, *negated, columns, i)
            }
            Node::Case {
                branches,
                otherwise,
            } => {
                for (cond, result) in branches {
                    if cond.eval_row(columns, i)?.as_bool() == Some(true) {
                        return result.eval_row(columns, i);
                    }
                }
                match otherwise {
                    Some(e) => e.eval_row(columns, i),
                    None => Ok(Value::Null),
                }
            }
        }
    }

    /// Evaluate the node over `range` of the input columns.
    fn eval_batch<'a>(
        &self,
        columns: &'a [Arc<Column>],
        range: &Range<usize>,
    ) -> EngineResult<NodeBatch<'a>> {
        let num_rows = range.len();
        match self {
            Node::Const(result) => result.clone().map(NodeBatch::Scalar),
            Node::Col(idx) => Ok(NodeBatch::View(columns[*idx].as_ref(), range.start)),
            Node::Binary { left, op, right } => {
                let lhs = left.eval_batch(columns, range)?;
                let rhs = right.eval_batch(columns, range)?;
                match eval_binary_view(&lhs.as_view(), *op, &rhs.as_view(), num_rows)? {
                    Batch::Col(col) => Ok(NodeBatch::Col(col)),
                    Batch::Scalar(v) => Ok(NodeBatch::Scalar(v)),
                }
            }
            Node::Unary { op, operand } => match operand.eval_batch(columns, range)? {
                NodeBatch::Scalar(v) => Ok(NodeBatch::Scalar(eval_unary(*op, &v)?)),
                batch => {
                    let mut out = Vec::with_capacity(num_rows);
                    for i in 0..num_rows {
                        out.push(eval_unary(*op, &batch.get(i))?);
                    }
                    Ok(NodeBatch::Col(Arc::new(Column::from_values(out))))
                }
            },
            Node::Func { func, args } => {
                let mut batches = Vec::with_capacity(args.len());
                for arg in args {
                    batches.push(arg.eval_batch(columns, range)?);
                }
                if batches.iter().all(|b| matches!(b, NodeBatch::Scalar(_))) {
                    let argv: Vec<Value> = batches.iter().map(|b| b.get(0)).collect();
                    return Ok(NodeBatch::Scalar(eval_func(*func, &argv)?));
                }
                let mut out = Vec::with_capacity(num_rows);
                ARGV_SCRATCH.with(|scratch| -> EngineResult<()> {
                    let mut argv = scratch.borrow_mut();
                    for i in 0..num_rows {
                        argv.clear();
                        for batch in &batches {
                            argv.push(batch.get(i));
                        }
                        out.push(eval_func(*func, &argv)?);
                    }
                    Ok(())
                })?;
                Ok(NodeBatch::Col(Arc::new(Column::from_values(out))))
            }
            Node::InList {
                expr,
                list,
                negated,
            } => {
                // Code-native IN: when the needle is a dictionary-encoded
                // column and every list item is a constant, the scan result
                // depends only on the needle's *entry* — memoize one lazy
                // item scan per entry instead of one per row. Entries (and
                // erroring items) that no scanned row demands are never
                // evaluated, exactly like the row-at-a-time path.
                if let Node::Col(idx) = expr.as_ref() {
                    if let Column::Dict {
                        codes,
                        dict,
                        bitmap,
                    } = columns[*idx].as_ref()
                    {
                        if list.iter().all(|item| matches!(item, Node::Const(_))) {
                            let mut memo: Vec<Option<EngineResult<Value>>> = vec![None; dict.len()];
                            let mut out = Vec::with_capacity(num_rows);
                            for i in range.clone() {
                                if bitmap.is_valid(i) {
                                    let code = codes[i] as usize;
                                    let result = memo[code].get_or_insert_with(|| {
                                        let needle = Value::Str(Arc::clone(&dict[code]));
                                        in_list_scan(&needle, list, *negated, columns, i)
                                    });
                                    out.push(result.clone()?);
                                } else {
                                    out.push(Value::Null);
                                }
                            }
                            return Ok(NodeBatch::Col(Arc::new(Column::from_values(out))));
                        }
                    }
                }
                self.eval_rows(columns, range)
            }
            Node::Case { .. } => self.eval_rows(columns, range),
        }
    }

    /// Row-at-a-time evaluation over `range` — for the constructs whose
    /// branches/items must only be evaluated as far as each row needs them.
    fn eval_rows<'a>(
        &self,
        columns: &[Arc<Column>],
        range: &Range<usize>,
    ) -> EngineResult<NodeBatch<'a>> {
        let mut out = Vec::with_capacity(range.len());
        for i in range.clone() {
            out.push(self.eval_row(columns, i)?);
        }
        Ok(NodeBatch::Col(Arc::new(Column::from_values(out))))
    }
}

/// Scan IN-list items for `needle` (non-NULL), stopping at the first match —
/// the shared lazy scan of the per-row and per-entry paths.
fn in_list_scan(
    needle: &Value,
    list: &[Node],
    negated: bool,
    columns: &[Arc<Column>],
    i: usize,
) -> EngineResult<Value> {
    let mut found = false;
    for item in list {
        let candidate = item.eval_row(columns, i)?;
        if needle.sql_eq(&candidate) == Some(true) {
            found = true;
            break;
        }
    }
    Ok(Value::Bool(found != negated))
}

/// An [`Expr`] lowered to pre-resolved kernel nodes (see the module docs).
/// Compile once per batch, then evaluate any number of row ranges — the
/// morsel-parallel driver hands every worker the same compiled tree and a
/// different range over the shared input columns.
#[derive(Debug, Clone)]
pub struct CompiledExpr {
    root: Node,
}

impl CompiledExpr {
    /// Lower `expr` against `schema`: bind column indices, fold constant
    /// subtrees. Compilation never fails — unresolvable column names become
    /// lazy error nodes so the error surfaces exactly where the interpreted
    /// evaluator would raise it.
    pub fn compile(expr: &Expr, schema: &Schema) -> CompiledExpr {
        CompiledExpr {
            root: lower(expr, schema),
        }
    }

    /// Evaluate over `range` of the input columns, producing a column of
    /// `range.len()` rows. The inputs are read in place at the range offset —
    /// no per-morsel slicing.
    pub fn evaluate_range(
        &self,
        columns: &[Arc<Column>],
        range: Range<usize>,
    ) -> EngineResult<Arc<Column>> {
        let num_rows = range.len();
        match self.root.eval_batch(columns, &range)? {
            NodeBatch::Col(col) => Ok(col),
            NodeBatch::View(col, off) => Ok(Arc::new(col.slice(off..off + num_rows))),
            NodeBatch::Scalar(v) => Ok(Arc::new(Column::from_values(vec![v; num_rows]))),
        }
    }

    /// Evaluate as a predicate over `range` and return the selected row
    /// indices **relative to `range.start`** (NULL = not selected).
    pub fn selection_range(
        &self,
        columns: &[Arc<Column>],
        range: Range<usize>,
    ) -> EngineResult<Vec<usize>> {
        let num_rows = range.len();
        let batch = self.root.eval_batch(columns, &range)?;
        if let NodeBatch::Scalar(v) = &batch {
            return Ok(if v.as_bool() == Some(true) {
                (0..num_rows).collect()
            } else {
                Vec::new()
            });
        }
        let (col, off) = match &batch {
            NodeBatch::View(col, off) => (*col, *off),
            NodeBatch::Col(col) => (col.as_ref(), 0),
            NodeBatch::Scalar(_) => unreachable!("handled above"),
        };
        let mut selected = Vec::new();
        if let Some((data, validity)) = col.as_bools() {
            for (i, &b) in data[off..off + num_rows].iter().enumerate() {
                if b && validity.is_valid(off + i) {
                    selected.push(i);
                }
            }
        } else {
            for i in 0..num_rows {
                if col.get(off + i).as_bool() == Some(true) {
                    selected.push(i);
                }
            }
        }
        Ok(selected)
    }
}

/// Lower one expression node, folding constant subtrees bottom-up.
fn lower(expr: &Expr, schema: &Schema) -> Node {
    let node = match expr {
        Expr::Literal(value) => Node::Const(Ok(value.clone())),
        Expr::Column(name) => match schema.resolve(name) {
            Ok(idx) => Node::Col(idx),
            Err(e) => Node::Const(Err(e)),
        },
        Expr::Binary { left, op, right } => Node::Binary {
            left: Box::new(lower(left, schema)),
            op: *op,
            right: Box::new(lower(right, schema)),
        },
        Expr::Unary { op, operand } => Node::Unary {
            op: *op,
            operand: Box::new(lower(operand, schema)),
        },
        Expr::Func { func, args } => Node::Func {
            func: *func,
            args: args.iter().map(|a| lower(a, schema)).collect(),
        },
        Expr::InList {
            expr,
            list,
            negated,
        } => Node::InList {
            expr: Box::new(lower(expr, schema)),
            list: list.iter().map(|a| lower(a, schema)).collect(),
            negated: *negated,
        },
        Expr::Case {
            branches,
            otherwise,
        } => Node::Case {
            branches: branches
                .iter()
                .map(|(c, r)| (lower(c, schema), lower(r, schema)))
                .collect(),
            otherwise: otherwise.as_ref().map(|e| Box::new(lower(e, schema))),
        },
    };
    match node {
        // Already folded (or a leaf).
        Node::Const(_) | Node::Col(_) => node,
        // A composite with only constant inputs evaluates to the same
        // (lazily raised) result for every row — the interpreter applies
        // scalar unary/func/binary kernels eagerly too, independent of the
        // row count — so fold it now. The row index and columns are never
        // read by a constant tree. (`is_constant` deliberately excludes
        // IN/CASE, which the interpreter keeps strictly per-row.)
        node if node.is_constant() => Node::Const(node.eval_row(&[], 0)),
        node => node,
    }
}
