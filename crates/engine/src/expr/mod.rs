//! Scalar expressions and their evaluation.
//!
//! Expressions are produced by the SQL front-end (`sql` module) and by the
//! transform-DSL of the Python-UDF substitute in `caesura-modal`. They can be
//! evaluated two ways:
//!
//! * **column-at-a-time** via [`Expr::evaluate_batch`] — the vectorized path
//!   the physical operators use. The expression is first lowered to a
//!   [`CompiledExpr`] (column names bound to indices, constant subtrees
//!   folded — see [`compile`]), then evaluated morsel-wise over zero-copy
//!   row-range views of the input columns, with typed kernels (and scalar
//!   broadcasting for literals) for the common numeric and string cases and
//!   an element-wise fallback where per-row dynamic typing demands it;
//! * **row-at-a-time** via [`Expr::evaluate`] against a [`Schema`] + value
//!   slice — kept for per-row consumers such as the perception operators.
//!
//! The pre-compilation interpreter is retained as
//! [`Expr::evaluate_batch_interpreted`] / [`Expr::selection_vector_interpreted`]:
//! it is the executable reference the property tests compare the compiled
//! evaluator against. Both paths share the innermost binary-operator kernels
//! ([`compile::eval_binary_view`](self::compile)), so they cannot drift.

pub mod compile;

pub use compile::CompiledExpr;

use crate::column::Column;
use crate::error::{EngineError, EngineResult};
use crate::schema::Schema;
use crate::value::{DataType, DateValue, Value};
use std::fmt;
use std::sync::Arc;

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinaryOp {
    /// Addition (numeric) / concatenation is handled by the `concat` function.
    Add,
    /// Subtraction.
    Sub,
    /// Multiplication.
    Mul,
    /// Division (floating point unless both operands are ints and divide evenly).
    Div,
    /// Modulo.
    Mod,
    /// Equality.
    Eq,
    /// Inequality.
    NotEq,
    /// Less than.
    Lt,
    /// Less than or equal.
    LtEq,
    /// Greater than.
    Gt,
    /// Greater than or equal.
    GtEq,
    /// Logical AND (three-valued).
    And,
    /// Logical OR (three-valued).
    Or,
    /// SQL LIKE with `%` and `_` wildcards, case-insensitive.
    Like,
}

impl fmt::Display for BinaryOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let text = match self {
            BinaryOp::Add => "+",
            BinaryOp::Sub => "-",
            BinaryOp::Mul => "*",
            BinaryOp::Div => "/",
            BinaryOp::Mod => "%",
            BinaryOp::Eq => "=",
            BinaryOp::NotEq => "!=",
            BinaryOp::Lt => "<",
            BinaryOp::LtEq => "<=",
            BinaryOp::Gt => ">",
            BinaryOp::GtEq => ">=",
            BinaryOp::And => "AND",
            BinaryOp::Or => "OR",
            BinaryOp::Like => "LIKE",
        };
        f.write_str(text)
    }
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnaryOp {
    /// Numeric negation.
    Neg,
    /// Logical NOT.
    Not,
    /// IS NULL test.
    IsNull,
    /// IS NOT NULL test.
    IsNotNull,
}

/// Built-in scalar functions available to SQL and the transform DSL.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScalarFunc {
    /// `LOWER(s)`.
    Lower,
    /// `UPPER(s)`.
    Upper,
    /// `LENGTH(s)` — number of characters.
    Length,
    /// `SUBSTR(s, start, len)` — 1-based like SQLite.
    Substr,
    /// `CAST_INT(x)` — best-effort conversion to integer.
    CastInt,
    /// `CAST_FLOAT(x)` — best-effort conversion to float.
    CastFloat,
    /// `CAST_STR(x)` — render as string.
    CastStr,
    /// `CONCAT(a, b, ...)`.
    Concat,
    /// `ABS(x)`.
    Abs,
    /// `ROUND(x)` or `ROUND(x, digits)`.
    Round,
    /// `COALESCE(a, b, ...)` — first non-null argument.
    Coalesce,
    /// `EXTRACT_YEAR(s)` — first 4-digit year found in a string or date.
    ExtractYear,
    /// `CENTURY(x)` — century of a year, date, or date-like string.
    Century,
    /// `TRIM(s)`.
    Trim,
    /// `REPLACE(s, from, to)`.
    Replace,
    /// `MIN2(a, b)` — scalar minimum.
    Min2,
    /// `MAX2(a, b)` — scalar maximum.
    Max2,
}

impl ScalarFunc {
    /// Look a function up by its SQL name.
    pub fn from_name(name: &str) -> Option<ScalarFunc> {
        Some(match name.to_ascii_uppercase().as_str() {
            "LOWER" => ScalarFunc::Lower,
            "UPPER" => ScalarFunc::Upper,
            "LENGTH" | "LEN" => ScalarFunc::Length,
            "SUBSTR" | "SUBSTRING" => ScalarFunc::Substr,
            "CAST_INT" | "TOINT" | "INT" => ScalarFunc::CastInt,
            "CAST_FLOAT" | "TOFLOAT" => ScalarFunc::CastFloat,
            "CAST_STR" | "TOSTR" | "STR" => ScalarFunc::CastStr,
            "CONCAT" => ScalarFunc::Concat,
            "ABS" => ScalarFunc::Abs,
            "ROUND" => ScalarFunc::Round,
            "COALESCE" | "IFNULL" => ScalarFunc::Coalesce,
            "EXTRACT_YEAR" | "YEAR" => ScalarFunc::ExtractYear,
            "CENTURY" => ScalarFunc::Century,
            "TRIM" => ScalarFunc::Trim,
            "REPLACE" => ScalarFunc::Replace,
            "MIN2" => ScalarFunc::Min2,
            "MAX2" => ScalarFunc::Max2,
            _ => return None,
        })
    }

    /// SQL-facing name.
    pub fn name(&self) -> &'static str {
        match self {
            ScalarFunc::Lower => "LOWER",
            ScalarFunc::Upper => "UPPER",
            ScalarFunc::Length => "LENGTH",
            ScalarFunc::Substr => "SUBSTR",
            ScalarFunc::CastInt => "CAST_INT",
            ScalarFunc::CastFloat => "CAST_FLOAT",
            ScalarFunc::CastStr => "CAST_STR",
            ScalarFunc::Concat => "CONCAT",
            ScalarFunc::Abs => "ABS",
            ScalarFunc::Round => "ROUND",
            ScalarFunc::Coalesce => "COALESCE",
            ScalarFunc::ExtractYear => "EXTRACT_YEAR",
            ScalarFunc::Century => "CENTURY",
            ScalarFunc::Trim => "TRIM",
            ScalarFunc::Replace => "REPLACE",
            ScalarFunc::Min2 => "MIN2",
            ScalarFunc::Max2 => "MAX2",
        }
    }
}

/// A scalar expression tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// A literal constant.
    Literal(Value),
    /// A column reference, resolved lazily against the input schema.
    Column(String),
    /// A binary operation.
    Binary {
        /// Left operand.
        left: Box<Expr>,
        /// Operator.
        op: BinaryOp,
        /// Right operand.
        right: Box<Expr>,
    },
    /// A unary operation.
    Unary {
        /// Operator.
        op: UnaryOp,
        /// Operand.
        operand: Box<Expr>,
    },
    /// A scalar function call.
    Func {
        /// The function.
        func: ScalarFunc,
        /// Arguments.
        args: Vec<Expr>,
    },
    /// `expr IN (v1, v2, ...)`.
    InList {
        /// The needle.
        expr: Box<Expr>,
        /// The list of candidate expressions.
        list: Vec<Expr>,
        /// Whether the test is negated (`NOT IN`).
        negated: bool,
    },
    /// `CASE WHEN cond THEN value ... ELSE value END`.
    Case {
        /// `(condition, result)` branches in order.
        branches: Vec<(Expr, Expr)>,
        /// Optional ELSE result.
        otherwise: Option<Box<Expr>>,
    },
}

impl Expr {
    /// Convenience constructor for column references.
    pub fn col(name: impl Into<String>) -> Expr {
        Expr::Column(name.into())
    }

    /// Convenience constructor for literals.
    pub fn lit(value: impl Into<Value>) -> Expr {
        Expr::Literal(value.into())
    }

    /// Convenience constructor for binary expressions.
    pub fn binary(left: Expr, op: BinaryOp, right: Expr) -> Expr {
        Expr::Binary {
            left: Box::new(left),
            op,
            right: Box::new(right),
        }
    }

    /// `self = other`.
    pub fn eq(self, other: Expr) -> Expr {
        Expr::binary(self, BinaryOp::Eq, other)
    }

    /// `self AND other`.
    pub fn and(self, other: Expr) -> Expr {
        Expr::binary(self, BinaryOp::And, other)
    }

    /// All column names referenced anywhere in the expression.
    pub fn referenced_columns(&self) -> Vec<String> {
        let mut out = Vec::new();
        self.collect_columns(&mut out);
        out
    }

    fn collect_columns(&self, out: &mut Vec<String>) {
        match self {
            Expr::Literal(_) => {}
            Expr::Column(name) => {
                if !out.contains(name) {
                    out.push(name.clone());
                }
            }
            Expr::Binary { left, right, .. } => {
                left.collect_columns(out);
                right.collect_columns(out);
            }
            Expr::Unary { operand, .. } => operand.collect_columns(out),
            Expr::Func { args, .. } => {
                for arg in args {
                    arg.collect_columns(out);
                }
            }
            Expr::InList { expr, list, .. } => {
                expr.collect_columns(out);
                for item in list {
                    item.collect_columns(out);
                }
            }
            Expr::Case {
                branches,
                otherwise,
            } => {
                for (cond, result) in branches {
                    cond.collect_columns(out);
                    result.collect_columns(out);
                }
                if let Some(e) = otherwise {
                    e.collect_columns(out);
                }
            }
        }
    }

    /// Evaluate the expression against one row (a slice of cell values in
    /// schema order).
    pub fn evaluate(&self, schema: &Schema, row: &[Value]) -> EngineResult<Value> {
        match self {
            Expr::Literal(value) => Ok(value.clone()),
            Expr::Column(name) => {
                let idx = schema.resolve(name)?;
                Ok(row[idx].clone())
            }
            Expr::Binary { left, op, right } => {
                let lhs = left.evaluate(schema, row)?;
                let rhs = right.evaluate(schema, row)?;
                eval_binary(&lhs, *op, &rhs)
            }
            Expr::Unary { op, operand } => {
                let value = operand.evaluate(schema, row)?;
                eval_unary(*op, &value)
            }
            Expr::Func { func, args } => {
                let mut values = Vec::with_capacity(args.len());
                for arg in args {
                    values.push(arg.evaluate(schema, row)?);
                }
                eval_func(*func, &values)
            }
            Expr::InList {
                expr,
                list,
                negated,
            } => {
                let needle = expr.evaluate(schema, row)?;
                if needle.is_null() {
                    return Ok(Value::Null);
                }
                let mut found = false;
                for item in list {
                    let candidate = item.evaluate(schema, row)?;
                    if needle.sql_eq(&candidate) == Some(true) {
                        found = true;
                        break;
                    }
                }
                Ok(Value::Bool(found != *negated))
            }
            Expr::Case {
                branches,
                otherwise,
            } => {
                for (cond, result) in branches {
                    let test = cond.evaluate(schema, row)?;
                    if test.as_bool() == Some(true) {
                        return result.evaluate(schema, row);
                    }
                }
                match otherwise {
                    Some(e) => e.evaluate(schema, row),
                    None => Ok(Value::Null),
                }
            }
        }
    }

    /// Evaluate the expression as a boolean predicate (NULL counts as false).
    pub fn evaluate_predicate(&self, schema: &Schema, row: &[Value]) -> EngineResult<bool> {
        let value = self.evaluate(schema, row)?;
        Ok(value.as_bool().unwrap_or(false))
    }

    /// Evaluate the expression for every row at once, producing one column.
    ///
    /// `columns` are the input table's columns in schema order and `num_rows`
    /// its row count. The expression is lowered to a [`CompiledExpr`] once
    /// (column names bound to indices, constant subtrees folded), then
    /// evaluated either in one pass or — when the [`ExecConfig`] calls for
    /// it — morsel-parallel, each worker reading the shared input columns in
    /// place through a zero-copy row-range view. Chunk results concatenate in
    /// morsel order, so the output is byte-identical to sequential
    /// evaluation.
    ///
    /// [`ExecConfig`]: crate::parallel::ExecConfig
    pub fn evaluate_batch(
        &self,
        schema: &Schema,
        columns: &[Arc<Column>],
        num_rows: usize,
    ) -> EngineResult<Arc<Column>> {
        // Literals stay scalar and plain column references stay zero-copy
        // `Arc` bumps — compiling either would only add work.
        if matches!(self, Expr::Literal(_) | Expr::Column(_)) {
            return Ok(self
                .evaluate_batch_inner(schema, columns, num_rows)?
                .materialize(num_rows));
        }
        let compiled = CompiledExpr::compile(self, schema);
        let config = crate::parallel::exec_config();
        if config.should_parallelize(num_rows) {
            let chunks: Vec<Arc<Column>> =
                crate::parallel::try_map_morsels(&config, num_rows, |range| {
                    compiled.evaluate_range(columns, range)
                })?;
            let parts: Vec<&Column> = chunks.iter().map(|c| c.as_ref()).collect();
            return Ok(Arc::new(Column::concat(&parts)));
        }
        compiled.evaluate_range(columns, 0..num_rows)
    }

    /// The pre-compilation batch evaluator, kept as the executable reference
    /// for the compiled path (`tests/property_encoded.rs` proves them
    /// byte-identical). Interprets the AST per batch and slices the
    /// referenced input columns per morsel instead of compiling once and
    /// reading range views.
    pub fn evaluate_batch_interpreted(
        &self,
        schema: &Schema,
        columns: &[Arc<Column>],
        num_rows: usize,
    ) -> EngineResult<Arc<Column>> {
        let config = crate::parallel::exec_config();
        if config.should_parallelize(num_rows)
            && !matches!(self, Expr::Literal(_) | Expr::Column(_))
        {
            return self.evaluate_batch_morsels(schema, columns, num_rows, &config);
        }
        Ok(self
            .evaluate_batch_inner(schema, columns, num_rows)?
            .materialize(num_rows))
    }

    /// Morsel-parallel interpreted evaluation: slice the referenced input
    /// columns per morsel, run the (sequential) vectorized interpreter on
    /// each chunk on the worker pool, and concatenate the chunk columns in
    /// morsel order. Because [`Column::slice`] preserves storage
    /// representations, every chunk takes exactly the kernel the full column
    /// would, so the reassembled column is byte-identical to sequential
    /// evaluation.
    fn evaluate_batch_morsels(
        &self,
        schema: &Schema,
        columns: &[Arc<Column>],
        num_rows: usize,
        config: &crate::parallel::ExecConfig,
    ) -> EngineResult<Arc<Column>> {
        let referenced = self.referenced_column_mask(schema, columns.len());
        let chunks: Vec<Arc<Column>> =
            crate::parallel::try_map_morsels(config, num_rows, |range| {
                let chunk_columns = chunk_input_columns(columns, &referenced, range.clone());
                // Chunk lengths never exceed `morsel_rows`, so this nested
                // call always takes the sequential path.
                self.evaluate_batch_interpreted(schema, &chunk_columns, range.len())
            })?;
        let parts: Vec<&Column> = chunks.iter().map(|c| c.as_ref()).collect();
        Ok(Arc::new(Column::concat(&parts)))
    }

    /// Which input columns the expression reads, as a positional mask.
    /// Unresolvable references are simply left out — the chunk evaluation
    /// raises exactly the error the sequential evaluation would.
    fn referenced_column_mask(&self, schema: &Schema, num_columns: usize) -> Vec<bool> {
        let mut mask = vec![false; num_columns];
        for name in self.referenced_columns() {
            if let Ok(idx) = schema.resolve(&name) {
                if idx < num_columns {
                    mask[idx] = true;
                }
            }
        }
        mask
    }

    /// Evaluate the expression as a predicate over all rows and return the
    /// selection vector of row indices where it is true (NULL = not selected).
    ///
    /// Like [`Expr::evaluate_batch`], the expression is compiled once and
    /// evaluated over zero-copy row-range views, morsel-parallel when the
    /// execution config calls for it.
    pub fn selection_vector(
        &self,
        schema: &Schema,
        columns: &[Arc<Column>],
        num_rows: usize,
    ) -> EngineResult<Vec<usize>> {
        let compiled = CompiledExpr::compile(self, schema);
        let config = crate::parallel::exec_config();
        if config.should_parallelize(num_rows) && !matches!(self, Expr::Literal(_)) {
            let chunks = crate::parallel::try_map_morsels(&config, num_rows, |range| {
                let start = range.start;
                compiled
                    .selection_range(columns, range)
                    .map(|selected| (start, selected))
            })?;
            let mut selected = Vec::new();
            for (offset, chunk) in chunks {
                selected.extend(chunk.into_iter().map(|i| i + offset));
            }
            return Ok(selected);
        }
        compiled.selection_range(columns, 0..num_rows)
    }

    /// The pre-compilation selection-vector evaluator — the executable
    /// reference for [`Expr::selection_vector`], interpreting the AST per
    /// morsel chunk.
    pub fn selection_vector_interpreted(
        &self,
        schema: &Schema,
        columns: &[Arc<Column>],
        num_rows: usize,
    ) -> EngineResult<Vec<usize>> {
        let config = crate::parallel::exec_config();
        if config.should_parallelize(num_rows) && !matches!(self, Expr::Literal(_)) {
            let referenced = self.referenced_column_mask(schema, columns.len());
            let chunks = crate::parallel::try_map_morsels(&config, num_rows, |range| {
                let chunk_columns = chunk_input_columns(columns, &referenced, range.clone());
                self.selection_vector_interpreted(schema, &chunk_columns, range.len())
                    .map(|selected| (range.start, selected))
            })?;
            let mut selected = Vec::new();
            for (offset, chunk) in chunks {
                selected.extend(chunk.into_iter().map(|i| i + offset));
            }
            return Ok(selected);
        }
        match self.evaluate_batch_inner(schema, columns, num_rows)? {
            Batch::Scalar(v) => Ok(if v.as_bool() == Some(true) {
                (0..num_rows).collect()
            } else {
                Vec::new()
            }),
            Batch::Col(col) => {
                let mut selected = Vec::new();
                if let Some((data, validity)) = col.as_bools() {
                    for (i, &b) in data.iter().enumerate() {
                        if b && validity.is_valid(i) {
                            selected.push(i);
                        }
                    }
                } else {
                    for i in 0..num_rows {
                        if col.get(i).as_bool() == Some(true) {
                            selected.push(i);
                        }
                    }
                }
                Ok(selected)
            }
        }
    }

    /// Evaluate the expression at one row, reading cells directly from the
    /// columns. Used for constructs whose branches must stay lazy per row
    /// (CASE) and as the general per-row fallback.
    pub fn evaluate_at(
        &self,
        schema: &Schema,
        columns: &[Arc<Column>],
        i: usize,
    ) -> EngineResult<Value> {
        match self {
            Expr::Literal(value) => Ok(value.clone()),
            Expr::Column(name) => {
                let idx = schema.resolve(name)?;
                Ok(columns[idx].get(i))
            }
            Expr::Binary { left, op, right } => {
                let lhs = left.evaluate_at(schema, columns, i)?;
                let rhs = right.evaluate_at(schema, columns, i)?;
                eval_binary(&lhs, *op, &rhs)
            }
            Expr::Unary { op, operand } => {
                let value = operand.evaluate_at(schema, columns, i)?;
                eval_unary(*op, &value)
            }
            Expr::Func { func, args } => {
                let mut values = Vec::with_capacity(args.len());
                for arg in args {
                    values.push(arg.evaluate_at(schema, columns, i)?);
                }
                eval_func(*func, &values)
            }
            Expr::InList {
                expr,
                list,
                negated,
            } => {
                let needle = expr.evaluate_at(schema, columns, i)?;
                if needle.is_null() {
                    return Ok(Value::Null);
                }
                let mut found = false;
                for item in list {
                    let candidate = item.evaluate_at(schema, columns, i)?;
                    if needle.sql_eq(&candidate) == Some(true) {
                        found = true;
                        break;
                    }
                }
                Ok(Value::Bool(found != *negated))
            }
            Expr::Case {
                branches,
                otherwise,
            } => {
                for (cond, result) in branches {
                    if cond.evaluate_at(schema, columns, i)?.as_bool() == Some(true) {
                        return result.evaluate_at(schema, columns, i);
                    }
                }
                match otherwise {
                    Some(e) => e.evaluate_at(schema, columns, i),
                    None => Ok(Value::Null),
                }
            }
        }
    }

    fn evaluate_batch_inner(
        &self,
        schema: &Schema,
        columns: &[Arc<Column>],
        num_rows: usize,
    ) -> EngineResult<Batch> {
        match self {
            Expr::Literal(value) => Ok(Batch::Scalar(value.clone())),
            Expr::Column(name) => {
                let idx = schema.resolve(name)?;
                Ok(Batch::Col(Arc::clone(&columns[idx])))
            }
            Expr::Binary { left, op, right } => {
                let lhs = left.evaluate_batch_inner(schema, columns, num_rows)?;
                let rhs = right.evaluate_batch_inner(schema, columns, num_rows)?;
                eval_binary_batch(&lhs, *op, &rhs, num_rows)
            }
            Expr::Unary { op, operand } => {
                match operand.evaluate_batch_inner(schema, columns, num_rows)? {
                    Batch::Scalar(v) => Ok(Batch::Scalar(eval_unary(*op, &v)?)),
                    Batch::Col(col) => {
                        let mut out = Vec::with_capacity(num_rows);
                        for i in 0..num_rows {
                            out.push(eval_unary(*op, &col.get(i))?);
                        }
                        Ok(Batch::Col(Arc::new(Column::from_values(out))))
                    }
                }
            }
            Expr::Func { func, args } => {
                let mut batches = Vec::with_capacity(args.len());
                for arg in args {
                    batches.push(arg.evaluate_batch_inner(schema, columns, num_rows)?);
                }
                if batches.iter().all(|b| matches!(b, Batch::Scalar(_))) {
                    let argv: Vec<Value> = batches.iter().map(|b| b.get(0)).collect();
                    return Ok(Batch::Scalar(eval_func(*func, &argv)?));
                }
                let mut out = Vec::with_capacity(num_rows);
                let mut argv: Vec<Value> = Vec::with_capacity(batches.len());
                for i in 0..num_rows {
                    argv.clear();
                    for batch in &batches {
                        argv.push(batch.get(i));
                    }
                    out.push(eval_func(*func, &argv)?);
                }
                Ok(Batch::Col(Arc::new(Column::from_values(out))))
            }
            // IN-list items and CASE branches must only be evaluated as far
            // as each row needs them (the row engine short-circuits on the
            // first match / taken branch; a vectorized evaluation of every
            // item could raise errors — e.g. division by zero — the row
            // engine never would), so both stay per-row.
            Expr::InList { .. } | Expr::Case { .. } => {
                let mut out = Vec::with_capacity(num_rows);
                for i in 0..num_rows {
                    out.push(self.evaluate_at(schema, columns, i)?);
                }
                Ok(Batch::Col(Arc::new(Column::from_values(out))))
            }
        }
    }

    /// Best-effort static output type of the expression against a schema.
    pub fn output_type(&self, schema: &Schema) -> DataType {
        match self {
            Expr::Literal(v) => v.data_type(),
            Expr::Column(name) => schema
                .resolve(name)
                .ok()
                .and_then(|idx| schema.field(idx).map(|f| f.data_type))
                .unwrap_or(DataType::Null),
            Expr::Binary { left, op, right } => match op {
                BinaryOp::Add | BinaryOp::Sub | BinaryOp::Mul | BinaryOp::Mod => {
                    let lt = left.output_type(schema);
                    let rt = right.output_type(schema);
                    if lt == DataType::Float || rt == DataType::Float {
                        DataType::Float
                    } else {
                        DataType::Int
                    }
                }
                BinaryOp::Div => DataType::Float,
                _ => DataType::Bool,
            },
            Expr::Unary { op, operand } => match op {
                UnaryOp::Neg => operand.output_type(schema),
                _ => DataType::Bool,
            },
            Expr::Func { func, args } => match func {
                ScalarFunc::Length
                | ScalarFunc::CastInt
                | ScalarFunc::ExtractYear
                | ScalarFunc::Century => DataType::Int,
                ScalarFunc::CastFloat | ScalarFunc::Round | ScalarFunc::Abs => DataType::Float,
                ScalarFunc::Coalesce | ScalarFunc::Min2 | ScalarFunc::Max2 => args
                    .first()
                    .map(|a| a.output_type(schema))
                    .unwrap_or(DataType::Null),
                _ => DataType::Str,
            },
            Expr::InList { .. } => DataType::Bool,
            Expr::Case {
                branches,
                otherwise,
            } => branches
                .first()
                .map(|(_, r)| r.output_type(schema))
                .or_else(|| otherwise.as_ref().map(|e| e.output_type(schema)))
                .unwrap_or(DataType::Null),
        }
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Literal(v) => match v {
                Value::Str(s) => write!(f, "'{s}'"),
                other => write!(f, "{other}"),
            },
            Expr::Column(name) => f.write_str(name),
            Expr::Binary { left, op, right } => write!(f, "({left} {op} {right})"),
            Expr::Unary { op, operand } => match op {
                UnaryOp::Neg => write!(f, "(-{operand})"),
                UnaryOp::Not => write!(f, "(NOT {operand})"),
                UnaryOp::IsNull => write!(f, "({operand} IS NULL)"),
                UnaryOp::IsNotNull => write!(f, "({operand} IS NOT NULL)"),
            },
            Expr::Func { func, args } => {
                let rendered: Vec<String> = args.iter().map(|a| a.to_string()).collect();
                write!(f, "{}({})", func.name(), rendered.join(", "))
            }
            Expr::InList {
                expr,
                list,
                negated,
            } => {
                let rendered: Vec<String> = list.iter().map(|a| a.to_string()).collect();
                let keyword = if *negated { "NOT IN" } else { "IN" };
                write!(f, "({expr} {keyword} ({}))", rendered.join(", "))
            }
            Expr::Case {
                branches,
                otherwise,
            } => {
                write!(f, "CASE")?;
                for (cond, result) in branches {
                    write!(f, " WHEN {cond} THEN {result}")?;
                }
                if let Some(e) = otherwise {
                    write!(f, " ELSE {e}")?;
                }
                write!(f, " END")
            }
        }
    }
}

/// Slice the input columns an expression actually reads down to `range`,
/// substituting a shared all-NULL placeholder for untouched positions so the
/// chunk keeps the schema's column arity without copying unread data.
fn chunk_input_columns(
    columns: &[Arc<Column>],
    referenced: &[bool],
    range: std::ops::Range<usize>,
) -> Vec<Arc<Column>> {
    let placeholder = Arc::new(Column::Null(range.len()));
    columns
        .iter()
        .zip(referenced)
        .map(|(column, &read)| {
            if read {
                Arc::new(column.slice(range.clone()))
            } else {
                Arc::clone(&placeholder)
            }
        })
        .collect()
}

/// The result of evaluating a sub-expression over a batch of rows: either a
/// whole column or a scalar broadcast across every row (literals and
/// constant-folded sub-trees). Keeping scalars unexpanded lets the binary
/// kernels run column-vs-constant loops without allocating literal columns.
enum Batch {
    /// A per-row column.
    Col(Arc<Column>),
    /// One value standing for every row.
    Scalar(Value),
}

impl Batch {
    #[inline]
    fn get(&self, i: usize) -> Value {
        match self {
            Batch::Col(col) => col.get(i),
            Batch::Scalar(v) => v.clone(),
        }
    }

    fn materialize(self, num_rows: usize) -> Arc<Column> {
        match self {
            Batch::Col(col) => col,
            Batch::Scalar(v) => Arc::new(Column::from_values(vec![v; num_rows])),
        }
    }
}

/// Evaluate a binary operation over two batches. Delegates to the shared
/// offset-aware kernel [`compile::eval_binary_view`] (typed vector loops for
/// numeric arithmetic/comparisons and string comparisons/LIKE — including
/// code-native dictionary kernels — with an element-wise [`eval_binary`]
/// fallback), viewing each batch at offset zero.
fn eval_binary_batch(
    lhs: &Batch,
    op: BinaryOp,
    rhs: &Batch,
    num_rows: usize,
) -> EngineResult<Batch> {
    compile::eval_binary_view(&batch_view(lhs), op, &batch_view(rhs), num_rows)
}

fn batch_view(batch: &Batch) -> compile::ValuesView<'_> {
    match batch {
        Batch::Col(col) => compile::ValuesView::View {
            col: col.as_ref(),
            offset: 0,
        },
        Batch::Scalar(v) => compile::ValuesView::Scalar(v),
    }
}

#[inline]
fn int_cmp_result(op: BinaryOp, ordering: std::cmp::Ordering) -> bool {
    use std::cmp::Ordering::*;
    match op {
        BinaryOp::Lt => ordering == Less,
        BinaryOp::LtEq => ordering != Greater,
        BinaryOp::Gt => ordering == Greater,
        BinaryOp::GtEq => ordering != Less,
        BinaryOp::Eq => ordering == Equal,
        BinaryOp::NotEq => ordering != Equal,
        _ => unreachable!("not a comparison"),
    }
}

fn numeric_pair(lhs: &Value, rhs: &Value, context: &str) -> EngineResult<(f64, f64, bool)> {
    let both_int = matches!(lhs, Value::Int(_)) && matches!(rhs, Value::Int(_));
    let l = lhs.as_float().ok_or_else(|| {
        EngineError::type_mismatch(context, "a numeric value", lhs.data_type().prompt_name())
    })?;
    let r = rhs.as_float().ok_or_else(|| {
        EngineError::type_mismatch(context, "a numeric value", rhs.data_type().prompt_name())
    })?;
    Ok((l, r, both_int))
}

/// Evaluate a binary operation on two already-computed values.
pub fn eval_binary(lhs: &Value, op: BinaryOp, rhs: &Value) -> EngineResult<Value> {
    use BinaryOp::*;
    // Three-valued logic for AND/OR must be handled before the NULL shortcut.
    match op {
        And => {
            let l = lhs.as_bool();
            let r = rhs.as_bool();
            return Ok(match (l, r) {
                (Some(false), _) | (_, Some(false)) => Value::Bool(false),
                (Some(true), Some(true)) => Value::Bool(true),
                _ => Value::Null,
            });
        }
        Or => {
            let l = lhs.as_bool();
            let r = rhs.as_bool();
            return Ok(match (l, r) {
                (Some(true), _) | (_, Some(true)) => Value::Bool(true),
                (Some(false), Some(false)) => Value::Bool(false),
                _ => Value::Null,
            });
        }
        _ => {}
    }
    if lhs.is_null() || rhs.is_null() {
        return Ok(Value::Null);
    }
    match op {
        Add | Sub | Mul | Mod => {
            let (l, r, both_int) = numeric_pair(lhs, rhs, &format!("operator '{op}'"))?;
            let result = match op {
                Add => l + r,
                Sub => l - r,
                Mul => l * r,
                Mod => {
                    if r == 0.0 {
                        return Err(EngineError::DivisionByZero);
                    }
                    l % r
                }
                _ => unreachable!(),
            };
            Ok(if both_int {
                Value::Int(result as i64)
            } else {
                Value::Float(result)
            })
        }
        Div => {
            let (l, r, both_int) = numeric_pair(lhs, rhs, "operator '/'")?;
            if r == 0.0 {
                return Err(EngineError::DivisionByZero);
            }
            let result = l / r;
            Ok(if both_int && result.fract() == 0.0 {
                Value::Int(result as i64)
            } else {
                Value::Float(result)
            })
        }
        Eq => Ok(Value::from(lhs.sql_eq(rhs))),
        NotEq => Ok(Value::from(lhs.sql_eq(rhs).map(|b| !b))),
        Lt | LtEq | Gt | GtEq => {
            // Strings compare lexicographically, numbers numerically; mixing
            // a string with a number is a type error the planner should see.
            let comparable = (lhs.data_type().is_numeric() && rhs.data_type().is_numeric())
                || lhs.data_type() == rhs.data_type();
            if !comparable {
                return Err(EngineError::type_mismatch(
                    format!("comparison '{op}'"),
                    lhs.data_type().prompt_name(),
                    rhs.data_type().prompt_name(),
                ));
            }
            let ordering = lhs.total_cmp(rhs);
            let result = match op {
                Lt => ordering == std::cmp::Ordering::Less,
                LtEq => ordering != std::cmp::Ordering::Greater,
                Gt => ordering == std::cmp::Ordering::Greater,
                GtEq => ordering != std::cmp::Ordering::Less,
                _ => unreachable!(),
            };
            Ok(Value::Bool(result))
        }
        Like => {
            let haystack = lhs.as_str().ok_or_else(|| {
                EngineError::type_mismatch("LIKE", "str", lhs.data_type().prompt_name())
            })?;
            let pattern = rhs.as_str().ok_or_else(|| {
                EngineError::type_mismatch("LIKE pattern", "str", rhs.data_type().prompt_name())
            })?;
            Ok(Value::Bool(like_match(haystack, pattern)))
        }
        And | Or => unreachable!("handled above"),
    }
}

/// Case-insensitive SQL LIKE matching with `%` (any run) and `_` (single char).
pub fn like_match(haystack: &str, pattern: &str) -> bool {
    let h: Vec<char> = haystack.to_lowercase().chars().collect();
    let p: Vec<char> = pattern.to_lowercase().chars().collect();
    like_match_inner(&h, &p)
}

fn like_match_inner(h: &[char], p: &[char]) -> bool {
    if p.is_empty() {
        return h.is_empty();
    }
    match p[0] {
        '%' => {
            // Try to match the rest of the pattern at every position.
            (0..=h.len()).any(|i| like_match_inner(&h[i..], &p[1..]))
        }
        '_' => !h.is_empty() && like_match_inner(&h[1..], &p[1..]),
        c => !h.is_empty() && h[0] == c && like_match_inner(&h[1..], &p[1..]),
    }
}

fn eval_unary(op: UnaryOp, value: &Value) -> EngineResult<Value> {
    match op {
        UnaryOp::Neg => match value {
            Value::Int(i) => Ok(Value::Int(-i)),
            Value::Float(f) => Ok(Value::Float(-f)),
            Value::Null => Ok(Value::Null),
            other => Err(EngineError::type_mismatch(
                "unary '-'",
                "a numeric value",
                other.data_type().prompt_name(),
            )),
        },
        UnaryOp::Not => match value.as_bool() {
            Some(b) => Ok(Value::Bool(!b)),
            None if value.is_null() => Ok(Value::Null),
            None => Err(EngineError::type_mismatch(
                "NOT",
                "bool",
                value.data_type().prompt_name(),
            )),
        },
        UnaryOp::IsNull => Ok(Value::Bool(value.is_null())),
        UnaryOp::IsNotNull => Ok(Value::Bool(!value.is_null())),
    }
}

/// Extract the first 4-digit year appearing in a string.
pub fn extract_year_from_text(text: &str) -> Option<i32> {
    let bytes: Vec<char> = text.chars().collect();
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i].is_ascii_digit() {
            let start = i;
            while i < bytes.len() && bytes[i].is_ascii_digit() {
                i += 1;
            }
            let run: String = bytes[start..i].iter().collect();
            if run.len() == 4 {
                if let Ok(year) = run.parse::<i32>() {
                    if (500..=2100).contains(&year) {
                        return Some(year);
                    }
                }
            }
        } else {
            i += 1;
        }
    }
    None
}

fn eval_func(func: ScalarFunc, args: &[Value]) -> EngineResult<Value> {
    let arity_error = |expected: &str| {
        Err(EngineError::InvalidFunctionCall {
            function: func.name().to_string(),
            message: format!("expected {expected} argument(s), got {}", args.len()),
        })
    };
    match func {
        ScalarFunc::Lower => match args {
            [v] => Ok(v
                .as_str()
                .map(|s| Value::str(s.to_lowercase()))
                .unwrap_or(Value::Null)),
            _ => arity_error("1"),
        },
        ScalarFunc::Upper => match args {
            [v] => Ok(v
                .as_str()
                .map(|s| Value::str(s.to_uppercase()))
                .unwrap_or(Value::Null)),
            _ => arity_error("1"),
        },
        ScalarFunc::Length => match args {
            [v] => Ok(v
                .as_str()
                .map(|s| Value::Int(s.chars().count() as i64))
                .unwrap_or(Value::Null)),
            _ => arity_error("1"),
        },
        ScalarFunc::Substr => match args {
            [v, start, len] => {
                let s = match v.as_str() {
                    Some(s) => s,
                    None => return Ok(Value::Null),
                };
                let start = start.as_int().unwrap_or(1).max(1) as usize - 1;
                let len = len.as_int().unwrap_or(0).max(0) as usize;
                let sub: String = s.chars().skip(start).take(len).collect();
                Ok(Value::str(sub))
            }
            [v, start] => {
                let s = match v.as_str() {
                    Some(s) => s,
                    None => return Ok(Value::Null),
                };
                let start = start.as_int().unwrap_or(1).max(1) as usize - 1;
                let sub: String = s.chars().skip(start).collect();
                Ok(Value::str(sub))
            }
            _ => arity_error("2 or 3"),
        },
        ScalarFunc::CastInt => match args {
            [v] => Ok(match v {
                Value::Int(i) => Value::Int(*i),
                Value::Float(f) => Value::Int(*f as i64),
                Value::Bool(b) => Value::Int(i64::from(*b)),
                Value::Str(s) => {
                    let trimmed = s.trim();
                    match trimmed.parse::<i64>() {
                        Ok(i) => Value::Int(i),
                        Err(_) => match trimmed.parse::<f64>() {
                            Ok(f) => Value::Int(f as i64),
                            Err(_) => extract_year_from_text(trimmed)
                                .map(|y| Value::Int(y as i64))
                                .unwrap_or(Value::Null),
                        },
                    }
                }
                Value::Date(d) => Value::Int(d.year as i64),
                _ => Value::Null,
            }),
            _ => arity_error("1"),
        },
        ScalarFunc::CastFloat => match args {
            [v] => Ok(match v {
                Value::Int(i) => Value::Float(*i as f64),
                Value::Float(f) => Value::Float(*f),
                Value::Str(s) => s
                    .trim()
                    .parse::<f64>()
                    .map(Value::Float)
                    .unwrap_or(Value::Null),
                _ => Value::Null,
            }),
            _ => arity_error("1"),
        },
        ScalarFunc::CastStr => match args {
            [v] => Ok(if v.is_null() {
                Value::Null
            } else {
                Value::str(v.to_string())
            }),
            _ => arity_error("1"),
        },
        ScalarFunc::Concat => {
            let mut out = String::new();
            for v in args {
                if !v.is_null() {
                    out.push_str(&v.to_string());
                }
            }
            Ok(Value::str(out))
        }
        ScalarFunc::Abs => match args {
            [Value::Int(i)] => Ok(Value::Int(i.abs())),
            [Value::Float(f)] => Ok(Value::Float(f.abs())),
            [Value::Null] => Ok(Value::Null),
            [other] => Err(EngineError::type_mismatch(
                "ABS",
                "a numeric value",
                other.data_type().prompt_name(),
            )),
            _ => arity_error("1"),
        },
        ScalarFunc::Round => match args {
            [v] => Ok(v
                .as_float()
                .map(|f| Value::Float(f.round()))
                .unwrap_or(Value::Null)),
            [v, digits] => {
                let d = digits.as_int().unwrap_or(0);
                let factor = 10f64.powi(d as i32);
                Ok(v.as_float()
                    .map(|f| Value::Float((f * factor).round() / factor))
                    .unwrap_or(Value::Null))
            }
            _ => arity_error("1 or 2"),
        },
        ScalarFunc::Coalesce => {
            for v in args {
                if !v.is_null() {
                    return Ok(v.clone());
                }
            }
            Ok(Value::Null)
        }
        ScalarFunc::ExtractYear => match args {
            [v] => Ok(match v {
                Value::Date(d) => Value::Int(d.year as i64),
                Value::Int(i) => Value::Int(*i),
                Value::Str(s) => extract_year_from_text(s)
                    .map(|y| Value::Int(y as i64))
                    .unwrap_or(Value::Null),
                _ => Value::Null,
            }),
            _ => arity_error("1"),
        },
        ScalarFunc::Century => match args {
            [v] => {
                let year = match v {
                    Value::Date(d) => Some(d.year),
                    Value::Int(i) => Some(*i as i32),
                    Value::Float(f) => Some(*f as i32),
                    Value::Str(s) => extract_year_from_text(s),
                    _ => None,
                };
                Ok(year
                    .map(|y| Value::Int(DateValue::from_year(y).century() as i64))
                    .unwrap_or(Value::Null))
            }
            _ => arity_error("1"),
        },
        ScalarFunc::Trim => match args {
            [v] => Ok(v
                .as_str()
                .map(|s| Value::str(s.trim()))
                .unwrap_or(Value::Null)),
            _ => arity_error("1"),
        },
        ScalarFunc::Replace => match args {
            [v, from, to] => {
                let (s, from, to) = match (v.as_str(), from.as_str(), to.as_str()) {
                    (Some(s), Some(f), Some(t)) => (s, f, t),
                    _ => return Ok(Value::Null),
                };
                Ok(Value::str(s.replace(from, to)))
            }
            _ => arity_error("3"),
        },
        ScalarFunc::Min2 => match args {
            [a, b] => Ok(if a.is_null() {
                b.clone()
            } else if b.is_null() {
                a.clone()
            } else if a.total_cmp(b) == std::cmp::Ordering::Greater {
                b.clone()
            } else {
                a.clone()
            }),
            _ => arity_error("2"),
        },
        ScalarFunc::Max2 => match args {
            [a, b] => Ok(if a.is_null() {
                b.clone()
            } else if b.is_null() {
                a.clone()
            } else if a.total_cmp(b) == std::cmp::Ordering::Less {
                b.clone()
            } else {
                a.clone()
            }),
            _ => arity_error("2"),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::Row;
    use crate::value::DataType;

    fn schema() -> Schema {
        Schema::from_pairs(&[
            ("title", DataType::Str),
            ("year", DataType::Int),
            ("score", DataType::Float),
        ])
    }

    fn row() -> Row {
        vec![Value::str("Madonna"), Value::Int(1889), Value::Float(0.75)]
    }

    /// Evaluate an expression over a one-column Int64 table via the batch
    /// path, returning the value for row 0.
    fn batch_eval_one(expr: &Expr, x: i64) -> EngineResult<Value> {
        let schema = Schema::from_pairs(&[("x", DataType::Int)]);
        let columns = vec![Arc::new(Column::from_values(vec![Value::Int(x)]))];
        expr.evaluate_batch(&schema, &columns, 1).map(|c| c.get(0))
    }

    #[test]
    fn in_list_short_circuits_in_batch_evaluation() {
        // The row engine stops at the first matching list item; an erroring
        // later item (1/0) must not abort the batch path either.
        let expr = Expr::InList {
            expr: Box::new(Expr::col("x")),
            list: vec![
                Expr::lit(7),
                Expr::binary(Expr::lit(1), BinaryOp::Div, Expr::lit(0)),
            ],
            negated: false,
        };
        assert_eq!(batch_eval_one(&expr, 7).unwrap(), Value::Bool(true));
        // A non-matching needle still reaches — and reports — the error,
        // exactly like the row path.
        assert!(batch_eval_one(&expr, 8).is_err());
    }

    #[test]
    fn batch_int_arithmetic_matches_row_path_at_extremes() {
        // The row engine routes int arithmetic through f64 (saturating,
        // 53-bit precision); the typed kernel must agree exactly.
        let schema = Schema::from_pairs(&[("x", DataType::Int)]);
        let expr = Expr::binary(Expr::col("x"), BinaryOp::Add, Expr::col("x"));
        for x in [2i64.pow(62), i64::MAX, 2i64.pow(53) + 1, 3, -5] {
            let row_result = expr.evaluate(&schema, &[Value::Int(x)]).unwrap();
            assert_eq!(batch_eval_one(&expr, x).unwrap(), row_result, "x = {x}");
        }
    }

    #[test]
    fn column_and_literal_evaluation() {
        let s = schema();
        let r = row();
        assert_eq!(
            Expr::col("year").evaluate(&s, &r).unwrap(),
            Value::Int(1889)
        );
        assert_eq!(Expr::lit(5).evaluate(&s, &r).unwrap(), Value::Int(5));
        assert!(Expr::col("missing").evaluate(&s, &r).is_err());
    }

    #[test]
    fn arithmetic_preserves_intness() {
        let s = schema();
        let r = row();
        let expr = Expr::binary(Expr::col("year"), BinaryOp::Add, Expr::lit(1));
        assert_eq!(expr.evaluate(&s, &r).unwrap(), Value::Int(1890));
        let expr = Expr::binary(Expr::col("year"), BinaryOp::Div, Expr::lit(100));
        assert_eq!(expr.evaluate(&s, &r).unwrap(), Value::Float(18.89));
        let expr = Expr::binary(Expr::lit(10), BinaryOp::Div, Expr::lit(2));
        assert_eq!(expr.evaluate(&s, &r).unwrap(), Value::Int(5));
    }

    #[test]
    fn division_by_zero_is_an_error() {
        let s = schema();
        let r = row();
        let expr = Expr::binary(Expr::lit(1), BinaryOp::Div, Expr::lit(0));
        assert_eq!(expr.evaluate(&s, &r), Err(EngineError::DivisionByZero));
    }

    #[test]
    fn comparisons_and_three_valued_logic() {
        let s = schema();
        let r = row();
        let gt = Expr::binary(Expr::col("year"), BinaryOp::Gt, Expr::lit(1800));
        assert_eq!(gt.evaluate(&s, &r).unwrap(), Value::Bool(true));
        let and_null = Expr::binary(Expr::lit(Value::Null), BinaryOp::And, Expr::lit(false));
        assert_eq!(and_null.evaluate(&s, &r).unwrap(), Value::Bool(false));
        let or_null = Expr::binary(Expr::lit(Value::Null), BinaryOp::Or, Expr::lit(true));
        assert_eq!(or_null.evaluate(&s, &r).unwrap(), Value::Bool(true));
        let and_unknown = Expr::binary(Expr::lit(Value::Null), BinaryOp::And, Expr::lit(true));
        assert_eq!(and_unknown.evaluate(&s, &r).unwrap(), Value::Null);
    }

    #[test]
    fn comparing_string_with_number_is_a_type_error() {
        let s = schema();
        let r = row();
        let expr = Expr::binary(Expr::col("title"), BinaryOp::Gt, Expr::lit(5));
        assert!(matches!(
            expr.evaluate(&s, &r),
            Err(EngineError::TypeMismatch { .. })
        ));
    }

    #[test]
    fn like_matching() {
        assert!(like_match("Madonna and Child", "%madonna%"));
        assert!(like_match("Madonna", "M_donna"));
        assert!(!like_match("Irises", "%madonna%"));
        assert!(like_match("", "%"));
        assert!(!like_match("abc", ""));
    }

    #[test]
    fn in_list_and_negation() {
        let s = schema();
        let r = row();
        let expr = Expr::InList {
            expr: Box::new(Expr::col("title")),
            list: vec![Expr::lit("Madonna"), Expr::lit("Irises")],
            negated: false,
        };
        assert_eq!(expr.evaluate(&s, &r).unwrap(), Value::Bool(true));
        let expr = Expr::InList {
            expr: Box::new(Expr::col("title")),
            list: vec![Expr::lit("Scream")],
            negated: true,
        };
        assert_eq!(expr.evaluate(&s, &r).unwrap(), Value::Bool(true));
    }

    #[test]
    fn case_expression_branches() {
        let s = schema();
        let r = row();
        let expr = Expr::Case {
            branches: vec![(
                Expr::binary(Expr::col("year"), BinaryOp::Lt, Expr::lit(1500)),
                Expr::lit("old"),
            )],
            otherwise: Some(Box::new(Expr::lit("new"))),
        };
        assert_eq!(expr.evaluate(&s, &r).unwrap(), Value::str("new"));
    }

    #[test]
    fn scalar_functions_cover_casts_and_strings() {
        let s = Schema::empty();
        let r: Row = vec![];
        let call = |func, args: Vec<Expr>| Expr::Func { func, args }.evaluate(&s, &r).unwrap();
        assert_eq!(
            call(ScalarFunc::Lower, vec![Expr::lit("ABC")]),
            Value::str("abc")
        );
        assert_eq!(
            call(ScalarFunc::Length, vec![Expr::lit("abcd")]),
            Value::Int(4)
        );
        assert_eq!(
            call(
                ScalarFunc::Substr,
                vec![Expr::lit("1889-01-05"), Expr::lit(1), Expr::lit(4)]
            ),
            Value::str("1889")
        );
        assert_eq!(
            call(ScalarFunc::CastInt, vec![Expr::lit("1889")]),
            Value::Int(1889)
        );
        assert_eq!(
            call(ScalarFunc::CastInt, vec![Expr::lit("c. 1503")]),
            Value::Int(1503)
        );
        assert_eq!(
            call(ScalarFunc::Century, vec![Expr::lit("1889-01-05")]),
            Value::Int(19)
        );
        assert_eq!(
            call(
                ScalarFunc::ExtractYear,
                vec![Expr::lit("painted in 1480, restored")]
            ),
            Value::Int(1480)
        );
        assert_eq!(
            call(
                ScalarFunc::Concat,
                vec![Expr::lit("a"), Expr::lit("-"), Expr::lit("b")]
            ),
            Value::str("a-b")
        );
        assert_eq!(
            call(
                ScalarFunc::Coalesce,
                vec![Expr::lit(Value::Null), Expr::lit(7)]
            ),
            Value::Int(7)
        );
        assert_eq!(
            call(
                ScalarFunc::Replace,
                vec![Expr::lit("a-b"), Expr::lit("-"), Expr::lit("+")]
            ),
            Value::str("a+b")
        );
        assert_eq!(
            call(ScalarFunc::Max2, vec![Expr::lit(3), Expr::lit(9)]),
            Value::Int(9)
        );
    }

    #[test]
    fn func_lookup_by_name_is_case_insensitive() {
        assert_eq!(ScalarFunc::from_name("lower"), Some(ScalarFunc::Lower));
        assert_eq!(ScalarFunc::from_name("CENTURY"), Some(ScalarFunc::Century));
        assert_eq!(ScalarFunc::from_name("nope"), None);
    }

    #[test]
    fn referenced_columns_are_collected_once() {
        let expr = Expr::binary(
            Expr::col("year"),
            BinaryOp::Add,
            Expr::binary(Expr::col("year"), BinaryOp::Mul, Expr::col("score")),
        );
        assert_eq!(expr.referenced_columns(), vec!["year", "score"]);
    }

    #[test]
    fn output_types_are_inferred() {
        let s = schema();
        assert_eq!(Expr::col("year").output_type(&s), DataType::Int);
        assert_eq!(
            Expr::binary(Expr::col("year"), BinaryOp::Gt, Expr::lit(3)).output_type(&s),
            DataType::Bool
        );
        assert_eq!(
            Expr::Func {
                func: ScalarFunc::Century,
                args: vec![Expr::col("title")]
            }
            .output_type(&s),
            DataType::Int
        );
    }

    #[test]
    fn display_round_trips_reasonably() {
        let expr = Expr::binary(Expr::col("year"), BinaryOp::GtEq, Expr::lit(1800));
        assert_eq!(expr.to_string(), "(year >= 1800)");
        let expr = Expr::Func {
            func: ScalarFunc::Century,
            args: vec![Expr::col("inception")],
        };
        assert_eq!(expr.to_string(), "CENTURY(inception)");
    }

    #[test]
    fn unary_operators() {
        let s = schema();
        let r = row();
        let neg = Expr::Unary {
            op: UnaryOp::Neg,
            operand: Box::new(Expr::col("year")),
        };
        assert_eq!(neg.evaluate(&s, &r).unwrap(), Value::Int(-1889));
        let is_null = Expr::Unary {
            op: UnaryOp::IsNull,
            operand: Box::new(Expr::lit(Value::Null)),
        };
        assert_eq!(is_null.evaluate(&s, &r).unwrap(), Value::Bool(true));
        let not = Expr::Unary {
            op: UnaryOp::Not,
            operand: Box::new(Expr::lit(true)),
        };
        assert_eq!(not.evaluate(&s, &r).unwrap(), Value::Bool(false));
    }
}
