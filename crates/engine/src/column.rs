//! Typed, immutable columns with validity bitmaps.
//!
//! A [`Column`] is the unit of storage in the columnar [`Table`](crate::table::Table)
//! layout: one contiguous, typed vector per table column plus a [`Bitmap`]
//! marking which slots hold non-NULL values. Columns are shared between tables
//! behind `Arc`, so projections, catalog lookups, and the intermediate results
//! of the interleaved planner never deep-copy cell data.
//!
//! The engine is dynamically typed (the SQLite heritage described in
//! [`value`](crate::value)), so a column whose cells do not share one runtime
//! type degrades gracefully to the [`Column::Mixed`] representation instead of
//! failing: correctness first, the typed fast paths kick in whenever the data
//! allows it.

use crate::value::{DataType, DateValue, Value};
use std::sync::Arc;

/// A validity bitmap: bit `i` is set iff slot `i` holds a non-NULL value.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Bitmap {
    words: Vec<u64>,
    len: usize,
    unset: usize,
}

impl Bitmap {
    /// An all-valid bitmap of the given length.
    pub fn all_valid(len: usize) -> Self {
        let mut words = vec![u64::MAX; len.div_ceil(64)];
        // Keep the bits beyond `len` zero so the derived equality agrees with
        // bitmaps built bit-by-bit via `push`.
        if !len.is_multiple_of(64) {
            if let Some(last) = words.last_mut() {
                *last = u64::MAX >> (64 - len % 64);
            }
        }
        Bitmap {
            words,
            len,
            unset: 0,
        }
    }

    /// An empty bitmap to push validity bits into.
    pub fn new() -> Self {
        Bitmap::default()
    }

    /// Append one validity bit.
    pub fn push(&mut self, valid: bool) {
        let word = self.len / 64;
        if word == self.words.len() {
            self.words.push(0);
        }
        if valid {
            self.words[word] |= 1 << (self.len % 64);
        } else {
            self.unset += 1;
        }
        self.len += 1;
    }

    /// Whether slot `i` is valid (non-NULL).
    #[inline]
    pub fn is_valid(&self, i: usize) -> bool {
        debug_assert!(i < self.len);
        self.words[i / 64] & (1 << (i % 64)) != 0
    }

    /// Number of slots.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the bitmap is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of valid (non-NULL) slots.
    pub fn count_valid(&self) -> usize {
        self.len - self.unset
    }

    /// Whether every slot is valid — lets kernels skip NULL checks entirely.
    pub fn is_all_valid(&self) -> bool {
        self.unset == 0
    }

    /// The validity bits of `range`, as a new bitmap.
    pub fn slice(&self, range: std::ops::Range<usize>) -> Bitmap {
        if self.is_all_valid() {
            return Bitmap::all_valid(range.len());
        }
        let mut out = Bitmap::new();
        for i in range {
            out.push(self.is_valid(i));
        }
        out
    }

    /// Gather the bits at `indices` into a new bitmap.
    pub fn take(&self, indices: &[usize]) -> Bitmap {
        if self.is_all_valid() {
            return Bitmap::all_valid(indices.len());
        }
        let mut out = Bitmap::new();
        for &i in indices {
            out.push(self.is_valid(i));
        }
        out
    }
}

/// An immutable, typed column of values.
///
/// String-like variants store `Arc<str>` payloads, so gathering and sharing
/// them bumps reference counts instead of copying characters.
#[derive(Debug, Clone, PartialEq)]
pub enum Column {
    /// Booleans.
    Bool(Vec<bool>, Bitmap),
    /// 64-bit integers.
    Int64(Vec<i64>, Bitmap),
    /// 64-bit floats.
    Float64(Vec<f64>, Bitmap),
    /// UTF-8 strings.
    Utf8(Vec<Arc<str>>, Bitmap),
    /// Calendar dates.
    Date(Vec<DateValue>, Bitmap),
    /// Image references (keys into an image store).
    Image(Vec<Arc<str>>, Bitmap),
    /// Inline text documents.
    Text(Vec<Arc<str>>, Bitmap),
    /// Dictionary-encoded UTF-8 strings: `codes[i]` indexes into the shared,
    /// duplicate-free `dict` entry table. Built at table ingest by
    /// [`crate::dict::encode_column`] for low-cardinality string columns;
    /// behaves exactly like [`Column::Utf8`] at the [`Value`] level while the
    /// operator fast paths work on the integer codes directly.
    Dict {
        /// Per-row entry indices (invalid slots hold 0, masked by `bitmap`).
        codes: Vec<u32>,
        /// The shared entry table, in first-appearance order.
        dict: Arc<Vec<Arc<str>>>,
        /// Validity bitmap.
        bitmap: Bitmap,
    },
    /// An all-NULL column of the given length.
    Null(usize),
    /// Heterogeneously typed cells — the dynamic-typing escape hatch.
    Mixed(Vec<Value>),
}

impl Column {
    /// An empty column of the representation matching `data_type`.
    pub fn empty(data_type: DataType) -> Column {
        match data_type {
            DataType::Bool => Column::Bool(Vec::new(), Bitmap::new()),
            DataType::Int => Column::Int64(Vec::new(), Bitmap::new()),
            DataType::Float => Column::Float64(Vec::new(), Bitmap::new()),
            DataType::Str => Column::Utf8(Vec::new(), Bitmap::new()),
            DataType::Date => Column::Date(Vec::new(), Bitmap::new()),
            DataType::Image => Column::Image(Vec::new(), Bitmap::new()),
            DataType::Text => Column::Text(Vec::new(), Bitmap::new()),
            DataType::Null => Column::Null(0),
        }
    }

    /// Pack a vector of dynamically typed values into the tightest column
    /// representation: a typed vector if all non-NULL values share one runtime
    /// type, [`Column::Null`] if everything is NULL, [`Column::Mixed`] otherwise.
    pub fn from_values(values: Vec<Value>) -> Column {
        let mut tag: Option<DataType> = None;
        for v in &values {
            if v.is_null() {
                continue;
            }
            match tag {
                None => tag = Some(v.data_type()),
                Some(t) if t == v.data_type() => {}
                Some(_) => return Column::Mixed(values),
            }
        }
        let Some(tag) = tag else {
            return Column::Null(values.len());
        };
        let mut builder = ColumnBuilder::with_capacity(tag, values.len());
        for v in values {
            builder.push(v);
        }
        builder.finish()
    }

    /// Number of slots.
    pub fn len(&self) -> usize {
        match self {
            Column::Bool(v, _) => v.len(),
            Column::Int64(v, _) => v.len(),
            Column::Float64(v, _) => v.len(),
            Column::Utf8(v, _) | Column::Image(v, _) | Column::Text(v, _) => v.len(),
            Column::Date(v, _) => v.len(),
            Column::Dict { codes, .. } => codes.len(),
            Column::Null(n) => *n,
            Column::Mixed(v) => v.len(),
        }
    }

    /// Whether the column has no slots.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The storage type of the column ([`DataType::Null`] for all-NULL and
    /// mixed columns, whose runtime types vary per cell).
    pub fn data_type(&self) -> DataType {
        match self {
            Column::Bool(..) => DataType::Bool,
            Column::Int64(..) => DataType::Int,
            Column::Float64(..) => DataType::Float,
            Column::Utf8(..) | Column::Dict { .. } => DataType::Str,
            Column::Date(..) => DataType::Date,
            Column::Image(..) => DataType::Image,
            Column::Text(..) => DataType::Text,
            Column::Null(_) | Column::Mixed(_) => DataType::Null,
        }
    }

    /// Whether slot `i` holds a non-NULL value.
    #[inline]
    pub fn is_valid(&self, i: usize) -> bool {
        match self {
            Column::Bool(_, b)
            | Column::Int64(_, b)
            | Column::Float64(_, b)
            | Column::Utf8(_, b)
            | Column::Date(_, b)
            | Column::Image(_, b)
            | Column::Text(_, b) => b.is_valid(i),
            Column::Dict { bitmap, .. } => bitmap.is_valid(i),
            Column::Null(_) => false,
            Column::Mixed(v) => !v[i].is_null(),
        }
    }

    /// Materialize the value at slot `i`. String payloads are `Arc`-shared,
    /// so this is cheap for every variant.
    #[inline]
    pub fn get(&self, i: usize) -> Value {
        match self {
            Column::Bool(v, b) => {
                if b.is_valid(i) {
                    Value::Bool(v[i])
                } else {
                    Value::Null
                }
            }
            Column::Int64(v, b) => {
                if b.is_valid(i) {
                    Value::Int(v[i])
                } else {
                    Value::Null
                }
            }
            Column::Float64(v, b) => {
                if b.is_valid(i) {
                    Value::Float(v[i])
                } else {
                    Value::Null
                }
            }
            Column::Utf8(v, b) => {
                if b.is_valid(i) {
                    Value::Str(Arc::clone(&v[i]))
                } else {
                    Value::Null
                }
            }
            Column::Date(v, b) => {
                if b.is_valid(i) {
                    Value::Date(v[i].clone())
                } else {
                    Value::Null
                }
            }
            Column::Image(v, b) => {
                if b.is_valid(i) {
                    Value::Image(Arc::clone(&v[i]))
                } else {
                    Value::Null
                }
            }
            Column::Text(v, b) => {
                if b.is_valid(i) {
                    Value::Text(Arc::clone(&v[i]))
                } else {
                    Value::Null
                }
            }
            Column::Dict {
                codes,
                dict,
                bitmap,
            } => {
                if bitmap.is_valid(i) {
                    Value::Str(Arc::clone(&dict[codes[i] as usize]))
                } else {
                    Value::Null
                }
            }
            Column::Null(_) => Value::Null,
            Column::Mixed(v) => v[i].clone(),
        }
    }

    /// Iterate over the column's values (materialized one at a time).
    pub fn iter(&self) -> impl Iterator<Item = Value> + '_ {
        (0..self.len()).map(move |i| self.get(i))
    }

    /// Materialize every value.
    pub fn to_values(&self) -> Vec<Value> {
        self.iter().collect()
    }

    /// Typed view of an integer column: `(data, validity)`.
    pub fn as_int64(&self) -> Option<(&[i64], &Bitmap)> {
        match self {
            Column::Int64(v, b) => Some((v, b)),
            _ => None,
        }
    }

    /// Typed view of a float column: `(data, validity)`.
    pub fn as_float64(&self) -> Option<(&[f64], &Bitmap)> {
        match self {
            Column::Float64(v, b) => Some((v, b)),
            _ => None,
        }
    }

    /// Typed view of a boolean column: `(data, validity)`.
    pub fn as_bools(&self) -> Option<(&[bool], &Bitmap)> {
        match self {
            Column::Bool(v, b) => Some((v, b)),
            _ => None,
        }
    }

    /// Typed view of a string column: `(data, validity)`.
    pub fn as_utf8(&self) -> Option<(&[Arc<str>], &Bitmap)> {
        match self {
            Column::Utf8(v, b) => Some((v, b)),
            _ => None,
        }
    }

    /// Typed view of a dictionary-encoded string column:
    /// `(codes, entries, validity)`.
    #[allow(clippy::type_complexity)]
    pub fn as_dict(&self) -> Option<(&[u32], &Arc<Vec<Arc<str>>>, &Bitmap)> {
        match self {
            Column::Dict {
                codes,
                dict,
                bitmap,
            } => Some((codes, dict, bitmap)),
            _ => None,
        }
    }

    /// Copy the slots of `range` into a new column, **preserving the storage
    /// representation** (a sliced `Mixed` column stays `Mixed`, placeholder
    /// values in invalid slots are copied verbatim). Preserving the
    /// representation matters for the morsel-driven parallel kernels: every
    /// chunk must take exactly the code path the full column would, so that
    /// reassembled results are byte-identical to sequential execution.
    pub fn slice(&self, range: std::ops::Range<usize>) -> Column {
        /// Every `(data, bitmap)` representation slices through this one
        /// helper, so no variant can drift from the
        /// representation-preservation contract.
        fn sliced<T: Clone>(
            data: &[T],
            bitmap: &Bitmap,
            range: std::ops::Range<usize>,
        ) -> (Vec<T>, Bitmap) {
            (data[range.clone()].to_vec(), bitmap.slice(range))
        }
        match self {
            Column::Bool(v, b) => {
                let (v, b) = sliced(v, b, range);
                Column::Bool(v, b)
            }
            Column::Int64(v, b) => {
                let (v, b) = sliced(v, b, range);
                Column::Int64(v, b)
            }
            Column::Float64(v, b) => {
                let (v, b) = sliced(v, b, range);
                Column::Float64(v, b)
            }
            Column::Utf8(v, b) => {
                let (v, b) = sliced(v, b, range);
                Column::Utf8(v, b)
            }
            Column::Date(v, b) => {
                let (v, b) = sliced(v, b, range);
                Column::Date(v, b)
            }
            Column::Image(v, b) => {
                let (v, b) = sliced(v, b, range);
                Column::Image(v, b)
            }
            Column::Text(v, b) => {
                let (v, b) = sliced(v, b, range);
                Column::Text(v, b)
            }
            Column::Dict {
                codes,
                dict,
                bitmap,
            } => {
                let (codes, bitmap) = sliced(codes, bitmap, range);
                Column::Dict {
                    codes,
                    dict: Arc::clone(dict),
                    bitmap,
                }
            }
            Column::Null(_) => Column::Null(range.len()),
            Column::Mixed(v) => Column::Mixed(v[range].to_vec()),
        }
    }

    /// Gather the slots at `indices` into a new column (the "take" kernel).
    pub fn take(&self, indices: &[usize]) -> Column {
        match self {
            Column::Bool(v, b) => {
                Column::Bool(indices.iter().map(|&i| v[i]).collect(), b.take(indices))
            }
            Column::Int64(v, b) => {
                Column::Int64(indices.iter().map(|&i| v[i]).collect(), b.take(indices))
            }
            Column::Float64(v, b) => {
                Column::Float64(indices.iter().map(|&i| v[i]).collect(), b.take(indices))
            }
            Column::Utf8(v, b) => Column::Utf8(
                indices.iter().map(|&i| Arc::clone(&v[i])).collect(),
                b.take(indices),
            ),
            Column::Date(v, b) => Column::Date(
                indices.iter().map(|&i| v[i].clone()).collect(),
                b.take(indices),
            ),
            Column::Image(v, b) => Column::Image(
                indices.iter().map(|&i| Arc::clone(&v[i])).collect(),
                b.take(indices),
            ),
            Column::Text(v, b) => Column::Text(
                indices.iter().map(|&i| Arc::clone(&v[i])).collect(),
                b.take(indices),
            ),
            Column::Dict {
                codes,
                dict,
                bitmap,
            } => Column::Dict {
                codes: indices.iter().map(|&i| codes[i]).collect(),
                dict: Arc::clone(dict),
                bitmap: bitmap.take(indices),
            },
            Column::Null(_) => Column::Null(indices.len()),
            Column::Mixed(v) => {
                Column::from_values(indices.iter().map(|&i| v[i].clone()).collect())
            }
        }
    }

    /// Gather with optional indices: `None` slots become NULL. Used by the
    /// probe side of left-outer joins. Typed columns stay typed (the padded
    /// slots are marked invalid); only mixed columns round-trip through
    /// [`Value`]s.
    pub fn take_opt(&self, indices: &[Option<usize>]) -> Column {
        macro_rules! take_opt_typed {
            ($variant:ident, $data:ident, $bitmap:ident, $null:expr, $copy:expr) => {{
                let mut out = Vec::with_capacity(indices.len());
                let mut validity = Bitmap::new();
                for idx in indices {
                    match idx {
                        Some(i) => {
                            #[allow(clippy::redundant_closure_call)]
                            out.push($copy(&$data[*i]));
                            validity.push($bitmap.is_valid(*i));
                        }
                        None => {
                            out.push($null);
                            validity.push(false);
                        }
                    }
                }
                Column::$variant(out, validity)
            }};
        }
        match self {
            Column::Bool(v, b) => take_opt_typed!(Bool, v, b, false, |x: &bool| *x),
            Column::Int64(v, b) => take_opt_typed!(Int64, v, b, 0, |x: &i64| *x),
            Column::Float64(v, b) => take_opt_typed!(Float64, v, b, 0.0, |x: &f64| *x),
            Column::Utf8(v, b) => {
                take_opt_typed!(Utf8, v, b, Arc::from(""), |x: &Arc<str>| Arc::clone(x))
            }
            Column::Date(v, b) => {
                take_opt_typed!(Date, v, b, DateValue::from_year(0), |x: &DateValue| x
                    .clone())
            }
            Column::Image(v, b) => {
                take_opt_typed!(Image, v, b, Arc::from(""), |x: &Arc<str>| Arc::clone(x))
            }
            Column::Text(v, b) => {
                take_opt_typed!(Text, v, b, Arc::from(""), |x: &Arc<str>| Arc::clone(x))
            }
            Column::Dict {
                codes,
                dict,
                bitmap,
            } => {
                let mut out = Vec::with_capacity(indices.len());
                let mut validity = Bitmap::new();
                for idx in indices {
                    match idx {
                        Some(i) => {
                            out.push(codes[*i]);
                            validity.push(bitmap.is_valid(*i));
                        }
                        None => {
                            out.push(0);
                            validity.push(false);
                        }
                    }
                }
                Column::Dict {
                    codes: out,
                    dict: Arc::clone(dict),
                    bitmap: validity,
                }
            }
            Column::Null(_) => Column::Null(indices.len()),
            Column::Mixed(v) => Column::from_values(
                indices
                    .iter()
                    .map(|i| match i {
                        Some(i) => v[*i].clone(),
                        None => Value::Null,
                    })
                    .collect(),
            ),
        }
    }

    /// Concatenate columns end to end (UNION ALL). Parts sharing one typed
    /// representation are appended vector-to-vector; mixed-representation
    /// inputs fall back to value-level packing.
    pub fn concat(parts: &[&Column]) -> Column {
        let total: usize = parts.iter().map(|c| c.len()).sum();
        macro_rules! concat_typed {
            ($variant:ident) => {{
                let mut data = Vec::with_capacity(total);
                let mut validity = Bitmap::new();
                let mut ok = true;
                for part in parts {
                    match part {
                        Column::$variant(v, b) => {
                            data.extend(v.iter().cloned());
                            for i in 0..v.len() {
                                validity.push(b.is_valid(i));
                            }
                        }
                        _ => {
                            ok = false;
                            break;
                        }
                    }
                }
                if ok {
                    return Column::$variant(data, validity);
                }
            }};
        }
        if let Some(first) = parts.first() {
            match first {
                Column::Bool(..) => concat_typed!(Bool),
                Column::Int64(..) => concat_typed!(Int64),
                Column::Float64(..) => concat_typed!(Float64),
                Column::Utf8(..) => concat_typed!(Utf8),
                Column::Date(..) => concat_typed!(Date),
                Column::Image(..) => concat_typed!(Image),
                Column::Text(..) => concat_typed!(Text),
                Column::Dict { dict: first, .. } => {
                    // Parts sharing one entry table (morsel slices of the same
                    // column) stay dictionary-encoded; mismatched dictionaries
                    // fall through to value-level packing (plain strings), the
                    // same result a plain-Utf8 concat would produce.
                    let shared = parts.iter().all(
                        |p| matches!(p, Column::Dict { dict, .. } if Arc::ptr_eq(dict, first)),
                    );
                    if shared {
                        let mut codes = Vec::with_capacity(total);
                        let mut validity = Bitmap::new();
                        for part in parts {
                            if let Column::Dict {
                                codes: c, bitmap, ..
                            } = part
                            {
                                codes.extend_from_slice(c);
                                for i in 0..c.len() {
                                    validity.push(bitmap.is_valid(i));
                                }
                            }
                        }
                        return Column::Dict {
                            codes,
                            dict: Arc::clone(first),
                            bitmap: validity,
                        };
                    }
                }
                _ => {}
            }
        }
        let mut values = Vec::with_capacity(total);
        for part in parts {
            values.extend(part.iter());
        }
        Column::from_values(values)
    }

    /// Append the stable grouping key of slot `i` to `out`. Delegates to the
    /// same per-type writers as [`Value::write_group_key`] (one encoding, two
    /// entry points) while avoiding a [`Value`] materialization for typed
    /// slots.
    pub fn write_group_key(&self, i: usize, out: &mut String) {
        use crate::value::key_writers;
        match self {
            Column::Int64(v, b) if b.is_valid(i) => key_writers::int(v[i], out),
            Column::Float64(v, b) if b.is_valid(i) => key_writers::float(v[i], out),
            Column::Bool(v, b) if b.is_valid(i) => key_writers::bool(v[i], out),
            Column::Utf8(v, b) if b.is_valid(i) => key_writers::str("s:", &v[i], out),
            Column::Dict {
                codes,
                dict,
                bitmap,
            } if bitmap.is_valid(i) => key_writers::str("s:", &dict[codes[i] as usize], out),
            Column::Image(v, b) if b.is_valid(i) => key_writers::str("img:", &v[i], out),
            Column::Text(v, b) if b.is_valid(i) => key_writers::str("t:", &v[i], out),
            Column::Date(v, b) if b.is_valid(i) => key_writers::date(&v[i], out),
            Column::Mixed(v) => v[i].write_group_key(out),
            _ => key_writers::null(out),
        }
    }
}

/// Incremental builder packing dynamically typed values into a typed column.
///
/// The builder starts out targeting `declared` (the schema type) and silently
/// degrades to the mixed representation the first time a value of another
/// runtime type is pushed — mirroring the dynamic typing of the row engine it
/// replaces.
#[derive(Debug, Clone)]
pub struct ColumnBuilder {
    declared: DataType,
    typed: TypedBuffer,
    validity: Bitmap,
    /// Set once a value did not fit the declared representation.
    mixed: Option<Vec<Value>>,
}

#[derive(Debug, Clone)]
enum TypedBuffer {
    Bool(Vec<bool>),
    Int64(Vec<i64>),
    Float64(Vec<f64>),
    Utf8(Vec<Arc<str>>),
    Date(Vec<DateValue>),
    Image(Vec<Arc<str>>),
    Text(Vec<Arc<str>>),
    /// Declared NULL/unknown: first non-null value decides, until then only
    /// NULLs are buffered (their count is the bitmap length).
    Pending,
}

impl ColumnBuilder {
    /// Start building a column whose schema type is `declared`.
    pub fn new(declared: DataType) -> Self {
        ColumnBuilder::with_capacity(declared, 0)
    }

    /// Start building with a capacity hint.
    pub fn with_capacity(declared: DataType, capacity: usize) -> Self {
        let typed = match declared {
            DataType::Bool => TypedBuffer::Bool(Vec::with_capacity(capacity)),
            DataType::Int => TypedBuffer::Int64(Vec::with_capacity(capacity)),
            DataType::Float => TypedBuffer::Float64(Vec::with_capacity(capacity)),
            DataType::Str => TypedBuffer::Utf8(Vec::with_capacity(capacity)),
            DataType::Date => TypedBuffer::Date(Vec::with_capacity(capacity)),
            DataType::Image => TypedBuffer::Image(Vec::with_capacity(capacity)),
            DataType::Text => TypedBuffer::Text(Vec::with_capacity(capacity)),
            DataType::Null => TypedBuffer::Pending,
        };
        ColumnBuilder {
            declared,
            typed,
            validity: Bitmap::new(),
            mixed: None,
        }
    }

    /// Number of values pushed so far.
    pub fn len(&self) -> usize {
        match &self.mixed {
            Some(values) => values.len(),
            None => self.validity.len(),
        }
    }

    /// Whether nothing has been pushed yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Append one value.
    pub fn push(&mut self, value: Value) {
        if let Some(values) = &mut self.mixed {
            values.push(value);
            return;
        }
        if value.is_null() {
            self.push_null_typed();
            return;
        }
        let fits = match (&mut self.typed, &value) {
            (TypedBuffer::Bool(v), Value::Bool(b)) => {
                v.push(*b);
                true
            }
            (TypedBuffer::Int64(v), Value::Int(i)) => {
                v.push(*i);
                true
            }
            (TypedBuffer::Float64(v), Value::Float(f)) => {
                v.push(*f);
                true
            }
            (TypedBuffer::Utf8(v), Value::Str(s)) => {
                v.push(Arc::clone(s));
                true
            }
            (TypedBuffer::Date(v), Value::Date(d)) => {
                v.push(d.clone());
                true
            }
            (TypedBuffer::Image(v), Value::Image(s)) => {
                v.push(Arc::clone(s));
                true
            }
            (TypedBuffer::Text(v), Value::Text(s)) => {
                v.push(Arc::clone(s));
                true
            }
            (TypedBuffer::Pending, _) => {
                // First non-null value decides the representation; re-dispatch.
                let nulls = self.validity.len();
                let mut fresh = ColumnBuilder::with_capacity(value.data_type(), nulls + 1);
                for _ in 0..nulls {
                    fresh.push_null_typed();
                }
                *self = fresh;
                self.push(value);
                return;
            }
            _ => false,
        };
        if fits {
            self.validity.push(true);
        } else {
            // Degrade: replay what was typed as values, then append.
            let mut values = self.finish_typed().to_values();
            values.push(value);
            self.mixed = Some(values);
        }
    }

    fn push_null_typed(&mut self) {
        match &mut self.typed {
            TypedBuffer::Bool(v) => v.push(false),
            TypedBuffer::Int64(v) => v.push(0),
            TypedBuffer::Float64(v) => v.push(0.0),
            TypedBuffer::Utf8(v) | TypedBuffer::Image(v) | TypedBuffer::Text(v) => {
                v.push(Arc::from(""))
            }
            TypedBuffer::Date(v) => v.push(DateValue::from_year(0)),
            TypedBuffer::Pending => {}
        }
        self.validity.push(false);
    }

    fn finish_typed(&mut self) -> Column {
        let validity = std::mem::take(&mut self.validity);
        match std::mem::replace(&mut self.typed, TypedBuffer::Pending) {
            TypedBuffer::Bool(v) => Column::Bool(v, validity),
            TypedBuffer::Int64(v) => Column::Int64(v, validity),
            TypedBuffer::Float64(v) => Column::Float64(v, validity),
            TypedBuffer::Utf8(v) => Column::Utf8(v, validity),
            TypedBuffer::Date(v) => Column::Date(v, validity),
            TypedBuffer::Image(v) => Column::Image(v, validity),
            TypedBuffer::Text(v) => Column::Text(v, validity),
            TypedBuffer::Pending => Column::Null(validity.len()),
        }
    }

    /// Finish building.
    pub fn finish(mut self) -> Column {
        match self.mixed.take() {
            Some(values) => Column::from_values(values),
            None => self.finish_typed(),
        }
    }

    /// The declared schema type this builder was created with.
    pub fn declared_type(&self) -> DataType {
        self.declared
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bitmap_tracks_validity_and_counts() {
        let mut bitmap = Bitmap::new();
        for i in 0..130 {
            bitmap.push(i % 3 != 0);
        }
        assert_eq!(bitmap.len(), 130);
        assert!(!bitmap.is_valid(0));
        assert!(bitmap.is_valid(1));
        assert!(!bitmap.is_valid(129));
        assert_eq!(bitmap.count_valid(), 130 - 44);
        assert!(!bitmap.is_all_valid());
        assert!(Bitmap::all_valid(70).is_valid(69));
    }

    #[test]
    fn from_values_picks_typed_representations() {
        let col = Column::from_values(vec![Value::Int(1), Value::Null, Value::Int(3)]);
        assert!(matches!(col, Column::Int64(..)));
        assert_eq!(col.get(0), Value::Int(1));
        assert!(col.get(1).is_null());
        assert_eq!(col.len(), 3);

        let col = Column::from_values(vec![Value::Null, Value::Null]);
        assert!(matches!(col, Column::Null(2)));

        let col = Column::from_values(vec![Value::Int(1), Value::str("x")]);
        assert!(matches!(col, Column::Mixed(_)));
        assert_eq!(col.get(1), Value::str("x"));
    }

    #[test]
    fn builder_degrades_to_mixed_on_type_conflict() {
        let mut b = ColumnBuilder::new(DataType::Int);
        b.push(Value::Int(1));
        b.push(Value::str("not a number"));
        b.push(Value::Int(2));
        let col = b.finish();
        assert!(matches!(col, Column::Mixed(_)));
        assert_eq!(col.get(0), Value::Int(1));
        assert_eq!(col.get(1), Value::str("not a number"));
    }

    #[test]
    fn pending_builder_infers_type_from_first_value() {
        let mut b = ColumnBuilder::new(DataType::Null);
        b.push(Value::Null);
        b.push(Value::Float(2.5));
        let col = b.finish();
        assert!(matches!(col, Column::Float64(..)));
        assert!(col.get(0).is_null());
        assert_eq!(col.get(1), Value::Float(2.5));
    }

    #[test]
    fn take_gathers_and_preserves_nulls() {
        let col = Column::from_values(vec![
            Value::str("a"),
            Value::Null,
            Value::str("c"),
            Value::str("d"),
        ]);
        let taken = col.take(&[3, 1, 0]);
        assert_eq!(taken.get(0), Value::str("d"));
        assert!(taken.get(1).is_null());
        assert_eq!(taken.get(2), Value::str("a"));
    }

    #[test]
    fn take_opt_pads_missing_with_nulls() {
        let col = Column::from_values(vec![Value::Int(10), Value::Int(20)]);
        let taken = col.take_opt(&[Some(1), None, Some(0)]);
        assert_eq!(taken.get(0), Value::Int(20));
        assert!(taken.get(1).is_null());
        assert_eq!(taken.get(2), Value::Int(10));
    }

    #[test]
    fn concat_joins_columns() {
        let a = Column::from_values(vec![Value::Int(1)]);
        let b = Column::from_values(vec![Value::Int(2), Value::Null]);
        let joined = Column::concat(&[&a, &b]);
        assert_eq!(joined.len(), 3);
        assert_eq!(joined.get(1), Value::Int(2));
        assert!(joined.get(2).is_null());
    }

    #[test]
    fn all_valid_bitmap_equals_pushed_bitmap() {
        // The constructor must not set bits beyond `len`, or the derived
        // PartialEq would distinguish logically identical bitmaps.
        let constructed = Bitmap::all_valid(70);
        let mut pushed = Bitmap::new();
        for _ in 0..70 {
            pushed.push(true);
        }
        assert_eq!(constructed, pushed);
        // And a take-produced all-valid column equals a builder-built one.
        let built = Column::from_values((0..70).map(Value::Int).collect());
        let taken = built.take(&(0..70).collect::<Vec<_>>());
        assert_eq!(built, taken);
    }

    #[test]
    fn concat_keeps_typed_representation() {
        let a = Column::from_values(vec![Value::Int(1), Value::Null]);
        let b = Column::from_values(vec![Value::Int(3)]);
        let joined = Column::concat(&[&a, &b]);
        assert!(matches!(joined, Column::Int64(..)));
        assert_eq!(joined.get(0), Value::Int(1));
        assert!(joined.get(1).is_null());
        assert_eq!(joined.get(2), Value::Int(3));
    }

    #[test]
    fn take_opt_keeps_typed_representation() {
        let col = Column::from_values(vec![Value::str("a"), Value::str("b")]);
        let taken = col.take_opt(&[Some(1), None, Some(0)]);
        assert!(matches!(taken, Column::Utf8(..)));
        assert_eq!(taken.get(0), Value::str("b"));
        assert!(taken.get(1).is_null());
        assert_eq!(taken.get(2), Value::str("a"));
    }

    /// One column per storage representation, each with a NULL slot so the
    /// bitmaps are exercised too.
    fn every_representation() -> Vec<Column> {
        let dict = {
            let values: Vec<Value> = (0..24)
                .map(|i| match i % 4 {
                    0 => Value::str("red"),
                    1 => Value::str("green"),
                    2 => Value::Null,
                    _ => Value::str("blue"),
                })
                .collect();
            crate::dict::encode_column(&Column::from_values(values)).expect("encodes")
        };
        vec![
            Column::from_values(
                (0..24)
                    .map(|i| {
                        if i == 3 {
                            Value::Null
                        } else {
                            Value::Bool(i % 2 == 0)
                        }
                    })
                    .collect(),
            ),
            Column::from_values(
                (0..24)
                    .map(|i| if i == 3 { Value::Null } else { Value::Int(i) })
                    .collect(),
            ),
            Column::from_values(
                (0..24)
                    .map(|i| {
                        if i == 3 {
                            Value::Null
                        } else {
                            Value::Float(i as f64)
                        }
                    })
                    .collect(),
            ),
            Column::from_values(
                (0..24)
                    .map(|i| {
                        if i == 3 {
                            Value::Null
                        } else {
                            Value::str(format!("s{i}"))
                        }
                    })
                    .collect(),
            ),
            Column::from_values(
                (0..24)
                    .map(|i| {
                        if i == 3 {
                            Value::Null
                        } else {
                            Value::Date(DateValue::from_year(1900 + i))
                        }
                    })
                    .collect(),
            ),
            Column::from_values(
                (0..24)
                    .map(|i| {
                        if i == 3 {
                            Value::Null
                        } else {
                            Value::image(format!("img/{i}"))
                        }
                    })
                    .collect(),
            ),
            Column::from_values(
                (0..24)
                    .map(|i| {
                        if i == 3 {
                            Value::Null
                        } else {
                            Value::text(format!("doc {i}"))
                        }
                    })
                    .collect(),
            ),
            dict,
            Column::Null(24),
            Column::Mixed(
                (0..24)
                    .map(|i| {
                        if i % 2 == 0 {
                            Value::Int(i)
                        } else {
                            Value::str("x")
                        }
                    })
                    .collect(),
            ),
        ]
    }

    #[test]
    fn slice_preserves_every_representation() {
        for col in every_representation() {
            let sliced = col.slice(2..19);
            assert_eq!(
                std::mem::discriminant(&sliced),
                std::mem::discriminant(&col),
                "slice changed the representation of {col:?}"
            );
            assert_eq!(sliced.len(), 17);
            for i in 0..17 {
                assert_eq!(sliced.get(i), col.get(i + 2));
                assert_eq!(sliced.is_valid(i), col.is_valid(i + 2));
            }
            // Dictionary slices must share the entry table, not copy it.
            if let (Column::Dict { dict: original, .. }, Column::Dict { dict: shared, .. }) =
                (&col, &sliced)
            {
                assert!(Arc::ptr_eq(original, shared));
            }
        }
    }

    #[test]
    fn take_and_take_opt_preserve_dict_representation() {
        let Some(dict_col) = every_representation()
            .into_iter()
            .find(|c| matches!(c, Column::Dict { .. }))
        else {
            panic!("expected a dict column");
        };
        let taken = dict_col.take(&[5, 1, 2, 0]);
        assert!(matches!(taken, Column::Dict { .. }));
        assert_eq!(taken.get(0), dict_col.get(5));
        assert!(!taken.is_valid(2));

        let padded = dict_col.take_opt(&[Some(1), None, Some(0)]);
        assert!(matches!(padded, Column::Dict { .. }));
        assert_eq!(padded.get(0), dict_col.get(1));
        assert!(padded.get(1).is_null());
        assert_eq!(padded.get(2), dict_col.get(0));
    }

    #[test]
    fn concat_keeps_shared_dictionaries_and_unifies_mismatched_ones() {
        let Some(dict_col) = every_representation()
            .into_iter()
            .find(|c| matches!(c, Column::Dict { .. }))
        else {
            panic!("expected a dict column");
        };
        // Morsel shape: slices of one column share the entry table.
        let (a, b) = (dict_col.slice(0..10), dict_col.slice(10..24));
        let joined = Column::concat(&[&a, &b]);
        assert!(matches!(joined, Column::Dict { .. }));
        for i in 0..24 {
            assert_eq!(joined.get(i), dict_col.get(i));
        }
        // Mismatched entry tables degrade to plain strings with the same
        // values.
        let other = crate::dict::encode_column(&Column::from_values(
            (0..24)
                .map(|i| Value::str(["blue", "red"][i % 2]))
                .collect(),
        ))
        .expect("encodes");
        let mixed = Column::concat(&[&dict_col, &other]);
        assert!(matches!(mixed, Column::Utf8(..)));
        assert_eq!(mixed.len(), 48);
        assert_eq!(mixed.get(0), dict_col.get(0));
        assert_eq!(mixed.get(24), other.get(0));
    }

    #[test]
    fn group_keys_match_value_group_keys() {
        let values = vec![
            Value::Int(2),
            Value::Float(2.0),
            Value::str("x"),
            Value::Null,
            Value::Bool(true),
        ];
        let col = Column::Mixed(values.clone());
        for (i, v) in values.iter().enumerate() {
            let mut key = String::new();
            col.write_group_key(i, &mut key);
            assert_eq!(key, v.group_key());
        }
        // Typed columns agree with the Value-level keys too.
        let ints = Column::from_values(vec![Value::Int(7), Value::Null]);
        let mut key = String::new();
        ints.write_group_key(0, &mut key);
        assert_eq!(key, Value::Int(7).group_key());
        key.clear();
        ints.write_group_key(1, &mut key);
        assert_eq!(key, Value::Null.group_key());
    }
}
