//! Recursive-descent parser for the SELECT subset.

use super::ast::{JoinClause, OrderItem, SelectItem, SelectStatement, TableRef};
use super::lexer::{tokenize, Token};
use crate::error::{EngineError, EngineResult};
use crate::expr::{BinaryOp, Expr, ScalarFunc, UnaryOp};
use crate::ops::{AggFunc, SortOrder};
use crate::value::Value;

/// Parse a full SELECT statement. Non-SELECT statements are rejected.
pub fn parse_select(sql: &str) -> EngineResult<SelectStatement> {
    let tokens = tokenize(sql)?;
    let mut parser = Parser { tokens, pos: 0 };
    let statement = parser.parse_statement()?;
    parser.expect_end()?;
    Ok(statement)
}

/// Parse a standalone scalar expression (used by the transform DSL and by the
/// physical Selection operator, whose argument is a bare condition such as
/// `p.madonna_depicted = 'yes'`).
pub fn parse_expression(text: &str) -> EngineResult<Expr> {
    let tokens = tokenize(text)?;
    let mut parser = Parser { tokens, pos: 0 };
    let expr = parser.parse_expr()?;
    parser.expect_end()?;
    Ok(expr)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Option<Token> {
        let token = self.tokens.get(self.pos).cloned();
        if token.is_some() {
            self.pos += 1;
        }
        token
    }

    fn peek_keyword(&self, kw: &str) -> bool {
        self.peek().map(|t| t.is_keyword(kw)).unwrap_or(false)
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.peek_keyword(kw) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_keyword(&mut self, kw: &str) -> EngineResult<()> {
        if self.eat_keyword(kw) {
            Ok(())
        } else {
            Err(EngineError::sql(format!(
                "expected keyword {kw}, found {:?}",
                self.peek()
            )))
        }
    }

    fn eat_token(&mut self, token: &Token) -> bool {
        if self.peek() == Some(token) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_token(&mut self, token: &Token, what: &str) -> EngineResult<()> {
        if self.eat_token(token) {
            Ok(())
        } else {
            Err(EngineError::sql(format!(
                "expected {what}, found {:?}",
                self.peek()
            )))
        }
    }

    fn expect_end(&mut self) -> EngineResult<()> {
        // Allow a trailing semicolon.
        self.eat_token(&Token::Semicolon);
        match self.peek() {
            None => Ok(()),
            Some(other) => Err(EngineError::sql(format!(
                "unexpected trailing token {other:?}"
            ))),
        }
    }

    fn parse_statement(&mut self) -> EngineResult<SelectStatement> {
        // Security guard (§5 of the paper): only SELECT is executable.
        if let Some(keyword) = self.peek().and_then(Token::keyword) {
            const FORBIDDEN: &[&str] = &[
                "UPDATE", "INSERT", "DELETE", "DROP", "ALTER", "CREATE", "TRUNCATE", "REPLACE",
                "ATTACH", "PRAGMA", "GRANT", "REVOKE",
            ];
            if FORBIDDEN.contains(&keyword.as_str()) {
                return Err(EngineError::ForbiddenStatement { statement: keyword });
            }
        }
        self.expect_keyword("SELECT")?;
        let distinct = self.eat_keyword("DISTINCT");

        let mut items = vec![self.parse_select_item()?];
        while self.eat_token(&Token::Comma) {
            items.push(self.parse_select_item()?);
        }

        self.expect_keyword("FROM")?;
        let from = self.parse_table_ref()?;

        let mut joins = Vec::new();
        loop {
            // Accept `JOIN`, `INNER JOIN`, and `LEFT [OUTER] JOIN` (all treated
            // as inner joins except LEFT).
            if self.eat_keyword("JOIN") || {
                if self.peek_keyword("INNER") {
                    self.pos += 1;
                    self.expect_keyword("JOIN")?;
                    true
                } else {
                    false
                }
            } {
                let table = self.parse_table_ref()?;
                self.expect_keyword("ON")?;
                let condition = self.parse_expr()?;
                joins.push(JoinClause { table, condition });
            } else if self.peek_keyword("LEFT") {
                self.pos += 1;
                self.eat_keyword("OUTER");
                self.expect_keyword("JOIN")?;
                let table = self.parse_table_ref()?;
                self.expect_keyword("ON")?;
                let condition = self.parse_expr()?;
                // LEFT joins are recorded like inner joins; the executor treats
                // every join as inner, which is sufficient for the paper's plans.
                joins.push(JoinClause { table, condition });
            } else {
                break;
            }
        }

        let where_clause = if self.eat_keyword("WHERE") {
            Some(self.parse_expr()?)
        } else {
            None
        };

        let mut group_by = Vec::new();
        if self.eat_keyword("GROUP") {
            self.expect_keyword("BY")?;
            group_by.push(self.parse_expr()?);
            while self.eat_token(&Token::Comma) {
                group_by.push(self.parse_expr()?);
            }
        }

        let having = if self.eat_keyword("HAVING") {
            Some(self.parse_expr()?)
        } else {
            None
        };

        let mut order_by = Vec::new();
        if self.eat_keyword("ORDER") {
            self.expect_keyword("BY")?;
            loop {
                let expr = self.parse_expr()?;
                let order = if self.eat_keyword("DESC") {
                    SortOrder::Desc
                } else {
                    self.eat_keyword("ASC");
                    SortOrder::Asc
                };
                order_by.push(OrderItem { expr, order });
                if !self.eat_token(&Token::Comma) {
                    break;
                }
            }
        }

        let limit = if self.eat_keyword("LIMIT") {
            match self.next() {
                Some(Token::IntLit(n)) if n >= 0 => Some(n as usize),
                other => {
                    return Err(EngineError::sql(format!(
                        "LIMIT expects a non-negative integer, found {other:?}"
                    )))
                }
            }
        } else {
            None
        };

        Ok(SelectStatement {
            distinct,
            items,
            from,
            joins,
            where_clause,
            group_by,
            having,
            order_by,
            limit,
        })
    }

    fn parse_table_ref(&mut self) -> EngineResult<TableRef> {
        let name = match self.next() {
            Some(Token::Ident(name)) => name,
            other => {
                return Err(EngineError::sql(format!(
                    "expected a table name, found {other:?}"
                )))
            }
        };
        // Optional alias: `teams t` or `teams AS t`. Keywords that start the
        // next clause must not be swallowed as aliases.
        const CLAUSE_KEYWORDS: &[&str] = &[
            "JOIN", "INNER", "LEFT", "ON", "WHERE", "GROUP", "HAVING", "ORDER", "LIMIT", "AS",
        ];
        let alias = if self.eat_keyword("AS") {
            match self.next() {
                Some(Token::Ident(a)) => Some(a),
                other => {
                    return Err(EngineError::sql(format!(
                        "expected an alias after AS, found {other:?}"
                    )))
                }
            }
        } else if let Some(Token::Ident(candidate)) = self.peek() {
            if CLAUSE_KEYWORDS.contains(&candidate.to_ascii_uppercase().as_str()) {
                None
            } else {
                let alias = candidate.clone();
                self.pos += 1;
                Some(alias)
            }
        } else {
            None
        };
        Ok(TableRef { name, alias })
    }

    fn parse_select_item(&mut self) -> EngineResult<SelectItem> {
        if self.eat_token(&Token::Star) {
            return Ok(SelectItem::Wildcard);
        }
        // Aggregate call?
        if let Some(Token::Ident(name)) = self.peek() {
            if let Some(func) = AggFunc::from_name(name) {
                if self.tokens.get(self.pos + 1) == Some(&Token::LParen) {
                    self.pos += 2; // consume name and '('
                    let expr = if self.eat_token(&Token::Star) {
                        None
                    } else {
                        Some(self.parse_expr()?)
                    };
                    self.expect_token(&Token::RParen, "')' after aggregate argument")?;
                    let alias = self.parse_optional_alias()?;
                    return Ok(SelectItem::Aggregate { func, expr, alias });
                }
            }
        }
        let expr = self.parse_expr()?;
        let alias = self.parse_optional_alias()?;
        Ok(SelectItem::Expr { expr, alias })
    }

    fn parse_optional_alias(&mut self) -> EngineResult<Option<String>> {
        if self.eat_keyword("AS") {
            match self.next() {
                Some(Token::Ident(a)) => Ok(Some(a)),
                Some(Token::StringLit(a)) => Ok(Some(a)),
                other => Err(EngineError::sql(format!(
                    "expected an alias after AS, found {other:?}"
                ))),
            }
        } else {
            Ok(None)
        }
    }

    // Expression grammar, lowest precedence first.
    pub(super) fn parse_expr(&mut self) -> EngineResult<Expr> {
        self.parse_or()
    }

    fn parse_or(&mut self) -> EngineResult<Expr> {
        let mut left = self.parse_and()?;
        while self.eat_keyword("OR") {
            let right = self.parse_and()?;
            left = Expr::binary(left, BinaryOp::Or, right);
        }
        Ok(left)
    }

    fn parse_and(&mut self) -> EngineResult<Expr> {
        let mut left = self.parse_not()?;
        while self.eat_keyword("AND") {
            let right = self.parse_not()?;
            left = Expr::binary(left, BinaryOp::And, right);
        }
        Ok(left)
    }

    fn parse_not(&mut self) -> EngineResult<Expr> {
        if self.eat_keyword("NOT") {
            let operand = self.parse_not()?;
            return Ok(Expr::Unary {
                op: UnaryOp::Not,
                operand: Box::new(operand),
            });
        }
        self.parse_comparison()
    }

    fn parse_comparison(&mut self) -> EngineResult<Expr> {
        let left = self.parse_additive()?;

        // IS [NOT] NULL
        if self.eat_keyword("IS") {
            let negated = self.eat_keyword("NOT");
            self.expect_keyword("NULL")?;
            return Ok(Expr::Unary {
                op: if negated {
                    UnaryOp::IsNotNull
                } else {
                    UnaryOp::IsNull
                },
                operand: Box::new(left),
            });
        }

        // [NOT] IN (...) / [NOT] LIKE
        let negated = self.peek_keyword("NOT")
            && self
                .tokens
                .get(self.pos + 1)
                .map(|t| t.is_keyword("IN") || t.is_keyword("LIKE"))
                .unwrap_or(false);
        if negated {
            self.pos += 1;
        }
        if self.eat_keyword("IN") {
            self.expect_token(&Token::LParen, "'(' after IN")?;
            let mut list = vec![self.parse_expr()?];
            while self.eat_token(&Token::Comma) {
                list.push(self.parse_expr()?);
            }
            self.expect_token(&Token::RParen, "')' closing the IN list")?;
            return Ok(Expr::InList {
                expr: Box::new(left),
                list,
                negated,
            });
        }
        if self.eat_keyword("LIKE") {
            let right = self.parse_additive()?;
            let like = Expr::binary(left, BinaryOp::Like, right);
            return Ok(if negated {
                Expr::Unary {
                    op: UnaryOp::Not,
                    operand: Box::new(like),
                }
            } else {
                like
            });
        }
        if negated {
            return Err(EngineError::sql("expected IN or LIKE after NOT"));
        }

        let op = match self.peek() {
            Some(Token::Eq) => Some(BinaryOp::Eq),
            Some(Token::NotEq) => Some(BinaryOp::NotEq),
            Some(Token::Lt) => Some(BinaryOp::Lt),
            Some(Token::LtEq) => Some(BinaryOp::LtEq),
            Some(Token::Gt) => Some(BinaryOp::Gt),
            Some(Token::GtEq) => Some(BinaryOp::GtEq),
            _ => None,
        };
        if let Some(op) = op {
            self.pos += 1;
            let right = self.parse_additive()?;
            return Ok(Expr::binary(left, op, right));
        }
        Ok(left)
    }

    fn parse_additive(&mut self) -> EngineResult<Expr> {
        let mut left = self.parse_multiplicative()?;
        loop {
            let op = match self.peek() {
                Some(Token::Plus) => BinaryOp::Add,
                Some(Token::Minus) => BinaryOp::Sub,
                _ => break,
            };
            self.pos += 1;
            let right = self.parse_multiplicative()?;
            left = Expr::binary(left, op, right);
        }
        Ok(left)
    }

    fn parse_multiplicative(&mut self) -> EngineResult<Expr> {
        let mut left = self.parse_unary()?;
        loop {
            let op = match self.peek() {
                Some(Token::Star) => BinaryOp::Mul,
                Some(Token::Slash) => BinaryOp::Div,
                Some(Token::Percent) => BinaryOp::Mod,
                _ => break,
            };
            self.pos += 1;
            let right = self.parse_unary()?;
            left = Expr::binary(left, op, right);
        }
        Ok(left)
    }

    fn parse_unary(&mut self) -> EngineResult<Expr> {
        if self.eat_token(&Token::Minus) {
            let operand = self.parse_unary()?;
            return Ok(Expr::Unary {
                op: UnaryOp::Neg,
                operand: Box::new(operand),
            });
        }
        self.parse_primary()
    }

    fn parse_primary(&mut self) -> EngineResult<Expr> {
        match self.next() {
            Some(Token::IntLit(v)) => Ok(Expr::lit(v)),
            Some(Token::FloatLit(v)) => Ok(Expr::lit(v)),
            Some(Token::StringLit(v)) => Ok(Expr::lit(Value::str(v))),
            Some(Token::LParen) => {
                let expr = self.parse_expr()?;
                self.expect_token(&Token::RParen, "')'")?;
                Ok(expr)
            }
            Some(Token::Ident(name)) => {
                let upper = name.to_ascii_uppercase();
                match upper.as_str() {
                    "NULL" => return Ok(Expr::lit(Value::Null)),
                    "TRUE" => return Ok(Expr::lit(true)),
                    "FALSE" => return Ok(Expr::lit(false)),
                    "CASE" => return self.parse_case(),
                    _ => {}
                }
                // Function call?
                if self.peek() == Some(&Token::LParen) {
                    if let Some(func) = ScalarFunc::from_name(&name) {
                        self.pos += 1; // consume '('
                        let mut args = Vec::new();
                        if self.peek() != Some(&Token::RParen) {
                            args.push(self.parse_expr()?);
                            while self.eat_token(&Token::Comma) {
                                args.push(self.parse_expr()?);
                            }
                        }
                        self.expect_token(&Token::RParen, "')' closing the argument list")?;
                        return Ok(Expr::Func { func, args });
                    }
                    if AggFunc::from_name(&name).is_some() {
                        return Err(EngineError::InvalidAggregate {
                            message: format!(
                                "aggregate function {upper} is only allowed in the SELECT list"
                            ),
                        });
                    }
                    return Err(EngineError::InvalidFunctionCall {
                        function: name,
                        message: "unknown function".into(),
                    });
                }
                // Qualified column: ident '.' ident
                if self.eat_token(&Token::Dot) {
                    match self.next() {
                        Some(Token::Ident(column)) => Ok(Expr::col(format!("{name}.{column}"))),
                        Some(Token::Star) => Err(EngineError::sql(
                            "qualified wildcards (t.*) are not supported",
                        )),
                        other => Err(EngineError::sql(format!(
                            "expected a column name after '.', found {other:?}"
                        ))),
                    }
                } else {
                    Ok(Expr::col(name))
                }
            }
            other => Err(EngineError::sql(format!(
                "unexpected token {other:?} while parsing an expression"
            ))),
        }
    }

    fn parse_case(&mut self) -> EngineResult<Expr> {
        let mut branches = Vec::new();
        let mut otherwise = None;
        loop {
            if self.eat_keyword("WHEN") {
                let cond = self.parse_expr()?;
                self.expect_keyword("THEN")?;
                let result = self.parse_expr()?;
                branches.push((cond, result));
            } else if self.eat_keyword("ELSE") {
                otherwise = Some(Box::new(self.parse_expr()?));
            } else if self.eat_keyword("END") {
                break;
            } else {
                return Err(EngineError::sql(format!(
                    "unexpected token {:?} inside CASE expression",
                    self.peek()
                )));
            }
        }
        if branches.is_empty() {
            return Err(EngineError::sql("CASE requires at least one WHEN branch"));
        }
        Ok(Expr::Case {
            branches,
            otherwise,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_figure4_aggregation_query() {
        let stmt =
            parse_select("SELECT name, MAX(points_scored) FROM final_joined_table GROUP BY name")
                .unwrap();
        assert_eq!(stmt.from.name, "final_joined_table");
        assert_eq!(stmt.items.len(), 2);
        assert!(stmt.items[1].is_aggregate());
        assert_eq!(stmt.group_by.len(), 1);
    }

    #[test]
    fn parses_the_figure4_join_query() {
        let stmt = parse_select(
            "SELECT * FROM paintings_metadata m JOIN painting_images i ON m.img_path = i.img_path",
        )
        .unwrap();
        assert_eq!(stmt.joins.len(), 1);
        assert_eq!(stmt.from.alias.as_deref(), Some("m"));
        assert_eq!(stmt.joins[0].table.alias.as_deref(), Some("i"));
        assert!(matches!(stmt.items[0], SelectItem::Wildcard));
    }

    #[test]
    fn parses_where_group_having_order_limit() {
        let stmt = parse_select(
            "SELECT conference, COUNT(*) AS n FROM teams WHERE division != 'Atlantic' \
             GROUP BY conference HAVING n > 1 ORDER BY n DESC, conference ASC LIMIT 5",
        )
        .unwrap();
        assert!(stmt.where_clause.is_some());
        assert!(stmt.having.is_some());
        assert_eq!(stmt.order_by.len(), 2);
        assert_eq!(stmt.order_by[0].order, SortOrder::Desc);
        assert_eq!(stmt.limit, Some(5));
    }

    #[test]
    fn rejects_dml_statements() {
        for sql in [
            "UPDATE teams SET points = 0",
            "DELETE FROM teams",
            "INSERT INTO teams VALUES (1)",
            "DROP TABLE teams",
        ] {
            let err = parse_select(sql).unwrap_err();
            assert!(
                matches!(err, EngineError::ForbiddenStatement { .. }),
                "expected ForbiddenStatement for {sql}, got {err:?}"
            );
        }
    }

    #[test]
    fn parse_expression_handles_conditions() {
        let expr = parse_expression("p.madonna_depicted = 'yes'").unwrap();
        assert_eq!(expr.to_string(), "(p.madonna_depicted = 'yes')");
        let expr = parse_expression("num_swords >= 2 AND century < 20").unwrap();
        assert!(expr.to_string().contains("AND"));
    }

    #[test]
    fn parse_expression_supports_functions_case_in_like() {
        assert!(parse_expression("CENTURY(inception)").is_ok());
        assert!(parse_expression("title LIKE '%Madonna%'").is_ok());
        assert!(parse_expression("title NOT LIKE '%Madonna%'").is_ok());
        assert!(parse_expression("movement IN ('Impressionism', 'Cubism')").is_ok());
        assert!(parse_expression("x NOT IN (1, 2)").is_ok());
        assert!(parse_expression("CASE WHEN year < 1500 THEN 'old' ELSE 'new' END").is_ok());
        assert!(parse_expression("inception IS NOT NULL").is_ok());
    }

    #[test]
    fn aggregates_outside_select_list_are_rejected() {
        let err = parse_expression("MAX(points) > 3").unwrap_err();
        assert!(matches!(err, EngineError::InvalidAggregate { .. }));
    }

    #[test]
    fn unknown_functions_are_reported() {
        let err = parse_expression("FOO(1)").unwrap_err();
        assert!(matches!(err, EngineError::InvalidFunctionCall { .. }));
    }

    #[test]
    fn trailing_garbage_is_rejected() {
        assert!(parse_select("SELECT a FROM t extra garbage here").is_err());
        assert!(parse_select("SELECT a FROM t;").is_ok());
    }

    #[test]
    fn operator_precedence_multiplication_before_addition() {
        let expr = parse_expression("1 + 2 * 3").unwrap();
        assert_eq!(expr.to_string(), "(1 + (2 * 3))");
    }

    #[test]
    fn left_join_is_accepted() {
        let stmt =
            parse_select("SELECT * FROM a LEFT OUTER JOIN b ON a.id = b.id WHERE a.x = 1").unwrap();
        assert_eq!(stmt.joins.len(), 1);
    }
}
