//! Executor: turn a parsed [`SelectStatement`] into a result [`Table`].

use super::ast::{SelectItem, SelectStatement, TableRef};
use crate::catalog::Catalog;
use crate::error::{EngineError, EngineResult};
use crate::expr::{BinaryOp, Expr};
use crate::ops::{
    aggregate, distinct, filter, filter_project, hash_join, limit, project, sort, AggCall,
    JoinType, Projection, SortKey,
};
use crate::table::Table;

/// Execute a SELECT statement against a catalog.
pub fn execute_select(catalog: &Catalog, statement: &SelectStatement) -> EngineResult<Table> {
    // 1. FROM + JOINs.
    let mut current = load_table(catalog, &statement.from)?;
    for join in &statement.joins {
        let right = load_table(catalog, &join.table)?;
        current = execute_join(&current, &right, &join.condition)?;
    }

    // 2 + 3. WHERE, then aggregation or plain projection. A WHERE feeding a
    // plain projection runs as the fused σ→π operator, which gathers only
    // the projected columns through the selection vector. The ORDER BY
    // fallback below re-sorts the filtered (pre-projection) table, so fusion
    // only applies when there is no ORDER BY; HAVING keeps the unfused path
    // so its error surfaces after the filter's, exactly as before.
    let fuse =
        !statement.is_aggregation() && statement.order_by.is_empty() && statement.having.is_none();
    let mut result = match &statement.where_clause {
        Some(predicate) if fuse => {
            let projections = projection_items(&current, statement);
            filter_project(&current, predicate, &projections)?
        }
        _ => {
            if let Some(predicate) = &statement.where_clause {
                current = filter(&current, predicate)?;
            }
            if statement.is_aggregation() {
                execute_aggregation(&current, statement)?
            } else {
                execute_projection(&current, statement)?
            }
        }
    };

    // 4. HAVING on the (already projected) aggregate output for the
    // non-aggregate path it was handled inside execute_aggregation.
    // 5. ORDER BY.
    if !statement.order_by.is_empty() {
        let keys: Vec<SortKey> = statement
            .order_by
            .iter()
            .map(|o| SortKey {
                expr: o.expr.clone(),
                order: o.order,
            })
            .collect();
        // Order-by expressions may reference projected aliases (common) or, for
        // the non-aggregate path, original input columns that were projected
        // away. Try the projected table first, then fall back to sorting the
        // input before re-projecting.
        match sort(&result, &keys) {
            Ok(sorted) => result = sorted,
            Err(_) if !statement.is_aggregation() => {
                let sorted_input = sort(&current, &keys)?;
                result = execute_projection(&sorted_input, statement)?;
            }
            Err(e) => return Err(e),
        }
    }

    // 6. DISTINCT.
    if statement.distinct {
        result = distinct(&result)?;
    }

    // 7. LIMIT.
    if let Some(n) = statement.limit {
        result = limit(&result, n)?;
    }

    Ok(result.renamed("query_result"))
}

fn load_table(catalog: &Catalog, table_ref: &TableRef) -> EngineResult<Table> {
    // Shallow copy: the columns stay Arc-shared with the catalog's table.
    let table = catalog.table(&table_ref.name)?.as_ref().clone();
    Ok(table.renamed(table_ref.effective_name()))
}

/// Execute a join given an arbitrary ON condition. Equality of two column
/// references uses the hash join; anything else falls back to a nested-loop
/// cross join followed by a filter on the condition.
fn execute_join(left: &Table, right: &Table, condition: &Expr) -> EngineResult<Table> {
    if let Expr::Binary {
        left: lhs,
        op: BinaryOp::Eq,
        right: rhs,
    } = condition
    {
        if let (Expr::Column(a), Expr::Column(b)) = (lhs.as_ref(), rhs.as_ref()) {
            // Figure out which column belongs to which side.
            let a_in_left = left.schema().contains(a);
            let b_in_right = right.schema().contains(b);
            if a_in_left && b_in_right {
                return hash_join(left, right, a, b, JoinType::Inner);
            }
            let b_in_left = left.schema().contains(b);
            let a_in_right = right.schema().contains(a);
            if b_in_left && a_in_right {
                return hash_join(left, right, b, a, JoinType::Inner);
            }
            return Err(EngineError::execution(format!(
                "join condition '{condition}' does not reference one column from each side \
                 (left columns: {:?}, right columns: {:?})",
                left.schema().names(),
                right.schema().names()
            )));
        }
    }
    // General condition: cross join + filter.
    let cross = cross_join(left, right)?;
    filter(&cross, condition)
}

fn cross_join(left: &Table, right: &Table) -> EngineResult<Table> {
    let schema = left
        .schema()
        .join(left.name(), right.schema(), right.name());
    // Vectorized: build the two index vectors of the cross product and gather
    // each column once.
    let pairs = left.num_rows() * right.num_rows();
    let mut left_indices = Vec::with_capacity(pairs);
    let mut right_indices = Vec::with_capacity(pairs);
    for i in 0..left.num_rows() {
        for j in 0..right.num_rows() {
            left_indices.push(i);
            right_indices.push(j);
        }
    }
    let mut columns = Vec::with_capacity(schema.len());
    for col in left.columns() {
        columns.push(std::sync::Arc::new(col.take(&left_indices)));
    }
    for col in right.columns() {
        columns.push(std::sync::Arc::new(col.take(&right_indices)));
    }
    Table::from_columns(
        format!("{}_{}_cross", left.name(), right.name()),
        schema,
        columns,
    )
}

/// The projection list of a non-aggregate SELECT, with wildcards expanded
/// against the input schema.
fn projection_items(input: &Table, statement: &SelectStatement) -> Vec<Projection> {
    let mut projections = Vec::new();
    for (i, item) in statement.items.iter().enumerate() {
        match item {
            SelectItem::Wildcard => {
                for field in input.schema().fields() {
                    projections.push(Projection {
                        expr: Expr::col(field.name.clone()),
                        alias: field.name.clone(),
                    });
                }
            }
            SelectItem::Expr { expr, .. } => {
                projections.push(Projection::new(expr.clone(), item.output_name(i)));
            }
            SelectItem::Aggregate { .. } => unreachable!("handled by execute_aggregation"),
        }
    }
    projections
}

fn execute_projection(input: &Table, statement: &SelectStatement) -> EngineResult<Table> {
    if statement.having.is_some() {
        return Err(EngineError::InvalidAggregate {
            message: "HAVING requires GROUP BY or aggregate functions".into(),
        });
    }
    project(input, &projection_items(input, statement))
}

fn execute_aggregation(input: &Table, statement: &SelectStatement) -> EngineResult<Table> {
    // Wildcards make no sense under aggregation.
    if statement
        .items
        .iter()
        .any(|i| matches!(i, SelectItem::Wildcard))
    {
        return Err(EngineError::InvalidAggregate {
            message: "SELECT * cannot be combined with GROUP BY or aggregate functions".into(),
        });
    }

    // Group-by keys: alias each expression with a stable name.
    let group_by: Vec<(Expr, String)> = statement
        .group_by
        .iter()
        .enumerate()
        .map(|(i, expr)| {
            let alias = match expr {
                Expr::Column(name) => name.rsplit('.').next().unwrap_or(name).to_string(),
                other => format!("group_{i}_{}", truncate_ident(&other.to_string())),
            };
            (expr.clone(), alias)
        })
        .collect();

    // Non-aggregate SELECT items must correspond to group-by expressions.
    for item in &statement.items {
        if let SelectItem::Expr { expr, .. } = item {
            let matches_group = statement.group_by.iter().any(|g| exprs_equivalent(g, expr));
            if !matches_group {
                return Err(EngineError::InvalidAggregate {
                    message: format!(
                        "column '{expr}' must appear in the GROUP BY clause or be used in an aggregate function"
                    ),
                });
            }
        }
    }

    // Aggregate calls.
    let mut agg_calls = Vec::new();
    for (i, item) in statement.items.iter().enumerate() {
        if let SelectItem::Aggregate { func, expr, .. } = item {
            agg_calls.push(AggCall::new(*func, expr.clone(), item.output_name(i)));
        }
    }

    let aggregated = aggregate(input, &group_by, &agg_calls)?;

    // HAVING can reference group keys and aggregate aliases.
    let aggregated = match &statement.having {
        Some(predicate) => filter(&aggregated, predicate)?,
        None => aggregated,
    };

    // Final projection: reorder/rename to match the SELECT list.
    let mut projections = Vec::with_capacity(statement.items.len());
    for (i, item) in statement.items.iter().enumerate() {
        match item {
            SelectItem::Expr { expr, .. } => {
                // Find the group alias this expression was grouped under.
                let alias = group_by
                    .iter()
                    .find(|(g, _)| exprs_equivalent(g, expr))
                    .map(|(_, alias)| alias.clone())
                    .expect("validated above");
                projections.push(Projection::new(Expr::col(alias), item.output_name(i)));
            }
            SelectItem::Aggregate { .. } => {
                let name = item.output_name(i);
                projections.push(Projection::new(Expr::col(name.clone()), name));
            }
            SelectItem::Wildcard => unreachable!("rejected above"),
        }
    }
    project(&aggregated, &projections)
}

/// Two expressions are considered equivalent for GROUP BY matching if they
/// render identically, or if both are column references whose unqualified
/// names match (so `SELECT name ... GROUP BY t.name` works).
fn exprs_equivalent(a: &Expr, b: &Expr) -> bool {
    if a == b {
        return true;
    }
    match (a, b) {
        (Expr::Column(x), Expr::Column(y)) => {
            let bx = x.rsplit('.').next().unwrap_or(x);
            let by = y.rsplit('.').next().unwrap_or(y);
            bx.eq_ignore_ascii_case(by)
        }
        _ => a.to_string().eq_ignore_ascii_case(&b.to_string()),
    }
}

fn truncate_ident(text: &str) -> String {
    text.chars()
        .filter(|c| c.is_alphanumeric() || *c == '_')
        .take(20)
        .collect::<String>()
        .to_lowercase()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Schema;
    use crate::sql::parse_select;
    use crate::table::TableBuilder;
    use crate::value::{DataType, Value};

    fn catalog() -> Catalog {
        let mut catalog = Catalog::new();

        let schema = Schema::from_pairs(&[("name", DataType::Str), ("conference", DataType::Str)]);
        let mut b = TableBuilder::new("teams", schema);
        for (n, c) in [
            ("Heat", "Eastern"),
            ("Spurs", "Western"),
            ("Bulls", "Eastern"),
        ] {
            b.push_values([n, c]).unwrap();
        }
        catalog.register(b.build());

        let schema = Schema::from_pairs(&[
            ("name", DataType::Str),
            ("game_id", DataType::Int),
            ("points", DataType::Int),
        ]);
        let mut b = TableBuilder::new("team_to_games", schema);
        for (n, g, p) in [
            ("Heat", 1, 102),
            ("Heat", 2, 95),
            ("Spurs", 1, 110),
            ("Spurs", 3, 99),
            ("Bulls", 2, 87),
            ("Bulls", 3, 105),
        ] {
            b.push_values::<_, Value>(vec![Value::str(n), Value::Int(g), Value::Int(p)])
                .unwrap();
        }
        catalog.register(b.build());

        catalog
    }

    fn run(sql: &str) -> EngineResult<Table> {
        let statement = parse_select(sql)?;
        execute_select(&catalog(), &statement)
    }

    #[test]
    fn select_star_returns_all_columns() {
        let out = run("SELECT * FROM teams").unwrap();
        assert_eq!(out.num_rows(), 3);
        assert_eq!(out.num_columns(), 2);
    }

    #[test]
    fn join_then_aggregate_matches_rotowire_plan_shape() {
        // Mirrors Figure 4 Query 1: join teams with games, then MAX per team.
        let out = run("SELECT t.name, MAX(g.points) AS max_points \
             FROM teams t JOIN team_to_games g ON t.name = g.name \
             GROUP BY t.name ORDER BY max_points DESC")
        .unwrap();
        assert_eq!(out.num_rows(), 3);
        assert_eq!(out.value(0, "name").unwrap(), Value::str("Spurs"));
        assert_eq!(out.value(0, "max_points").unwrap(), Value::Int(110));
    }

    #[test]
    fn where_and_order_and_limit() {
        let out = run("SELECT name, points FROM team_to_games WHERE points > 90 \
             ORDER BY points DESC LIMIT 2")
        .unwrap();
        assert_eq!(out.num_rows(), 2);
        assert_eq!(out.value(0, "points").unwrap(), Value::Int(110));
        assert_eq!(out.value(1, "points").unwrap(), Value::Int(105));
    }

    #[test]
    fn order_by_column_not_in_projection() {
        let out = run("SELECT name FROM team_to_games ORDER BY points DESC").unwrap();
        assert_eq!(out.value(0, "name").unwrap(), Value::str("Spurs"));
        assert_eq!(out.schema().names(), vec!["name"]);
    }

    #[test]
    fn group_by_with_having() {
        let out =
            run("SELECT conference, COUNT(*) AS n FROM teams GROUP BY conference HAVING n > 1")
                .unwrap();
        assert_eq!(out.num_rows(), 1);
        assert_eq!(out.value(0, "conference").unwrap(), Value::str("Eastern"));
        assert_eq!(out.value(0, "n").unwrap(), Value::Int(2));
    }

    #[test]
    fn global_aggregate_without_group_by() {
        let out =
            run("SELECT COUNT(*) AS n, AVG(points) AS avg_points FROM team_to_games").unwrap();
        assert_eq!(out.num_rows(), 1);
        assert_eq!(out.value(0, "n").unwrap(), Value::Int(6));
    }

    #[test]
    fn distinct_removes_duplicate_rows() {
        let out = run("SELECT DISTINCT conference FROM teams").unwrap();
        assert_eq!(out.num_rows(), 2);
    }

    #[test]
    fn selecting_a_column_not_in_group_by_is_an_error() {
        let err = run("SELECT name, COUNT(*) FROM teams GROUP BY conference").unwrap_err();
        assert!(matches!(err, EngineError::InvalidAggregate { .. }));
    }

    #[test]
    fn unknown_table_and_column_errors_are_descriptive() {
        let err = run("SELECT * FROM nonexistent").unwrap_err();
        assert!(err.to_string().contains("available tables"));
        let err = run("SELECT wrong_col FROM teams").unwrap_err();
        assert!(err.to_string().contains("available columns"));
    }

    #[test]
    fn non_equi_join_falls_back_to_cross_join_with_filter() {
        let out = run(
            "SELECT t.name FROM teams t JOIN team_to_games g ON t.name != g.name WHERE g.points > 100",
        )
        .unwrap();
        // points > 100 rows: Heat(102), Spurs(110), Bulls(105) → each matches 2 other teams.
        assert_eq!(out.num_rows(), 6);
    }

    #[test]
    fn having_without_group_by_is_rejected() {
        let err = run("SELECT name FROM teams HAVING name = 'Heat'").unwrap_err();
        assert!(matches!(err, EngineError::InvalidAggregate { .. }));
    }

    #[test]
    fn expression_projection_with_alias() {
        let out = run("SELECT UPPER(name) AS shout FROM teams ORDER BY shout").unwrap();
        assert_eq!(out.value(0, "shout").unwrap(), Value::str("BULLS"));
    }
}
