//! A read-only SQL subset: the engine-side substitute for the SQLite backend
//! used by the original CAESURA prototype.
//!
//! The mapping phase of CAESURA emits SQL strings as the arguments of the
//! *SQL (Join)*, *SQL (Selection)* and *SQL (Aggregation)* physical operators
//! (see Figure 4 of the paper). This module parses and executes those strings
//! against an in-memory [`Catalog`].
//!
//! Supported grammar (case-insensitive keywords):
//!
//! ```text
//! SELECT [DISTINCT] item [, item ...]
//! FROM table [alias]
//! [JOIN table [alias] ON expr ...]
//! [WHERE expr]
//! [GROUP BY expr [, expr ...]]
//! [HAVING expr]
//! [ORDER BY expr [ASC|DESC] [, ...]]
//! [LIMIT n]
//! ```
//!
//! where `item` is `*`, `expr [AS alias]`, or `agg(expr) [AS alias]` with
//! `agg ∈ {COUNT, SUM, AVG, MIN, MAX}` (including `COUNT(*)`).
//!
//! Any non-`SELECT` statement (UPDATE / INSERT / DELETE / DROP / ...) is
//! rejected with [`EngineError::ForbiddenStatement`](crate::error::EngineError::ForbiddenStatement),
//! implementing the security posture described in §5 of the paper.

mod ast;
mod exec;
mod lexer;
mod parser;

pub use ast::{JoinClause, OrderItem, SelectItem, SelectStatement, TableRef};
pub use exec::execute_select;
pub use lexer::{tokenize, Token};
pub use parser::{parse_expression, parse_select};

use crate::catalog::Catalog;
use crate::error::EngineResult;
use crate::table::Table;

/// Parse and execute a SQL string against a catalog.
///
/// This is the entry point used by CAESURA's SQL physical operators.
pub fn run_sql(catalog: &Catalog, sql: &str) -> EngineResult<Table> {
    let statement = parse_select(sql)?;
    match catalog.exec_config() {
        // Honour the catalog's pinned thread/morsel knobs for the whole
        // statement (scoped: the override is popped when execution returns).
        Some(config) => {
            crate::parallel::with_config(config, || execute_select(catalog, &statement))
        }
        None => execute_select(catalog, &statement),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Schema;
    use crate::table::TableBuilder;
    use crate::value::{DataType, Value};

    fn catalog() -> Catalog {
        let mut catalog = Catalog::new();
        let schema = Schema::from_pairs(&[
            ("name", DataType::Str),
            ("conference", DataType::Str),
            ("points", DataType::Int),
        ]);
        let mut b = TableBuilder::new("teams", schema);
        for (n, c, p) in [
            ("Heat", "Eastern", 102),
            ("Spurs", "Western", 110),
            ("Bulls", "Eastern", 95),
        ] {
            b.push_values::<_, Value>(vec![Value::str(n), Value::str(c), Value::Int(p)])
                .unwrap();
        }
        catalog.register(b.build());
        catalog
    }

    #[test]
    fn end_to_end_select_where_order() {
        let table = run_sql(
            &catalog(),
            "SELECT name FROM teams WHERE conference = 'Eastern' ORDER BY points DESC",
        )
        .unwrap();
        assert_eq!(table.num_rows(), 2);
        assert_eq!(table.value(0, "name").unwrap(), Value::str("Heat"));
    }

    #[test]
    fn end_to_end_group_by() {
        let table = run_sql(
            &catalog(),
            "SELECT conference, MAX(points) AS max_points FROM teams GROUP BY conference",
        )
        .unwrap();
        assert_eq!(table.num_rows(), 2);
        assert!(table.schema().contains("max_points"));
    }

    #[test]
    fn update_statements_are_forbidden() {
        let err = run_sql(&catalog(), "UPDATE teams SET points = 0");
        assert!(err.is_err());
        assert!(err.unwrap_err().to_string().contains("read-only"));
    }
}
