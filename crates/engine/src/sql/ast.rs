//! SQL abstract syntax tree for the supported SELECT subset.

use crate::expr::Expr;
use crate::ops::{AggFunc, SortOrder};

/// A table reference with an optional alias (`teams t`).
#[derive(Debug, Clone, PartialEq)]
pub struct TableRef {
    /// Table name as it appears in the catalog.
    pub name: String,
    /// Optional alias used to qualify columns.
    pub alias: Option<String>,
}

impl TableRef {
    /// The name used for qualification (the alias if present, else the name).
    pub fn effective_name(&self) -> &str {
        self.alias.as_deref().unwrap_or(&self.name)
    }
}

/// One JOIN clause (`JOIN games g ON t.game_id = g.game_id`).
#[derive(Debug, Clone, PartialEq)]
pub struct JoinClause {
    /// The joined table.
    pub table: TableRef,
    /// The ON condition.
    pub condition: Expr,
}

/// One item in the SELECT list.
#[derive(Debug, Clone, PartialEq)]
pub enum SelectItem {
    /// `*` — all columns.
    Wildcard,
    /// A scalar expression with an optional alias.
    Expr {
        /// The expression.
        expr: Expr,
        /// Optional output name.
        alias: Option<String>,
    },
    /// An aggregate call with an optional alias; `expr` is `None` for `COUNT(*)`.
    Aggregate {
        /// The aggregate function.
        func: AggFunc,
        /// The aggregated expression, `None` for `COUNT(*)`.
        expr: Option<Expr>,
        /// Optional output name.
        alias: Option<String>,
    },
}

impl SelectItem {
    /// Whether the item is an aggregate call.
    pub fn is_aggregate(&self) -> bool {
        matches!(self, SelectItem::Aggregate { .. })
    }

    /// The output name of this item (alias if given, otherwise derived).
    pub fn output_name(&self, index: usize) -> String {
        match self {
            SelectItem::Wildcard => "*".to_string(),
            SelectItem::Expr { expr, alias } => match alias {
                Some(a) => a.clone(),
                None => match expr {
                    Expr::Column(name) => name.rsplit('.').next().unwrap_or(name).to_string(),
                    other => {
                        let text = other.to_string();
                        if text.len() <= 30 {
                            text
                        } else {
                            format!("expr_{index}")
                        }
                    }
                },
            },
            SelectItem::Aggregate { func, expr, alias } => match alias {
                Some(a) => a.clone(),
                None => {
                    let inner = expr
                        .as_ref()
                        .map(|e| match e {
                            Expr::Column(name) => {
                                name.rsplit('.').next().unwrap_or(name).to_string()
                            }
                            other => other.to_string(),
                        })
                        .unwrap_or_else(|| "*".to_string());
                    format!("{}_{}", func.name().to_lowercase(), inner.replace('.', "_"))
                }
            },
        }
    }
}

/// One ORDER BY item.
#[derive(Debug, Clone, PartialEq)]
pub struct OrderItem {
    /// Expression to order by.
    pub expr: Expr,
    /// Direction.
    pub order: SortOrder,
}

/// A parsed SELECT statement.
#[derive(Debug, Clone, PartialEq)]
pub struct SelectStatement {
    /// Whether DISTINCT was specified.
    pub distinct: bool,
    /// SELECT list.
    pub items: Vec<SelectItem>,
    /// FROM table.
    pub from: TableRef,
    /// JOIN clauses in order.
    pub joins: Vec<JoinClause>,
    /// WHERE predicate.
    pub where_clause: Option<Expr>,
    /// GROUP BY expressions.
    pub group_by: Vec<Expr>,
    /// HAVING predicate (applied after aggregation).
    pub having: Option<Expr>,
    /// ORDER BY items.
    pub order_by: Vec<OrderItem>,
    /// LIMIT, if any.
    pub limit: Option<usize>,
}

impl SelectStatement {
    /// Whether the statement aggregates (explicit GROUP BY or aggregate items).
    pub fn is_aggregation(&self) -> bool {
        !self.group_by.is_empty() || self.items.iter().any(SelectItem::is_aggregate)
    }

    /// All table names referenced by the statement (FROM + JOINs).
    pub fn referenced_tables(&self) -> Vec<String> {
        let mut tables = vec![self.from.name.clone()];
        for join in &self.joins {
            tables.push(join.table.name.clone());
        }
        tables
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn output_names_for_plain_and_aggregate_items() {
        let item = SelectItem::Expr {
            expr: Expr::col("teams.name"),
            alias: None,
        };
        assert_eq!(item.output_name(0), "name");
        let item = SelectItem::Aggregate {
            func: AggFunc::Max,
            expr: Some(Expr::col("points_scored")),
            alias: None,
        };
        assert_eq!(item.output_name(0), "max_points_scored");
        let item = SelectItem::Aggregate {
            func: AggFunc::Count,
            expr: None,
            alias: Some("n".into()),
        };
        assert_eq!(item.output_name(0), "n");
    }

    #[test]
    fn aggregation_detection() {
        let stmt = SelectStatement {
            distinct: false,
            items: vec![SelectItem::Aggregate {
                func: AggFunc::Count,
                expr: None,
                alias: None,
            }],
            from: TableRef {
                name: "t".into(),
                alias: None,
            },
            joins: vec![],
            where_clause: None,
            group_by: vec![],
            having: None,
            order_by: vec![],
            limit: None,
        };
        assert!(stmt.is_aggregation());
    }

    #[test]
    fn effective_name_prefers_alias() {
        let t = TableRef {
            name: "paintings_metadata".into(),
            alias: Some("m".into()),
        };
        assert_eq!(t.effective_name(), "m");
    }
}
