//! SQL tokenizer.

use crate::error::{EngineError, EngineResult};

/// A SQL token.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// Keyword or identifier (normalized to its original spelling; keyword
    /// checks are case-insensitive).
    Ident(String),
    /// Quoted string literal (single or double quotes, quotes stripped).
    StringLit(String),
    /// Integer literal.
    IntLit(i64),
    /// Float literal.
    FloatLit(f64),
    /// `,`
    Comma,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `*`
    Star,
    /// `.`
    Dot,
    /// `=`
    Eq,
    /// `!=` or `<>`
    NotEq,
    /// `<`
    Lt,
    /// `<=`
    LtEq,
    /// `>`
    Gt,
    /// `>=`
    GtEq,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `/`
    Slash,
    /// `%`
    Percent,
    /// `;`
    Semicolon,
}

impl Token {
    /// If the token is an identifier, return it uppercased (for keyword tests).
    pub fn keyword(&self) -> Option<String> {
        match self {
            Token::Ident(s) => Some(s.to_ascii_uppercase()),
            _ => None,
        }
    }

    /// Whether this token is the given keyword (case-insensitive).
    pub fn is_keyword(&self, kw: &str) -> bool {
        self.keyword()
            .map(|k| k == kw.to_ascii_uppercase())
            .unwrap_or(false)
    }
}

/// Tokenize a SQL string.
pub fn tokenize(sql: &str) -> EngineResult<Vec<Token>> {
    let chars: Vec<char> = sql.chars().collect();
    let mut tokens = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        let c = chars[i];
        match c {
            ' ' | '\t' | '\n' | '\r' => i += 1,
            ',' => {
                tokens.push(Token::Comma);
                i += 1;
            }
            '(' => {
                tokens.push(Token::LParen);
                i += 1;
            }
            ')' => {
                tokens.push(Token::RParen);
                i += 1;
            }
            '*' => {
                tokens.push(Token::Star);
                i += 1;
            }
            '.' => {
                tokens.push(Token::Dot);
                i += 1;
            }
            ';' => {
                tokens.push(Token::Semicolon);
                i += 1;
            }
            '+' => {
                tokens.push(Token::Plus);
                i += 1;
            }
            '-' => {
                // Support `--` line comments.
                if i + 1 < chars.len() && chars[i + 1] == '-' {
                    while i < chars.len() && chars[i] != '\n' {
                        i += 1;
                    }
                } else {
                    tokens.push(Token::Minus);
                    i += 1;
                }
            }
            '/' => {
                tokens.push(Token::Slash);
                i += 1;
            }
            '%' => {
                tokens.push(Token::Percent);
                i += 1;
            }
            '=' => {
                tokens.push(Token::Eq);
                i += 1;
            }
            '!' => {
                if i + 1 < chars.len() && chars[i + 1] == '=' {
                    tokens.push(Token::NotEq);
                    i += 2;
                } else {
                    return Err(EngineError::SqlParse {
                        message: "unexpected '!'".into(),
                        position: Some(i),
                    });
                }
            }
            '<' => {
                if i + 1 < chars.len() && chars[i + 1] == '=' {
                    tokens.push(Token::LtEq);
                    i += 2;
                } else if i + 1 < chars.len() && chars[i + 1] == '>' {
                    tokens.push(Token::NotEq);
                    i += 2;
                } else {
                    tokens.push(Token::Lt);
                    i += 1;
                }
            }
            '>' => {
                if i + 1 < chars.len() && chars[i + 1] == '=' {
                    tokens.push(Token::GtEq);
                    i += 2;
                } else {
                    tokens.push(Token::Gt);
                    i += 1;
                }
            }
            '\'' | '"' => {
                let quote = c;
                let mut value = String::new();
                let mut j = i + 1;
                let mut closed = false;
                while j < chars.len() {
                    if chars[j] == quote {
                        // Doubled quote is an escaped quote.
                        if j + 1 < chars.len() && chars[j + 1] == quote {
                            value.push(quote);
                            j += 2;
                            continue;
                        }
                        closed = true;
                        break;
                    }
                    value.push(chars[j]);
                    j += 1;
                }
                if !closed {
                    return Err(EngineError::SqlParse {
                        message: "unterminated string literal".into(),
                        position: Some(i),
                    });
                }
                tokens.push(Token::StringLit(value));
                i = j + 1;
            }
            c if c.is_ascii_digit() => {
                let start = i;
                let mut is_float = false;
                while i < chars.len() && (chars[i].is_ascii_digit() || chars[i] == '.') {
                    if chars[i] == '.' {
                        // A second dot ends the number (e.g. `1.2.3` is invalid anyway).
                        if is_float {
                            break;
                        }
                        // Don't treat a trailing dot followed by non-digit as part of the number.
                        if i + 1 >= chars.len() || !chars[i + 1].is_ascii_digit() {
                            break;
                        }
                        is_float = true;
                    }
                    i += 1;
                }
                let text: String = chars[start..i].iter().collect();
                if is_float {
                    let value = text.parse::<f64>().map_err(|_| EngineError::SqlParse {
                        message: format!("invalid float literal '{text}'"),
                        position: Some(start),
                    })?;
                    tokens.push(Token::FloatLit(value));
                } else {
                    let value = text.parse::<i64>().map_err(|_| EngineError::SqlParse {
                        message: format!("invalid integer literal '{text}'"),
                        position: Some(start),
                    })?;
                    tokens.push(Token::IntLit(value));
                }
            }
            c if c.is_alphabetic() || c == '_' => {
                let start = i;
                while i < chars.len() && (chars[i].is_alphanumeric() || chars[i] == '_') {
                    i += 1;
                }
                let text: String = chars[start..i].iter().collect();
                tokens.push(Token::Ident(text));
            }
            other => {
                return Err(EngineError::SqlParse {
                    message: format!("unexpected character '{other}'"),
                    position: Some(i),
                });
            }
        }
    }
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokenizes_a_simple_select() {
        let tokens = tokenize("SELECT name, MAX(points) FROM teams WHERE points >= 100").unwrap();
        assert!(tokens.contains(&Token::Ident("SELECT".into())));
        assert!(tokens.contains(&Token::GtEq));
        assert!(tokens.contains(&Token::IntLit(100)));
        assert!(tokens.contains(&Token::LParen));
    }

    #[test]
    fn string_literals_support_both_quote_styles_and_escapes() {
        let tokens = tokenize("WHERE title = 'Madonna''s Child' AND x = \"abc\"").unwrap();
        assert!(tokens.contains(&Token::StringLit("Madonna's Child".into())));
        assert!(tokens.contains(&Token::StringLit("abc".into())));
    }

    #[test]
    fn unterminated_string_is_an_error() {
        assert!(tokenize("SELECT 'oops").is_err());
    }

    #[test]
    fn numbers_and_floats() {
        let tokens = tokenize("1 2.5 100").unwrap();
        assert_eq!(
            tokens,
            vec![Token::IntLit(1), Token::FloatLit(2.5), Token::IntLit(100)]
        );
    }

    #[test]
    fn comments_are_skipped() {
        let tokens = tokenize("SELECT x -- this is a comment\nFROM t").unwrap();
        assert_eq!(tokens.len(), 4);
    }

    #[test]
    fn not_equal_spellings() {
        assert!(tokenize("a != b").unwrap().contains(&Token::NotEq));
        assert!(tokenize("a <> b").unwrap().contains(&Token::NotEq));
    }

    #[test]
    fn keyword_check_is_case_insensitive() {
        let tokens = tokenize("select").unwrap();
        assert!(tokens[0].is_keyword("SELECT"));
        assert!(!tokens[0].is_keyword("FROM"));
    }
}
