//! Dictionary encoding for low-cardinality string columns.
//!
//! A [`Column::Dict`] stores each row as a `u32` code into a shared,
//! duplicate-free entry table instead of a per-row `Arc<str>`. For columns
//! whose distinct-value count is small relative to the row count (category
//! tags, join keys, enum-like labels) this turns the hot paths of hash join,
//! grouped aggregation, sorting, and equality filtering into integer
//! operations: no string hashing or byte comparison per row.
//!
//! Encoding happens at table **ingest** ([`Table::new`](crate::table::Table::new)
//! and [`TableBuilder::build`](crate::table::TableBuilder::build)) behind the
//! `CAESURA_DICT_ENCODE` knob — never inside operators, so sequential and
//! morsel-parallel execution always see the same representation and stay
//! byte-identical. `slice`/`take` on a dict column preserve the encoding and
//! share the entry table `Arc`; operators that cannot exploit the codes fall
//! back to the exact `Value`-level semantics of a plain [`Column::Utf8`].

use crate::column::Column;
use crate::table::Table;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, OnceLock};

/// Columns shorter than this are never dictionary-encoded — the bookkeeping
/// would cost more than the strings.
pub const MIN_ENCODE_ROWS: usize = 16;

/// Encoding requires at least this many rows per distinct value
/// (`distinct * MIN_ROWS_PER_DISTINCT <= rows`), i.e. a distinct-ratio of at
/// most 1/4. High-cardinality columns (titles, free text) stay plain.
pub const MIN_ROWS_PER_DISTINCT: usize = 4;

fn enabled_flag() -> &'static AtomicBool {
    static FLAG: OnceLock<AtomicBool> = OnceLock::new();
    FLAG.get_or_init(|| {
        let from_env = std::env::var("CAESURA_DICT_ENCODE")
            .map(|v| !matches!(v.trim(), "0" | "false" | "off" | "no"))
            .unwrap_or(true);
        AtomicBool::new(from_env)
    })
}

/// Whether table ingest dictionary-encodes eligible string columns.
/// Defaults to on; `CAESURA_DICT_ENCODE=0` disables it process-wide, and
/// [`set_dict_encode`] overrides it at runtime.
pub fn dict_encode_enabled() -> bool {
    enabled_flag().load(Ordering::Relaxed)
}

/// Override the `CAESURA_DICT_ENCODE` knob at runtime (used by the session
/// configuration plumbing in `caesura-core` and by tests).
pub fn set_dict_encode(enabled: bool) {
    enabled_flag().store(enabled, Ordering::Relaxed)
}

/// Dictionary-encode a [`Column::Utf8`] whose cardinality is low enough
/// (see [`MIN_ENCODE_ROWS`] / [`MIN_ROWS_PER_DISTINCT`]). Returns `None` for
/// non-string columns, short columns, high-cardinality columns, and all-NULL
/// columns. Codes are assigned in first-appearance order; invalid slots store
/// code 0 and are masked by the bitmap, mirroring the placeholder convention
/// of the typed builders.
pub fn encode_column(column: &Column) -> Option<Column> {
    let (data, bitmap) = column.as_utf8()?;
    if data.len() < MIN_ENCODE_ROWS {
        return None;
    }
    let max_entries = data.len() / MIN_ROWS_PER_DISTINCT;
    let mut index: HashMap<&str, u32> = HashMap::new();
    let mut entries: Vec<Arc<str>> = Vec::new();
    let mut codes: Vec<u32> = Vec::with_capacity(data.len());
    for (i, s) in data.iter().enumerate() {
        if !bitmap.is_valid(i) {
            codes.push(0);
            continue;
        }
        let code = match index.get(s.as_ref()) {
            Some(&code) => code,
            None => {
                if entries.len() >= max_entries {
                    // Too many distinct values: bail before scanning the rest.
                    return None;
                }
                let code = entries.len() as u32;
                entries.push(Arc::clone(s));
                index.insert(s.as_ref(), code);
                code
            }
        };
        codes.push(code);
    }
    if entries.is_empty() {
        return None;
    }
    Some(Column::Dict {
        codes,
        dict: Arc::new(entries),
        bitmap: bitmap.clone(),
    })
}

/// Decode a [`Column::Dict`] back to a plain [`Column::Utf8`]. Invalid slots
/// get the empty-string placeholder the typed builders use, so a decoded
/// column is byte-identical to the column a plain build would have produced.
/// Non-dict columns are returned unchanged (cloned).
pub fn decode_column(column: &Column) -> Column {
    match column {
        Column::Dict {
            codes,
            dict,
            bitmap,
        } => {
            let empty: Arc<str> = Arc::from("");
            let data: Vec<Arc<str>> = codes
                .iter()
                .enumerate()
                .map(|(i, &code)| {
                    if bitmap.is_valid(i) {
                        Arc::clone(&dict[code as usize])
                    } else {
                        Arc::clone(&empty)
                    }
                })
                .collect();
            Column::Utf8(data, bitmap.clone())
        }
        other => other.clone(),
    }
}

/// Apply [`encode_column`] to an ingested column if the knob is on; otherwise
/// (or when the column is not eligible) pass it through untouched.
pub fn maybe_encode(column: Arc<Column>) -> Arc<Column> {
    if !dict_encode_enabled() {
        return column;
    }
    match encode_column(&column) {
        Some(encoded) => Arc::new(encoded),
        None => column,
    }
}

/// Dictionary-encode every eligible column of a table, ignoring the
/// `CAESURA_DICT_ENCODE` knob. Used by tests and benches that need both
/// representations of the same data in one process.
pub fn encode_table(table: &Table) -> Table {
    let columns: Vec<Arc<Column>> = table
        .columns()
        .iter()
        .map(|c| match encode_column(c) {
            Some(encoded) => Arc::new(encoded),
            None => Arc::clone(c),
        })
        .collect();
    Table::from_columns(table.name().to_string(), table.schema().clone(), columns)
        .expect("re-encoding preserves arity and lengths")
}

/// Decode every dict column of a table back to plain strings.
pub fn decode_table(table: &Table) -> Table {
    let columns: Vec<Arc<Column>> = table
        .columns()
        .iter()
        .map(|c| match c.as_ref() {
            Column::Dict { .. } => Arc::new(decode_column(c)),
            _ => Arc::clone(c),
        })
        .collect();
    Table::from_columns(table.name().to_string(), table.schema().clone(), columns)
        .expect("decoding preserves arity and lengths")
}

/// Remap the codes of `from` (a dict entry table) into the code space of
/// `to`: `remap[c]` is the code of entry `c` in `to`, or [`NO_REMAP`] when
/// the entry does not occur there. One string hash per **entry** replaces
/// one per **row** on the join/filter hot paths.
pub fn remap_entries(from: &[Arc<str>], to: &[Arc<str>]) -> Vec<u32> {
    let index: HashMap<&str, u32> = to
        .iter()
        .enumerate()
        .map(|(i, s)| (s.as_ref(), i as u32))
        .collect();
    from.iter()
        .map(|s| index.get(s.as_ref()).copied().unwrap_or(NO_REMAP))
        .collect()
}

/// Sentinel produced by [`remap_entries`] for entries absent from the target
/// dictionary. Safe because encoding caps dictionaries far below `u32::MAX`.
pub const NO_REMAP: u32 = u32::MAX;

/// Byte-order ranks for a dict entry table: `rank[code]` is the position of
/// entry `code` in the lexicographic ordering of the (duplicate-free)
/// entries. Sorting rows by rank is then identical to sorting them by string
/// value, which is what the sort fast path relies on.
pub fn entry_ranks(entries: &[Arc<str>]) -> Vec<u32> {
    let mut order: Vec<u32> = (0..entries.len() as u32).collect();
    order.sort_by(|&a, &b| entries[a as usize].cmp(&entries[b as usize]));
    let mut ranks = vec![0u32; entries.len()];
    for (rank, &code) in order.iter().enumerate() {
        ranks[code as usize] = rank as u32;
    }
    ranks
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Value;

    fn utf8_column(values: &[Option<&str>]) -> Column {
        Column::from_values(
            values
                .iter()
                .map(|v| v.map(Value::str).unwrap_or(Value::Null))
                .collect(),
        )
    }

    #[test]
    fn encode_round_trips_values_and_validity() {
        let values: Vec<Option<&str>> = (0..40)
            .map(|i| match i % 4 {
                0 => Some("red"),
                1 => Some("green"),
                2 => None,
                _ => Some("blue"),
            })
            .collect();
        let plain = utf8_column(&values);
        let encoded = encode_column(&plain).expect("low-cardinality column encodes");
        assert!(matches!(encoded, Column::Dict { .. }));
        assert_eq!(encoded.len(), plain.len());
        for i in 0..plain.len() {
            assert_eq!(encoded.get(i), plain.get(i), "row {i}");
            assert_eq!(encoded.is_valid(i), plain.is_valid(i), "row {i}");
        }
        // Decoding restores the exact plain representation, placeholders
        // included.
        assert_eq!(decode_column(&encoded), plain);
    }

    #[test]
    fn encode_rejects_small_high_cardinality_and_all_null_columns() {
        let small = utf8_column(&[Some("a"), Some("b")]);
        assert!(encode_column(&small).is_none());

        let unique: Vec<String> = (0..64).map(|i| format!("title-{i}")).collect();
        let unique_col =
            Column::from_values(unique.iter().map(|s| Value::str(s.as_str())).collect());
        assert!(encode_column(&unique_col).is_none());

        let nulls = Column::from_values(vec![Value::Null; 32]);
        assert!(encode_column(&nulls).is_none());

        let ints = Column::from_values((0..32).map(Value::Int).collect());
        assert!(encode_column(&ints).is_none());
    }

    #[test]
    fn codes_are_first_appearance_order_and_entries_unique() {
        let values: Vec<Option<&str>> = (0..32).map(|i| Some(["b", "a"][i % 2])).collect();
        let Column::Dict { codes, dict, .. } =
            encode_column(&utf8_column(&values)).expect("encodes")
        else {
            panic!("expected dict column");
        };
        assert_eq!(dict.as_ref().len(), 2);
        assert_eq!(dict[0].as_ref(), "b");
        assert_eq!(dict[1].as_ref(), "a");
        assert_eq!(&codes[..4], &[0, 1, 0, 1]);
    }

    #[test]
    fn remap_translates_codes_and_flags_missing_entries() {
        let from: Vec<Arc<str>> = vec![Arc::from("x"), Arc::from("y"), Arc::from("z")];
        let to: Vec<Arc<str>> = vec![Arc::from("y"), Arc::from("x")];
        assert_eq!(remap_entries(&from, &to), vec![1, 0, NO_REMAP]);
    }

    #[test]
    fn entry_ranks_order_lexicographically() {
        let entries: Vec<Arc<str>> = vec![Arc::from("pear"), Arc::from("apple"), Arc::from("fig")];
        assert_eq!(entry_ranks(&entries), vec![2, 0, 1]);
    }
}
