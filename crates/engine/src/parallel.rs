//! Morsel-driven parallel execution.
//!
//! The vectorized kernels of this crate are embarrassingly parallel over row
//! ranges: columns are immutable and `Arc`-shared, so no locking is needed.
//! This module provides the worker-pool plumbing that exploits that:
//!
//! * [`ExecConfig`] — the `{ threads, morsel_rows }` knob. `threads = 1`
//!   falls back to the existing sequential code paths byte-for-byte.
//! * a process-wide default configuration ([`set_exec_config`] /
//!   [`exec_config`]) initialised from the `CAESURA_THREADS` and
//!   `CAESURA_MORSEL_ROWS` environment variables (hardware parallelism and
//!   4096 rows otherwise), plus a scoped, thread-local override
//!   ([`with_config`]) that `Catalog` / executor / session knobs use to pin a
//!   configuration for one query without mutating global state.
//! * [`map_morsels`] / [`try_map_morsels`] — split `0..len` into fixed-size
//!   morsels and fan the chunks out to a scoped pool of `std::thread` workers
//!   that claim morsels from a shared atomic cursor (morsel-driven
//!   scheduling: fast workers steal more morsels). Results come back in
//!   morsel order, so every merge step below is deterministic and independent
//!   of worker interleaving.
//! * [`take_column`] / [`take_opt_column`] — parallel gather kernels.
//! * [`sort_indices`] — parallel stable sort of a row permutation (sorted
//!   runs per morsel, then pairwise merges), for comparators that define a
//!   total order.
//!
//! Determinism is a hard requirement: every helper here returns exactly the
//! bytes the sequential path produces (the `tests/property_parallel.rs`
//! harness asserts this for every operator, including validity bitmaps and
//! NULL ordering). The only caveat is floating-point `SUM`/`AVG`
//! aggregation, where per-morsel partial sums are merged in morsel order —
//! deterministic across runs, but a different addition order than the
//! row-order fold (exact whenever the addends are exactly representable,
//! e.g. integers below 2^53).

use crate::column::Column;
use crate::error::EngineResult;
use std::cell::RefCell;
use std::cmp::Ordering as CmpOrdering;
use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock, RwLock};

/// Execution configuration of the morsel-driven worker pool.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExecConfig {
    /// Number of worker threads an operator may use. `1` disables
    /// parallelism entirely and runs the original sequential code paths.
    pub threads: usize,
    /// Number of rows per morsel (the unit of work a worker claims).
    pub morsel_rows: usize,
}

impl ExecConfig {
    /// Default morsel size: large enough to amortize scheduling, small
    /// enough to keep all workers busy on mid-size tables.
    pub const DEFAULT_MORSEL_ROWS: usize = 4096;

    /// A configuration with explicit thread count and morsel size.
    pub fn new(threads: usize, morsel_rows: usize) -> Self {
        ExecConfig {
            threads: threads.max(1),
            morsel_rows: morsel_rows.max(1),
        }
    }

    /// The sequential configuration (`threads = 1`).
    pub fn sequential() -> Self {
        ExecConfig::new(1, Self::DEFAULT_MORSEL_ROWS)
    }

    /// A parallel configuration with the given thread count and the default
    /// morsel size.
    pub fn with_threads(threads: usize) -> Self {
        ExecConfig::new(threads, Self::DEFAULT_MORSEL_ROWS)
    }

    /// The configuration described by the environment: `CAESURA_THREADS`
    /// (hardware parallelism when unset) and `CAESURA_MORSEL_ROWS`
    /// ([`Self::DEFAULT_MORSEL_ROWS`] when unset).
    pub fn from_env() -> Self {
        let threads = std::env::var("CAESURA_THREADS")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .filter(|&t| t > 0)
            .unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(1)
            });
        let morsel_rows = std::env::var("CAESURA_MORSEL_ROWS")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .filter(|&m| m > 0)
            .unwrap_or(Self::DEFAULT_MORSEL_ROWS);
        ExecConfig::new(threads, morsel_rows)
    }

    /// Whether an operation over `rows` rows should use the worker pool.
    /// Requires more than one morsel of work, so the chunks handed to
    /// workers never re-enter the pool (their length is at most
    /// `morsel_rows`).
    pub fn should_parallelize(&self, rows: usize) -> bool {
        self.threads > 1 && rows > self.morsel_rows
    }
}

impl Default for ExecConfig {
    fn default() -> Self {
        ExecConfig::from_env()
    }
}

fn global() -> &'static RwLock<ExecConfig> {
    static GLOBAL: OnceLock<RwLock<ExecConfig>> = OnceLock::new();
    GLOBAL.get_or_init(|| RwLock::new(ExecConfig::from_env()))
}

thread_local! {
    static OVERRIDE: RefCell<Vec<ExecConfig>> = const { RefCell::new(Vec::new()) };
}

/// The configuration in effect on this thread: the innermost
/// [`with_config`] override, or the process-wide default.
pub fn exec_config() -> ExecConfig {
    if let Some(cfg) = OVERRIDE.with(|stack| stack.borrow().last().copied()) {
        return cfg;
    }
    *global().read().expect("exec config lock poisoned")
}

/// Replace the process-wide default configuration (used by benchmarks and
/// long-running services; per-query pinning should prefer [`with_config`]).
pub fn set_exec_config(config: ExecConfig) {
    *global().write().expect("exec config lock poisoned") = config;
}

/// Run `f` with `config` pinned as this thread's execution configuration.
/// Worker threads spawned by the pool inherit the caller's configuration, so
/// an override applies to a whole query, not just its top-level operator.
pub fn with_config<R>(config: ExecConfig, f: impl FnOnce() -> R) -> R {
    OVERRIDE.with(|stack| stack.borrow_mut().push(config));
    struct PopGuard;
    impl Drop for PopGuard {
        fn drop(&mut self) {
            OVERRIDE.with(|stack| {
                stack.borrow_mut().pop();
            });
        }
    }
    let _guard = PopGuard;
    f()
}

/// Split `0..len` into consecutive ranges of at most `morsel_rows` rows.
pub fn morsel_ranges(len: usize, morsel_rows: usize) -> Vec<Range<usize>> {
    let step = morsel_rows.max(1);
    let mut ranges = Vec::with_capacity(len.div_ceil(step).max(1));
    let mut start = 0;
    while start < len {
        let end = (start + step).min(len);
        ranges.push(start..end);
        start = end;
    }
    if ranges.is_empty() {
        ranges.push(0..0);
    }
    ranges
}

/// Map `f` over `items` on up to `threads` scoped workers, returning the
/// results in item order. Workers claim items from a shared atomic cursor
/// (morsel-driven scheduling) and inherit the caller's execution
/// configuration, so nested operators see the same knobs. Falls back to a
/// plain sequential map for one thread or one item.
pub fn map_parallel<T, R, F>(threads: usize, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    if threads <= 1 || items.len() <= 1 {
        return items.iter().map(f).collect();
    }
    let config = exec_config();
    let workers = threads.min(items.len());
    let cursor = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<R>>> = items.iter().map(|_| Mutex::new(None)).collect();
    let work = || loop {
        let i = cursor.fetch_add(1, Ordering::Relaxed);
        if i >= items.len() {
            break;
        }
        // Each index is claimed by exactly one worker, so the per-slot lock
        // is uncontended.
        let result = f(&items[i]);
        *slots[i].lock().expect("result slot lock poisoned") = Some(result);
    };
    std::thread::scope(|scope| {
        // The calling thread is worker 0 (its config is already in scope);
        // only `workers - 1` extra threads are spawned, keeping the OS
        // thread count at exactly the configured budget.
        for _ in 1..workers {
            scope.spawn(|| with_config(config, work));
        }
        work();
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("result slot lock poisoned")
                .expect("worker filled every claimed slot")
        })
        .collect()
}

/// Split `0..len` into morsels and map `f` over them in parallel, returning
/// the per-morsel results in morsel order.
pub fn map_morsels<R, F>(config: &ExecConfig, len: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(Range<usize>) -> R + Sync,
{
    let ranges = morsel_ranges(len, config.morsel_rows);
    map_parallel(config.threads, &ranges, |range| f(range.clone()))
}

/// Fallible [`map_morsels`]: returns the error of the earliest morsel that
/// failed (which, because each morsel evaluates its rows in order, is the
/// same error the sequential row-order evaluation reports).
///
/// Short-circuits: once any morsel fails, workers stop claiming new morsels
/// (best-effort, via a shared flag) instead of evaluating the rest of the
/// input. The canonical earliest-row error is then recovered by re-scanning
/// the morsels in order on the calling thread, re-running only the skipped
/// ones up to the first failure — bounded by exactly the work a sequential
/// scan stopping at that failure would do.
pub fn try_map_morsels<R, F>(config: &ExecConfig, len: usize, f: F) -> EngineResult<Vec<R>>
where
    R: Send,
    F: Fn(Range<usize>) -> EngineResult<R> + Sync,
{
    let cancelled = std::sync::atomic::AtomicBool::new(false);
    let slots: Vec<Option<EngineResult<R>>> = map_morsels(config, len, |range| {
        if cancelled.load(Ordering::Relaxed) {
            return None;
        }
        let result = f(range);
        if result.is_err() {
            cancelled.store(true, Ordering::Relaxed);
        }
        Some(result)
    });
    if !cancelled.load(Ordering::Relaxed) {
        return slots
            .into_iter()
            .map(|slot| slot.expect("no morsel was skipped without cancellation"))
            .collect();
    }
    // Error path: walk the morsels in order; everything before the first
    // failure either completed Ok or was skipped and is re-run here, so the
    // first error returned is the first error in row order.
    let mut out = Vec::new();
    for (range, slot) in morsel_ranges(len, config.morsel_rows)
        .into_iter()
        .zip(slots)
    {
        match slot {
            Some(Ok(value)) => out.push(value),
            Some(Err(error)) => return Err(error),
            None => out.push(f(range)?),
        }
    }
    Ok(out)
}

/// Parallel gather: split `indices` into morsels, `take` each chunk, and
/// concatenate the chunk columns in order. Byte-identical to
/// `column.take(indices)`.
pub fn take_column(column: &Column, indices: &[usize], config: &ExecConfig) -> Column {
    if !config.should_parallelize(indices.len()) || matches!(column, Column::Null(_)) {
        return column.take(indices);
    }
    let chunks = map_morsels(config, indices.len(), |range| column.take(&indices[range]));
    Column::concat(&chunks.iter().collect::<Vec<_>>())
}

/// Parallel optional gather (`None` slots become NULL padding), the
/// parallel sibling of [`Column::take_opt`].
pub fn take_opt_column(column: &Column, indices: &[Option<usize>], config: &ExecConfig) -> Column {
    if !config.should_parallelize(indices.len()) || matches!(column, Column::Null(_)) {
        return column.take_opt(indices);
    }
    let chunks = map_morsels(config, indices.len(), |range| {
        column.take_opt(&indices[range])
    });
    Column::concat(&chunks.iter().collect::<Vec<_>>())
}

/// Sort the permutation `0..len` by `cmp` in parallel: each morsel is sorted
/// into a run, then runs are merged pairwise (rounds of parallel merges).
///
/// `cmp` must define a **total** order — for row permutations that means a
/// final index tie-break — which makes the sorted permutation unique, so the
/// result is identical to a sequential stable sort regardless of how the
/// runs were split or merged.
pub fn sort_indices<F>(config: &ExecConfig, len: usize, cmp: F) -> Vec<usize>
where
    F: Fn(usize, usize) -> CmpOrdering + Sync,
{
    if !config.should_parallelize(len) {
        let mut indices: Vec<usize> = (0..len).collect();
        indices.sort_by(|&a, &b| cmp(a, b));
        return indices;
    }
    let mut runs: Vec<Vec<usize>> = map_morsels(config, len, |range| {
        let mut run: Vec<usize> = range.collect();
        // The comparator is total, so an unstable sort is observationally
        // stable.
        run.sort_unstable_by(|&a, &b| cmp(a, b));
        run
    });
    while runs.len() > 1 {
        let mut pairs: Vec<(Vec<usize>, Vec<usize>)> = Vec::with_capacity(runs.len() / 2);
        let mut leftover = None;
        let mut iter = runs.into_iter();
        while let Some(first) = iter.next() {
            match iter.next() {
                Some(second) => pairs.push((first, second)),
                None => leftover = Some(first),
            }
        }
        runs = map_parallel(config.threads, &pairs, |(a, b)| merge_runs(a, b, &cmp));
        if let Some(run) = leftover {
            runs.push(run);
        }
    }
    runs.pop().unwrap_or_default()
}

fn merge_runs<F>(a: &[usize], b: &[usize], cmp: &F) -> Vec<usize>
where
    F: Fn(usize, usize) -> CmpOrdering,
{
    let mut out = Vec::with_capacity(a.len() + b.len());
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        if cmp(a[i], b[j]) == CmpOrdering::Greater {
            out.push(b[j]);
            j += 1;
        } else {
            out.push(a[i]);
            i += 1;
        }
    }
    out.extend_from_slice(&a[i..]);
    out.extend_from_slice(&b[j..]);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Value;

    #[test]
    fn morsel_ranges_cover_the_input_exactly_once() {
        let ranges = morsel_ranges(10, 3);
        assert_eq!(ranges, vec![0..3, 3..6, 6..9, 9..10]);
        assert_eq!(morsel_ranges(0, 3), vec![0..0]);
        assert_eq!(morsel_ranges(3, 3), vec![0..3]);
    }

    #[test]
    fn map_morsels_preserves_order_under_parallelism() {
        let config = ExecConfig::new(4, 2);
        let sums: Vec<usize> = map_morsels(&config, 17, |range| range.sum());
        let expected: Vec<usize> = morsel_ranges(17, 2).into_iter().map(|r| r.sum()).collect();
        assert_eq!(sums, expected);
    }

    #[test]
    fn try_map_morsels_reports_the_earliest_error() {
        let config = ExecConfig::new(4, 1);
        let result = try_map_morsels(&config, 10, |range| {
            if range.start >= 3 {
                Err(crate::error::EngineError::execution(format!(
                    "boom at {}",
                    range.start
                )))
            } else {
                Ok(range.start)
            }
        });
        assert!(result.unwrap_err().to_string().contains("boom at 3"));
    }

    #[test]
    fn try_map_morsels_short_circuits_after_a_failure() {
        // With morsel 0 failing, later morsels may be skipped by workers and
        // are only re-run (in order) up to the first failure — so the count
        // of executed morsels never exceeds what cancellation allows, and
        // the reported error is still morsel 0's.
        let config = ExecConfig::new(2, 1);
        let executed = AtomicUsize::new(0);
        let result = try_map_morsels(&config, 64, |range| {
            executed.fetch_add(1, Ordering::Relaxed);
            if range.start == 0 {
                Err(crate::error::EngineError::execution("first morsel failed"))
            } else {
                Ok(range.start)
            }
        });
        assert!(result
            .unwrap_err()
            .to_string()
            .contains("first morsel failed"));
        assert!(executed.load(Ordering::Relaxed) <= 64);
    }

    #[test]
    fn with_config_overrides_and_restores() {
        let pinned = ExecConfig::new(3, 17);
        let seen = with_config(pinned, exec_config);
        assert_eq!(seen, pinned);
        assert_ne!(exec_config(), pinned);
    }

    #[test]
    fn workers_inherit_the_callers_config() {
        let pinned = ExecConfig::new(2, 1);
        let seen = with_config(pinned, || map_morsels(&pinned, 4, |_| exec_config()));
        assert!(seen.iter().all(|&cfg| cfg == pinned));
    }

    #[test]
    fn parallel_take_matches_sequential_take() {
        let column = Column::from_values((0..100).map(Value::Int).collect());
        let indices: Vec<usize> = (0..100).rev().collect();
        let config = ExecConfig::new(4, 7);
        assert_eq!(
            take_column(&column, &indices, &config),
            column.take(&indices)
        );
    }

    #[test]
    fn sort_indices_matches_sequential_stable_sort() {
        let keys = [5, 1, 4, 1, 5, 9, 2, 6, 5, 3, 5, 8, 9, 7, 9, 3];
        let cmp = |a: usize, b: usize| keys[a].cmp(&keys[b]).then(a.cmp(&b));
        let mut expected: Vec<usize> = (0..keys.len()).collect();
        expected.sort_by(|&a, &b| cmp(a, b));
        let config = ExecConfig::new(4, 3);
        assert_eq!(sort_indices(&config, keys.len(), cmp), expected);
    }
}
