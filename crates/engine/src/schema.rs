//! Schemas: named, typed fields describing table layouts.
//!
//! Schemas also carry the human-readable descriptions that CAESURA renders
//! into its prompts (Figure 3 of the paper shows the
//! `table(num_rows=..., columns=[...])` notation).

use crate::error::{EngineError, EngineResult};
use crate::value::DataType;
use std::fmt;

/// A single column definition.
#[derive(Debug, Clone, PartialEq)]
pub struct Field {
    /// Column name (possibly qualified as `table.column` after a join).
    pub name: String,
    /// Column type.
    pub data_type: DataType,
    /// Optional human description used in discovery/planning prompts.
    pub description: Option<String>,
}

impl Field {
    /// Create a field without a description.
    pub fn new(name: impl Into<String>, data_type: DataType) -> Self {
        Field {
            name: name.into(),
            data_type,
            description: None,
        }
    }

    /// Create a field with a prompt description.
    pub fn with_description(
        name: impl Into<String>,
        data_type: DataType,
        description: impl Into<String>,
    ) -> Self {
        Field {
            name: name.into(),
            data_type,
            description: Some(description.into()),
        }
    }

    /// The unqualified part of the name (`century` for `metadata.century`).
    pub fn base_name(&self) -> &str {
        match self.name.rsplit_once('.') {
            Some((_, base)) => base,
            None => &self.name,
        }
    }

    /// The qualifier of the name, if any (`metadata` for `metadata.century`).
    pub fn qualifier(&self) -> Option<&str> {
        self.name.rsplit_once('.').map(|(q, _)| q)
    }
}

/// An ordered collection of fields.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Schema {
    fields: Vec<Field>,
}

impl Schema {
    /// Create a schema from fields, rejecting duplicate names.
    pub fn new(fields: Vec<Field>) -> EngineResult<Self> {
        for (i, field) in fields.iter().enumerate() {
            if fields[..i].iter().any(|f| f.name == field.name) {
                return Err(EngineError::schema(format!(
                    "duplicate column name '{}'",
                    field.name
                )));
            }
        }
        Ok(Schema { fields })
    }

    /// Create an empty schema.
    pub fn empty() -> Self {
        Schema { fields: Vec::new() }
    }

    /// Convenience constructor from `(name, type)` pairs.
    pub fn from_pairs(pairs: &[(&str, DataType)]) -> Self {
        Schema {
            fields: pairs
                .iter()
                .map(|(name, dt)| Field::new(*name, *dt))
                .collect(),
        }
    }

    /// The fields in order.
    pub fn fields(&self) -> &[Field] {
        &self.fields
    }

    /// Number of fields.
    pub fn len(&self) -> usize {
        self.fields.len()
    }

    /// Whether the schema has no fields.
    pub fn is_empty(&self) -> bool {
        self.fields.is_empty()
    }

    /// Column names in order.
    pub fn names(&self) -> Vec<String> {
        self.fields.iter().map(|f| f.name.clone()).collect()
    }

    /// Field at a given position.
    pub fn field(&self, index: usize) -> Option<&Field> {
        self.fields.get(index)
    }

    /// Append a field, rejecting duplicates.
    pub fn push(&mut self, field: Field) -> EngineResult<()> {
        if self.fields.iter().any(|f| f.name == field.name) {
            return Err(EngineError::schema(format!(
                "duplicate column name '{}'",
                field.name
            )));
        }
        self.fields.push(field);
        Ok(())
    }

    /// Resolve a (possibly qualified, possibly unqualified) column reference
    /// to a field index. Resolution rules:
    ///
    /// 1. exact match on the full name;
    /// 2. otherwise match on the unqualified base name — if exactly one field
    ///    has that base name it wins, several matches are ambiguous;
    /// 3. otherwise the column is unknown.
    pub fn resolve(&self, name: &str) -> EngineResult<usize> {
        if let Some(idx) = self.fields.iter().position(|f| f.name == name) {
            return Ok(idx);
        }
        // Case-insensitive exact match as a fallback (SQL identifiers).
        if let Some(idx) = self
            .fields
            .iter()
            .position(|f| f.name.eq_ignore_ascii_case(name))
        {
            return Ok(idx);
        }
        let base = match name.rsplit_once('.') {
            Some((_, b)) => b,
            None => name,
        };
        let matches: Vec<usize> = self
            .fields
            .iter()
            .enumerate()
            .filter(|(_, f)| f.base_name().eq_ignore_ascii_case(base))
            .map(|(i, _)| i)
            .collect();
        match matches.len() {
            1 => Ok(matches[0]),
            0 => Err(EngineError::UnknownColumn {
                name: name.to_string(),
                available: self.names(),
            }),
            _ => {
                // If the reference was qualified, prefer the candidate whose
                // qualifier matches.
                if let Some((qualifier, _)) = name.rsplit_once('.') {
                    if let Some(&idx) = matches.iter().find(|&&i| {
                        self.fields[i]
                            .qualifier()
                            .map(|q| q.eq_ignore_ascii_case(qualifier))
                            .unwrap_or(false)
                    }) {
                        return Ok(idx);
                    }
                }
                Err(EngineError::AmbiguousColumn {
                    name: name.to_string(),
                    candidates: matches
                        .into_iter()
                        .map(|i| self.fields[i].name.clone())
                        .collect(),
                })
            }
        }
    }

    /// Whether a column reference can be resolved.
    pub fn contains(&self, name: &str) -> bool {
        self.resolve(name).is_ok()
    }

    /// Merge two schemas for a join, qualifying colliding names with the
    /// provided table aliases.
    pub fn join(&self, left_alias: &str, other: &Schema, right_alias: &str) -> Schema {
        let mut fields = Vec::with_capacity(self.len() + other.len());
        for field in &self.fields {
            let collides = other
                .fields
                .iter()
                .any(|f| f.base_name() == field.base_name());
            let name = if collides && field.qualifier().is_none() {
                format!("{left_alias}.{}", field.name)
            } else {
                field.name.clone()
            };
            fields.push(Field {
                name,
                data_type: field.data_type,
                description: field.description.clone(),
            });
        }
        for field in &other.fields {
            let collides = self
                .fields
                .iter()
                .any(|f| f.base_name() == field.base_name());
            let name = if collides && field.qualifier().is_none() {
                format!("{right_alias}.{}", field.name)
            } else {
                field.name.clone()
            };
            // Guard against exact duplicates after qualification.
            let mut final_name = name.clone();
            let mut suffix = 1;
            while fields.iter().any(|f: &Field| f.name == final_name) {
                final_name = format!("{name}_{suffix}");
                suffix += 1;
            }
            fields.push(Field {
                name: final_name,
                data_type: field.data_type,
                description: field.description.clone(),
            });
        }
        Schema { fields }
    }

    /// Render the schema in the `columns=['name': 'type', ...]` notation used
    /// in prompts (Figure 3 of the paper).
    pub fn prompt_notation(&self) -> String {
        let cols: Vec<String> = self
            .fields
            .iter()
            .map(|f| format!("'{}': '{}'", f.name, f.data_type.prompt_name()))
            .collect();
        format!("[{}]", cols.join(", "))
    }

    /// Names of multi-modal columns (IMAGE / TEXT typed).
    pub fn multimodal_columns(&self) -> Vec<String> {
        self.fields
            .iter()
            .filter(|f| f.data_type.is_multimodal())
            .map(|f| f.name.clone())
            .collect()
    }
}

impl fmt::Display for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.prompt_notation())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Schema {
        Schema::from_pairs(&[
            ("title", DataType::Str),
            ("inception", DataType::Str),
            ("img_path", DataType::Str),
        ])
    }

    #[test]
    fn duplicate_names_are_rejected() {
        let schema = Schema::new(vec![
            Field::new("a", DataType::Int),
            Field::new("a", DataType::Str),
        ]);
        assert!(schema.is_err());
    }

    #[test]
    fn resolve_exact_and_case_insensitive() {
        let schema = sample();
        assert_eq!(schema.resolve("title").unwrap(), 0);
        assert_eq!(schema.resolve("Title").unwrap(), 0);
        assert!(schema.resolve("nonexistent").is_err());
    }

    #[test]
    fn resolve_qualified_reference_by_suffix() {
        let schema = Schema::from_pairs(&[("metadata.title", DataType::Str)]);
        assert_eq!(schema.resolve("title").unwrap(), 0);
        assert_eq!(schema.resolve("metadata.title").unwrap(), 0);
    }

    #[test]
    fn join_qualifies_colliding_columns() {
        let left = Schema::from_pairs(&[("img_path", DataType::Str), ("title", DataType::Str)]);
        let right = Schema::from_pairs(&[("img_path", DataType::Str), ("image", DataType::Image)]);
        let joined = left.join("metadata", &right, "images");
        assert_eq!(joined.len(), 4);
        assert!(joined.contains("metadata.img_path"));
        assert!(joined.contains("images.img_path"));
        assert!(joined.contains("title"));
        assert!(joined.contains("image"));
        // Unqualified "img_path" is now ambiguous.
        assert!(matches!(
            joined.resolve("img_path"),
            Err(EngineError::AmbiguousColumn { .. })
        ));
    }

    #[test]
    fn ambiguous_qualified_reference_prefers_matching_qualifier() {
        let left = Schema::from_pairs(&[("img_path", DataType::Str)]);
        let right = Schema::from_pairs(&[("img_path", DataType::Str)]);
        let joined = left.join("m", &right, "i");
        let idx = joined.resolve("i.img_path").unwrap();
        assert_eq!(joined.field(idx).unwrap().name, "i.img_path");
    }

    #[test]
    fn prompt_notation_matches_paper_style() {
        let schema = Schema::from_pairs(&[("img_path", DataType::Str), ("image", DataType::Image)]);
        assert_eq!(
            schema.prompt_notation(),
            "['img_path': 'str', 'image': 'IMAGE']"
        );
    }

    #[test]
    fn multimodal_columns_are_detected() {
        let schema = Schema::from_pairs(&[
            ("game_id", DataType::Int),
            ("report", DataType::Text),
            ("image", DataType::Image),
        ]);
        assert_eq!(schema.multimodal_columns(), vec!["report", "image"]);
    }

    #[test]
    fn push_rejects_duplicates() {
        let mut schema = sample();
        assert!(schema.push(Field::new("title", DataType::Int)).is_err());
        assert!(schema.push(Field::new("century", DataType::Int)).is_ok());
        assert_eq!(schema.len(), 4);
    }
}
