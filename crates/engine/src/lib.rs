//! # caesura-engine
//!
//! The relational substrate of the CAESURA reproduction: an in-memory,
//! dynamically typed relational engine playing the role that SQLite plays in
//! the original prototype ("CAESURA has access to all relational operators
//! supported by SQLite", §4 of the paper).
//!
//! The crate provides:
//!
//! * [`Value`] / [`DataType`] — dynamically typed cells, including the
//!   multi-modal `IMAGE` and `TEXT` types the planner reasons about,
//! * [`Column`] / [`Bitmap`] — typed, `Arc`-shared columnar storage with
//!   validity bitmaps,
//! * [`dict`] — dictionary encoding for low-cardinality string columns
//!   (`CAESURA_DICT_ENCODE`), letting joins, group-bys, sorts, and equality
//!   filters run on `u32` codes instead of strings,
//! * [`Schema`] / [`Table`] — columnar tables (with a row-view iterator) and
//!   the prompt-rendering helpers CAESURA uses to describe data to the
//!   language model,
//! * [`Expr`] — scalar expressions with both a vectorized column-at-a-time
//!   evaluator and a row-at-a-time evaluator,
//! * [`ops`] — vectorized physical relational operators (filter, project,
//!   hash join, aggregation, sort, limit, distinct, union),
//! * [`parallel`] — the morsel-driven parallel execution subsystem (see
//!   below),
//! * [`sql`] — a read-only SQL subset (parser + executor) used by the SQL
//!   physical operators of CAESURA's plans,
//! * [`Catalog`] — the named-table registry backing a data lake.
//!
//! ## Parallel execution and `ExecConfig`
//!
//! The hot kernels (expression evaluation, filter selection vectors,
//! take/gather, hash-join build/probe, grouped aggregation, sort) run
//! morsel-parallel on a scoped `std::thread` worker pool: row ranges are
//! split into fixed-size morsels that workers claim from a shared cursor.
//! All merges happen in morsel order, so results are deterministic and —
//! with the floating-point SUM/AVG caveat documented in [`parallel`] —
//! byte-identical to sequential execution.
//!
//! The knob is [`ExecConfig`] `{ threads, morsel_rows }`:
//!
//! * `threads = 1` disables the pool entirely and runs the original
//!   sequential code paths;
//! * the process default comes from the `CAESURA_THREADS` /
//!   `CAESURA_MORSEL_ROWS` environment variables (hardware parallelism and
//!   4096 rows otherwise) and can be replaced with
//!   [`parallel::set_exec_config`];
//! * a configuration can be pinned per catalog
//!   ([`Catalog::set_exec_config`]) or per scope
//!   ([`parallel::with_config`]); the `caesura-core` session and executor
//!   expose the same knob for whole queries.
//!
//! ```
//! use caesura_engine::{Catalog, Schema, TableBuilder, DataType, Value, sql::run_sql};
//!
//! let schema = Schema::from_pairs(&[("title", DataType::Str), ("year", DataType::Int)]);
//! let mut builder = TableBuilder::new("paintings", schema);
//! builder.push_values::<_, Value>(vec!["Irises".into(), 1889i64.into()]).unwrap();
//! let mut catalog = Catalog::new();
//! catalog.register(builder.build());
//!
//! let result = run_sql(&catalog, "SELECT title FROM paintings WHERE year > 1800").unwrap();
//! assert_eq!(result.num_rows(), 1);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod catalog;
pub mod column;
pub mod dict;
pub mod error;
pub mod expr;
pub mod ops;
pub mod parallel;
pub mod schema;
pub mod sql;
pub mod table;
pub mod value;

pub use catalog::{Catalog, ForeignKey};
pub use column::{Bitmap, Column, ColumnBuilder};
pub use error::{EngineError, EngineResult};
pub use expr::{BinaryOp, CompiledExpr, Expr, ScalarFunc, UnaryOp};
pub use ops::{AggCall, AggFunc, JoinType, Projection, SortKey, SortOrder};
pub use parallel::ExecConfig;
pub use schema::{Field, Schema};
pub use table::{Row, RowRef, Rows, Table, TableBuilder};
pub use value::{DataType, DateValue, Value};
