//! Error types for the relational engine.
//!
//! Every fallible engine operation returns [`EngineError`]. The error messages
//! are deliberately descriptive because CAESURA feeds them back into the
//! error-recovery prompt of the language model (see the `caesura-core` crate):
//! the better the message, the more likely the simulated planner is able to
//! diagnose which phase the mistake originated in.

use std::fmt;

/// Result alias used throughout the engine crate.
pub type EngineResult<T> = Result<T, EngineError>;

/// Errors raised by the relational engine substrate.
#[derive(Debug, Clone, PartialEq)]
pub enum EngineError {
    /// A referenced column does not exist in the input schema.
    UnknownColumn {
        /// The column name that could not be resolved.
        name: String,
        /// The columns that were available at resolution time.
        available: Vec<String>,
    },
    /// A referenced table does not exist in the catalog.
    UnknownTable {
        /// The table name that could not be resolved.
        name: String,
        /// The tables that exist in the catalog.
        available: Vec<String>,
    },
    /// A column reference is ambiguous (matches several qualified columns).
    AmbiguousColumn {
        /// The ambiguous name.
        name: String,
        /// All qualified candidates that matched.
        candidates: Vec<String>,
    },
    /// A value had an unexpected type for the requested operation.
    TypeMismatch {
        /// Human-readable description of the operation being evaluated.
        context: String,
        /// What type was expected.
        expected: String,
        /// What was actually found.
        found: String,
    },
    /// SQL text could not be tokenized or parsed.
    SqlParse {
        /// Description of the syntax problem.
        message: String,
        /// Byte offset in the SQL string where the problem occurred, if known.
        position: Option<usize>,
    },
    /// The SQL statement is syntactically valid but not allowed
    /// (e.g. `UPDATE`/`DELETE`: the engine is read-only by design, §5 of the paper).
    ForbiddenStatement {
        /// The statement keyword that was rejected.
        statement: String,
    },
    /// An aggregate function was used in an invalid position or with invalid inputs.
    InvalidAggregate {
        /// Description of the problem.
        message: String,
    },
    /// A scalar function received the wrong number or type of arguments.
    InvalidFunctionCall {
        /// Function name.
        function: String,
        /// Description of the problem.
        message: String,
    },
    /// Schema construction failed (duplicate names, arity mismatch, ...).
    SchemaError {
        /// Description of the problem.
        message: String,
    },
    /// Row arity did not match the schema when building a table.
    ArityMismatch {
        /// Number of fields the schema declares.
        expected: usize,
        /// Number of values supplied for the offending row.
        found: usize,
        /// Index of the offending row.
        row: usize,
    },
    /// Division by zero during expression evaluation.
    DivisionByZero,
    /// Any other execution-time failure.
    Execution {
        /// Description of the problem.
        message: String,
    },
}

impl EngineError {
    /// Convenience constructor for [`EngineError::Execution`].
    pub fn execution(message: impl Into<String>) -> Self {
        EngineError::Execution {
            message: message.into(),
        }
    }

    /// Convenience constructor for [`EngineError::SchemaError`].
    pub fn schema(message: impl Into<String>) -> Self {
        EngineError::SchemaError {
            message: message.into(),
        }
    }

    /// Convenience constructor for [`EngineError::SqlParse`] without a position.
    pub fn sql(message: impl Into<String>) -> Self {
        EngineError::SqlParse {
            message: message.into(),
            position: None,
        }
    }

    /// Convenience constructor for [`EngineError::TypeMismatch`].
    pub fn type_mismatch(
        context: impl Into<String>,
        expected: impl Into<String>,
        found: impl Into<String>,
    ) -> Self {
        EngineError::TypeMismatch {
            context: context.into(),
            expected: expected.into(),
            found: found.into(),
        }
    }
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::UnknownColumn { name, available } => write!(
                f,
                "unknown column '{name}'; available columns are [{}]",
                available.join(", ")
            ),
            EngineError::UnknownTable { name, available } => write!(
                f,
                "unknown table '{name}'; available tables are [{}]",
                available.join(", ")
            ),
            EngineError::AmbiguousColumn { name, candidates } => write!(
                f,
                "ambiguous column '{name}'; candidates are [{}]",
                candidates.join(", ")
            ),
            EngineError::TypeMismatch {
                context,
                expected,
                found,
            } => write!(
                f,
                "type mismatch in {context}: expected {expected}, found {found}"
            ),
            EngineError::SqlParse { message, position } => match position {
                Some(pos) => write!(f, "SQL parse error at byte {pos}: {message}"),
                None => write!(f, "SQL parse error: {message}"),
            },
            EngineError::ForbiddenStatement { statement } => write!(
                f,
                "statement '{statement}' is not allowed: the engine only executes read-only SELECT queries"
            ),
            EngineError::InvalidAggregate { message } => {
                write!(f, "invalid aggregate: {message}")
            }
            EngineError::InvalidFunctionCall { function, message } => {
                write!(f, "invalid call to function '{function}': {message}")
            }
            EngineError::SchemaError { message } => write!(f, "schema error: {message}"),
            EngineError::ArityMismatch {
                expected,
                found,
                row,
            } => write!(
                f,
                "row {row} has {found} values but the schema declares {expected} fields"
            ),
            EngineError::DivisionByZero => write!(f, "division by zero"),
            EngineError::Execution { message } => write!(f, "execution error: {message}"),
        }
    }
}

impl std::error::Error for EngineError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_unknown_column_lists_available() {
        let err = EngineError::UnknownColumn {
            name: "centry".into(),
            available: vec!["century".into(), "title".into()],
        };
        let text = err.to_string();
        assert!(text.contains("centry"));
        assert!(text.contains("century"));
        assert!(text.contains("title"));
    }

    #[test]
    fn display_forbidden_statement_mentions_read_only() {
        let err = EngineError::ForbiddenStatement {
            statement: "UPDATE".into(),
        };
        assert!(err.to_string().contains("read-only"));
    }

    #[test]
    fn constructors_produce_expected_variants() {
        assert!(matches!(
            EngineError::execution("boom"),
            EngineError::Execution { .. }
        ));
        assert!(matches!(
            EngineError::schema("bad"),
            EngineError::SchemaError { .. }
        ));
        assert!(matches!(
            EngineError::sql("bad"),
            EngineError::SqlParse { .. }
        ));
        assert!(matches!(
            EngineError::type_mismatch("op", "Int", "Str"),
            EngineError::TypeMismatch { .. }
        ));
    }

    #[test]
    fn sql_parse_error_with_position_displays_offset() {
        let err = EngineError::SqlParse {
            message: "unexpected token".into(),
            position: Some(17),
        };
        assert!(err.to_string().contains("byte 17"));
    }
}
