//! The catalog: a named collection of tables plus the metadata CAESURA needs
//! to describe a data lake to the language model (descriptions, foreign keys).
//!
//! Tables are stored behind [`Arc`], so lookups and catalog clones hand out
//! shared references instead of deep copies — the interleaved executor
//! re-reads base tables after every mapping step, which previously cloned
//! every row each time.

use crate::error::{EngineError, EngineResult};
use crate::parallel::ExecConfig;
use crate::table::Table;
use std::collections::BTreeMap;
use std::sync::Arc;

/// A declared foreign-key style relationship between two tables. The paper's
/// mapping-phase prompt lists `foreign_keys=[...]` for every table, which
/// helps the model choose join columns.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ForeignKey {
    /// Referencing table.
    pub from_table: String,
    /// Referencing column.
    pub from_column: String,
    /// Referenced table.
    pub to_table: String,
    /// Referenced column.
    pub to_column: String,
}

impl ForeignKey {
    /// Build a foreign key declaration.
    pub fn new(
        from_table: impl Into<String>,
        from_column: impl Into<String>,
        to_table: impl Into<String>,
        to_column: impl Into<String>,
    ) -> Self {
        ForeignKey {
            from_table: from_table.into(),
            from_column: from_column.into(),
            to_table: to_table.into(),
            to_column: to_column.into(),
        }
    }

    /// Render in prompt notation, e.g. `teams.name -> team_to_games.name`.
    pub fn prompt_notation(&self) -> String {
        format!(
            "{}.{} -> {}.{}",
            self.from_table, self.from_column, self.to_table, self.to_column
        )
    }
}

/// An in-memory catalog of named tables.
///
/// Iteration order is deterministic (sorted by table name) so that prompts —
/// and therefore the behaviour of the simulated LLM — are reproducible.
#[derive(Debug, Clone, Default)]
pub struct Catalog {
    tables: BTreeMap<String, Arc<Table>>,
    foreign_keys: Vec<ForeignKey>,
    /// Optional pinned execution configuration: SQL run against this catalog
    /// (see [`sql::run_sql`](crate::sql::run_sql)) uses these thread/morsel
    /// knobs instead of the process default.
    exec: Option<ExecConfig>,
}

impl Catalog {
    /// Create an empty catalog.
    pub fn new() -> Self {
        Catalog::default()
    }

    /// Register (or replace) a table under its own name.
    pub fn register(&mut self, table: Table) {
        self.tables
            .insert(table.name().to_string(), Arc::new(table));
    }

    /// Register (or replace) an already-shared table under its own name —
    /// an `Arc` bump, no table data is touched.
    pub fn register_shared(&mut self, table: Arc<Table>) {
        self.tables.insert(table.name().to_string(), table);
    }

    /// Register a table under an explicit name.
    pub fn register_as(&mut self, name: impl Into<String>, table: Table) {
        let name = name.into();
        self.tables
            .insert(name.clone(), Arc::new(table.renamed(name)));
    }

    /// Remove a table.
    pub fn remove(&mut self, name: &str) -> Option<Arc<Table>> {
        self.tables.remove(name)
    }

    /// Declare a foreign-key relationship.
    pub fn add_foreign_key(&mut self, fk: ForeignKey) {
        self.foreign_keys.push(fk);
    }

    /// All declared foreign keys.
    pub fn foreign_keys(&self) -> &[ForeignKey] {
        &self.foreign_keys
    }

    /// Pin the execution configuration (worker threads, morsel size) used
    /// when SQL runs against this catalog. Cloned catalogs inherit the pin.
    pub fn set_exec_config(&mut self, config: ExecConfig) {
        self.exec = Some(config);
    }

    /// Builder-style [`Catalog::set_exec_config`].
    pub fn with_exec_config(mut self, config: ExecConfig) -> Self {
        self.exec = Some(config);
        self
    }

    /// The pinned execution configuration, if any.
    pub fn exec_config(&self) -> Option<ExecConfig> {
        self.exec
    }

    /// Foreign keys that involve a given table.
    pub fn foreign_keys_for(&self, table: &str) -> Vec<&ForeignKey> {
        self.foreign_keys
            .iter()
            .filter(|fk| fk.from_table == table || fk.to_table == table)
            .collect()
    }

    /// Look a table up by name (case-insensitive fallback). The returned
    /// `Arc` can be cloned to share the table without copying any data.
    pub fn table(&self, name: &str) -> EngineResult<&Arc<Table>> {
        if let Some(table) = self.tables.get(name) {
            return Ok(table);
        }
        if let Some((_, table)) = self
            .tables
            .iter()
            .find(|(key, _)| key.eq_ignore_ascii_case(name))
        {
            return Ok(table);
        }
        Err(EngineError::UnknownTable {
            name: name.to_string(),
            available: self.table_names(),
        })
    }

    /// Look a table up and return a shared handle (an `Arc` bump).
    pub fn table_shared(&self, name: &str) -> EngineResult<Arc<Table>> {
        self.table(name).map(Arc::clone)
    }

    /// Whether a table exists.
    pub fn contains(&self, name: &str) -> bool {
        self.table(name).is_ok()
    }

    /// All table names, sorted.
    pub fn table_names(&self) -> Vec<String> {
        self.tables.keys().cloned().collect()
    }

    /// All tables, sorted by name.
    pub fn tables(&self) -> impl Iterator<Item = &Arc<Table>> {
        self.tables.values()
    }

    /// Number of registered tables.
    pub fn len(&self) -> usize {
        self.tables.len()
    }

    /// Whether the catalog is empty.
    pub fn is_empty(&self) -> bool {
        self.tables.is_empty()
    }

    /// Render every table in the `name = table(...)` notation used by the
    /// planning and mapping prompts (Figure 3 of the paper), one per line.
    pub fn prompt_summary(&self) -> String {
        let mut lines = Vec::with_capacity(self.tables.len());
        for table in self.tables.values() {
            let mut line = format!(" - {}", table.prompt_summary());
            let fks = self.foreign_keys_for(table.name());
            if !fks.is_empty() {
                let rendered: Vec<String> = fks.iter().map(|fk| fk.prompt_notation()).collect();
                line.push_str(&format!(" foreign_keys=[{}]", rendered.join(", ")));
            }
            lines.push(line);
        }
        lines.join("\n")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Schema;
    use crate::table::TableBuilder;
    use crate::value::DataType;

    fn sample_table(name: &str) -> Table {
        let schema = Schema::from_pairs(&[("id", DataType::Int)]);
        TableBuilder::new(name, schema).build()
    }

    #[test]
    fn register_and_lookup() {
        let mut catalog = Catalog::new();
        catalog.register(sample_table("teams"));
        assert!(catalog.contains("teams"));
        assert!(catalog.contains("TEAMS"));
        assert!(catalog.table("players").is_err());
        assert_eq!(catalog.len(), 1);
    }

    #[test]
    fn register_as_renames_the_table() {
        let mut catalog = Catalog::new();
        catalog.register_as("game_reports", sample_table("raw"));
        assert_eq!(
            catalog.table("game_reports").unwrap().name(),
            "game_reports"
        );
    }

    #[test]
    fn unknown_table_error_lists_available_tables() {
        let mut catalog = Catalog::new();
        catalog.register(sample_table("teams"));
        catalog.register(sample_table("players"));
        let err = catalog.table("gmaes").unwrap_err();
        let text = err.to_string();
        assert!(text.contains("players"));
        assert!(text.contains("teams"));
    }

    #[test]
    fn prompt_summary_is_sorted_and_includes_foreign_keys() {
        let mut catalog = Catalog::new();
        catalog.register(sample_table("teams"));
        catalog.register(sample_table("games"));
        catalog.add_foreign_key(ForeignKey::new("games", "team_id", "teams", "id"));
        let summary = catalog.prompt_summary();
        let games_pos = summary.find("games =").unwrap();
        let teams_pos = summary.find("teams =").unwrap();
        assert!(games_pos < teams_pos, "tables should be sorted by name");
        assert!(summary.contains("games.team_id -> teams.id"));
    }

    #[test]
    fn foreign_keys_for_filters_by_table() {
        let mut catalog = Catalog::new();
        catalog.add_foreign_key(ForeignKey::new("a", "x", "b", "y"));
        catalog.add_foreign_key(ForeignKey::new("c", "x", "d", "y"));
        assert_eq!(catalog.foreign_keys_for("a").len(), 1);
        assert_eq!(catalog.foreign_keys_for("d").len(), 1);
        assert_eq!(catalog.foreign_keys_for("z").len(), 0);
        assert_eq!(catalog.foreign_keys().len(), 2);
    }
}
