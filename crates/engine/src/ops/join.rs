//! Hash joins.
//!
//! The paper's example plans join the metadata table with the
//! `painting_images` collection on `img_path`, and the rotowire `teams` table
//! with `team_to_games` / `game_reports`. All of those are equi-joins,
//! implemented as a classic build/probe hash join over the key *columns*:
//! the probe phase produces matching index vectors for both sides, and the
//! output columns are gathered in one pass each (strings move as `Arc` bumps,
//! never as character copies). Typed fast paths hash `i64` and `&str` keys
//! directly; other key types fall back to the stable rendered group key.
//! A left-outer variant is provided for completeness.

use crate::column::Column;
use crate::error::{EngineError, EngineResult};
use crate::table::Table;
use std::collections::HashMap;
use std::sync::Arc;

/// The supported join types.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JoinType {
    /// Inner equi-join.
    Inner,
    /// Left outer equi-join (unmatched left rows padded with NULLs).
    Left,
}

/// Hash-join `left` and `right` on equality of `left_key` and `right_key`.
///
/// The output schema is the join of both schemas with colliding column names
/// qualified by the input table names (see [`Schema::join`](crate::schema::Schema::join)).
pub fn hash_join(
    left: &Table,
    right: &Table,
    left_key: &str,
    right_key: &str,
    join_type: JoinType,
) -> EngineResult<Table> {
    let left_idx = left.schema().resolve(left_key)?;
    let right_idx = right.schema().resolve(right_key)?;

    let schema = left
        .schema()
        .join(left.name(), right.schema(), right.name());

    let (left_indices, right_indices) = probe_indices(
        &left.columns()[left_idx],
        &right.columns()[right_idx],
        join_type,
    );

    // Gather both sides (morsel-parallel for large outputs). Inner joins
    // emit dense right indices, so the cheaper non-optional take kernel
    // applies without a scan-and-repack pass.
    let config = crate::parallel::exec_config();
    let mut columns: Vec<Arc<Column>> = Vec::with_capacity(schema.len());
    for col in left.columns() {
        columns.push(Arc::new(crate::parallel::take_column(
            col,
            &left_indices,
            &config,
        )));
    }
    match &right_indices {
        RightIndices::Dense(plain) => {
            for col in right.columns() {
                columns.push(Arc::new(crate::parallel::take_column(col, plain, &config)));
            }
        }
        RightIndices::Padded(padded) => {
            for col in right.columns() {
                columns.push(Arc::new(crate::parallel::take_opt_column(
                    col, padded, &config,
                )));
            }
        }
    }

    Table::from_columns(
        format!("{}_{}_joined", left.name(), right.name()),
        schema,
        columns,
    )
    .map_err(|_| {
        EngineError::execution(
            "internal error: join produced columns that do not match the joined schema",
        )
    })
}

/// Build a hash table over the right key column, probe with the left key
/// column, and emit matching index pairs (right index `None` = NULL padding
/// for unmatched left rows under a left-outer join).
///
/// Both phases are morsel-parallel on large inputs: the build side is
/// partitioned into per-morsel hash tables that are merged in morsel order
/// (so each key's match list stays in ascending row order, exactly as the
/// sequential build produces it), and the probe side emits per-morsel index
/// chunks that are concatenated in morsel order. The result is byte-identical
/// to the sequential build/probe.
/// Right-side match indices: inner joins emit a dense index per output row;
/// left joins pad unmatched rows with `None`.
enum RightIndices {
    Dense(Vec<usize>),
    Padded(Vec<Option<usize>>),
}

fn probe_indices(
    left_key: &Column,
    right_key: &Column,
    join_type: JoinType,
) -> (Vec<usize>, RightIndices) {
    let config = crate::parallel::exec_config();
    // Typed fast path: both sides are i64 keys.
    if let (Some((ldata, lvalid)), Some((rdata, rvalid))) =
        (left_key.as_int64(), right_key.as_int64())
    {
        let build = build_partitioned(
            rdata.len(),
            &config,
            |range, map: &mut HashMap<i64, Vec<usize>>| {
                for i in range {
                    if rvalid.is_valid(i) {
                        map.entry(rdata[i]).or_default().push(i);
                    }
                }
            },
        );
        return emit_partitioned(ldata.len(), join_type, &config, |i, _buf: &mut String| {
            if lvalid.is_valid(i) {
                build.get(&ldata[i]).map(Vec::as_slice)
            } else {
                None
            }
        });
    }
    // Code-native fast path: both sides are dictionary-encoded string keys.
    // Build and probe hash `u32` codes instead of strings; when the two
    // columns do not share one entry table, the probe side's entries are
    // remapped into the build side's code space first — one string hash per
    // *entry* instead of one per row.
    if let (Some((lcodes, ldict, lvalid)), Some((rcodes, rdict, rvalid))) =
        (left_key.as_dict(), right_key.as_dict())
    {
        let remap: Option<Vec<u32>> = if Arc::ptr_eq(ldict, rdict) {
            None
        } else {
            Some(crate::dict::remap_entries(ldict, rdict))
        };
        let build = build_partitioned(
            rcodes.len(),
            &config,
            |range, map: &mut HashMap<u32, Vec<usize>>| {
                for i in range {
                    if rvalid.is_valid(i) {
                        map.entry(rcodes[i]).or_default().push(i);
                    }
                }
            },
        );
        // Resolve the build matches once per probe *entry*; the per-row probe
        // is then a plain index, no hashing at all. `NO_REMAP` codes are
        // never in the build table, so entries absent from the build
        // dictionary simply miss.
        let per_entry: Vec<Option<&Vec<usize>>> = (0..ldict.len())
            .map(|e| {
                let code = match &remap {
                    None => e as u32,
                    Some(m) => m[e],
                };
                build.get(&code)
            })
            .collect();
        return emit_partitioned(lcodes.len(), join_type, &config, |i, _buf: &mut String| {
            if lvalid.is_valid(i) {
                per_entry[lcodes[i] as usize].map(Vec::as_slice)
            } else {
                None
            }
        });
    }
    // Mixed fast path: dictionary-encoded probe side against a plain string
    // build side — hash each probe *entry* once, then look rows up by code.
    if let (Some((lcodes, ldict, lvalid)), Some((rdata, rvalid))) =
        (left_key.as_dict(), right_key.as_utf8())
    {
        let build = build_partitioned(
            rdata.len(),
            &config,
            |range, map: &mut HashMap<&str, Vec<usize>>| {
                for i in range {
                    if rvalid.is_valid(i) {
                        map.entry(rdata[i].as_ref()).or_default().push(i);
                    }
                }
            },
        );
        let per_entry: Vec<Option<&Vec<usize>>> =
            ldict.iter().map(|e| build.get(e.as_ref())).collect();
        return emit_partitioned(lcodes.len(), join_type, &config, |i, _buf: &mut String| {
            if lvalid.is_valid(i) {
                per_entry[lcodes[i] as usize].map(Vec::as_slice)
            } else {
                None
            }
        });
    }
    // Mixed fast path: plain probe side against a dictionary-encoded build
    // side — build over `u32` codes, translate each probe string through the
    // build side's entry index.
    if let (Some((ldata, lvalid)), Some((rcodes, rdict, rvalid))) =
        (left_key.as_utf8(), right_key.as_dict())
    {
        let entry_index: HashMap<&str, u32> = rdict
            .iter()
            .enumerate()
            .map(|(c, e)| (e.as_ref(), c as u32))
            .collect();
        let build = build_partitioned(
            rcodes.len(),
            &config,
            |range, map: &mut HashMap<u32, Vec<usize>>| {
                for i in range {
                    if rvalid.is_valid(i) {
                        map.entry(rcodes[i]).or_default().push(i);
                    }
                }
            },
        );
        return emit_partitioned(ldata.len(), join_type, &config, |i, _buf: &mut String| {
            if lvalid.is_valid(i) {
                entry_index
                    .get(ldata[i].as_ref())
                    .and_then(|code| build.get(code))
                    .map(Vec::as_slice)
            } else {
                None
            }
        });
    }
    // Typed fast path: both sides are string keys.
    if let (Some((ldata, lvalid)), Some((rdata, rvalid))) =
        (left_key.as_utf8(), right_key.as_utf8())
    {
        let build = build_partitioned(
            rdata.len(),
            &config,
            |range, map: &mut HashMap<&str, Vec<usize>>| {
                for i in range {
                    if rvalid.is_valid(i) {
                        map.entry(rdata[i].as_ref()).or_default().push(i);
                    }
                }
            },
        );
        return emit_partitioned(ldata.len(), join_type, &config, |i, _buf: &mut String| {
            if lvalid.is_valid(i) {
                build.get(ldata[i].as_ref()).map(Vec::as_slice)
            } else {
                None
            }
        });
    }
    // Generic path: hash the rendered group key (numeric unification included).
    let build = build_partitioned(
        right_key.len(),
        &config,
        |range, map: &mut HashMap<String, Vec<usize>>| {
            let mut key_buf = String::new();
            for i in range {
                if right_key.is_valid(i) {
                    key_buf.clear();
                    right_key.write_group_key(i, &mut key_buf);
                    map.entry(key_buf.clone()).or_default().push(i);
                }
            }
        },
    );
    emit_partitioned(left_key.len(), join_type, &config, |i, buf: &mut String| {
        if left_key.is_valid(i) {
            buf.clear();
            left_key.write_group_key(i, buf);
            build.get(buf.as_str()).map(Vec::as_slice)
        } else {
            None
        }
    })
}

/// Build the join hash table, partitioned over morsels of the build side.
/// Partial tables are merged in morsel order, so every key's match list is
/// identical to the one a sequential scan builds.
fn build_partitioned<K, F>(
    build_len: usize,
    config: &crate::parallel::ExecConfig,
    fill: F,
) -> HashMap<K, Vec<usize>>
where
    K: std::hash::Hash + Eq + Send,
    F: Fn(std::ops::Range<usize>, &mut HashMap<K, Vec<usize>>) + Sync,
{
    if !config.should_parallelize(build_len) {
        let mut map = HashMap::with_capacity(build_len);
        fill(0..build_len, &mut map);
        return map;
    }
    let partials = crate::parallel::map_morsels(config, build_len, |range| {
        let mut map = HashMap::new();
        fill(range, &mut map);
        map
    });
    let mut build: HashMap<K, Vec<usize>> = HashMap::with_capacity(build_len);
    for partial in partials {
        for (key, mut indices) in partial {
            build.entry(key).or_default().append(&mut indices);
        }
    }
    build
}

/// Probe and emit matching index pairs, partitioned over morsels of the
/// probe side; per-morsel chunks are concatenated in morsel order. The
/// `String` scratch buffer is per-morsel state for the generic rendered-key
/// path (the typed paths ignore it).
fn emit_partitioned<'a, F>(
    left_len: usize,
    join_type: JoinType,
    config: &crate::parallel::ExecConfig,
    matches_of: F,
) -> (Vec<usize>, RightIndices)
where
    F: Fn(usize, &mut String) -> Option<&'a [usize]> + Sync,
{
    match join_type {
        // Inner joins never pad, so the right indices stay dense — gathered
        // later with the non-optional take kernel, no `Option` per element.
        JoinType::Inner => {
            let emit_range = |range: std::ops::Range<usize>| {
                // FK-shaped joins emit ~1 row per probe row; reserving the
                // range length up front avoids ~20 doubling reallocations on
                // the way to a million-row output.
                let mut left_indices = Vec::with_capacity(range.len());
                let mut right_indices = Vec::with_capacity(range.len());
                let mut buf = String::new();
                for i in range {
                    if let Some(found) = matches_of(i, &mut buf) {
                        for &j in found {
                            left_indices.push(i);
                            right_indices.push(j);
                        }
                    }
                }
                (left_indices, right_indices)
            };
            if !config.should_parallelize(left_len) {
                let (l, r) = emit_range(0..left_len);
                return (l, RightIndices::Dense(r));
            }
            let chunks = crate::parallel::map_morsels(config, left_len, emit_range);
            let total: usize = chunks.iter().map(|(l, _)| l.len()).sum();
            let mut left_indices = Vec::with_capacity(total);
            let mut right_indices = Vec::with_capacity(total);
            for (mut l, mut r) in chunks {
                left_indices.append(&mut l);
                right_indices.append(&mut r);
            }
            (left_indices, RightIndices::Dense(right_indices))
        }
        JoinType::Left => {
            let emit_range = |range: std::ops::Range<usize>| {
                // A left join emits at least one row per probe row, so the
                // range length is an exact lower bound on the output size.
                let mut left_indices = Vec::with_capacity(range.len());
                let mut right_indices = Vec::with_capacity(range.len());
                let mut buf = String::new();
                for i in range {
                    match matches_of(i, &mut buf) {
                        Some(found) if !found.is_empty() => {
                            for &j in found {
                                left_indices.push(i);
                                right_indices.push(Some(j));
                            }
                        }
                        _ => {
                            left_indices.push(i);
                            right_indices.push(None);
                        }
                    }
                }
                (left_indices, right_indices)
            };
            if !config.should_parallelize(left_len) {
                let (l, r) = emit_range(0..left_len);
                return (l, RightIndices::Padded(r));
            }
            let chunks = crate::parallel::map_morsels(config, left_len, emit_range);
            let total: usize = chunks.iter().map(|(l, _)| l.len()).sum();
            let mut left_indices = Vec::with_capacity(total);
            let mut right_indices = Vec::with_capacity(total);
            for (mut l, mut r) in chunks {
                left_indices.append(&mut l);
                right_indices.append(&mut r);
            }
            (left_indices, RightIndices::Padded(right_indices))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Schema;
    use crate::table::TableBuilder;
    use crate::value::{DataType, Value};

    fn metadata() -> Table {
        let schema = Schema::from_pairs(&[("title", DataType::Str), ("img_path", DataType::Str)]);
        let mut b = TableBuilder::new("paintings_metadata", schema);
        b.push_values(["Madonna", "img/1.png"]).unwrap();
        b.push_values(["Irises", "img/2.png"]).unwrap();
        b.push_values(["Lost", "img/404.png"]).unwrap();
        b.build()
    }

    fn images() -> Table {
        let schema = Schema::from_pairs(&[("img_path", DataType::Str), ("image", DataType::Image)]);
        let mut b = TableBuilder::new("painting_images", schema);
        b.push_row(vec![Value::str("img/1.png"), Value::image("img/1.png")])
            .unwrap();
        b.push_row(vec![Value::str("img/2.png"), Value::image("img/2.png")])
            .unwrap();
        b.build()
    }

    #[test]
    fn inner_join_on_img_path_matches_figure4() {
        let joined = hash_join(
            &metadata(),
            &images(),
            "img_path",
            "img_path",
            JoinType::Inner,
        )
        .unwrap();
        assert_eq!(joined.num_rows(), 2);
        assert_eq!(joined.num_columns(), 4);
        assert!(joined.schema().contains("paintings_metadata.img_path"));
        assert!(joined.schema().contains("painting_images.img_path"));
        assert!(joined.schema().contains("image"));
    }

    #[test]
    fn left_join_pads_missing_matches_with_nulls() {
        let joined = hash_join(
            &metadata(),
            &images(),
            "img_path",
            "img_path",
            JoinType::Left,
        )
        .unwrap();
        assert_eq!(joined.num_rows(), 3);
        let lost_row = joined
            .iter()
            .find(|r| r.get(0) == Value::str("Lost"))
            .expect("row for 'Lost' painting");
        assert!(lost_row.get(2).is_null());
        assert!(lost_row.get(3).is_null());
    }

    #[test]
    fn null_keys_never_match() {
        let schema = Schema::from_pairs(&[("k", DataType::Str)]);
        let mut b = TableBuilder::new("l", schema.clone());
        b.push_row(vec![Value::Null]).unwrap();
        let left = b.build();
        let mut b = TableBuilder::new("r", schema);
        b.push_row(vec![Value::Null]).unwrap();
        let right = b.build();
        let joined = hash_join(&left, &right, "k", "k", JoinType::Inner).unwrap();
        assert_eq!(joined.num_rows(), 0);
        let joined = hash_join(&left, &right, "k", "k", JoinType::Left).unwrap();
        assert_eq!(joined.num_rows(), 1);
    }

    #[test]
    fn duplicate_keys_produce_cross_products_per_key() {
        let schema = Schema::from_pairs(&[("k", DataType::Int), ("v", DataType::Str)]);
        let mut b = TableBuilder::new("games", schema.clone());
        b.push_values::<_, Value>(vec![Value::Int(1), Value::str("a")])
            .unwrap();
        b.push_values::<_, Value>(vec![Value::Int(1), Value::str("b")])
            .unwrap();
        let left = b.build();
        let mut b = TableBuilder::new("reports", schema);
        b.push_values::<_, Value>(vec![Value::Int(1), Value::str("x")])
            .unwrap();
        b.push_values::<_, Value>(vec![Value::Int(1), Value::str("y")])
            .unwrap();
        let right = b.build();
        let joined = hash_join(&left, &right, "k", "k", JoinType::Inner).unwrap();
        assert_eq!(joined.num_rows(), 4);
    }

    #[test]
    fn mixed_numeric_keys_join_through_the_generic_path() {
        // An int column joined against a float column: 2 must match 2.0,
        // exactly as the rendered group keys unify them.
        let schema = Schema::from_pairs(&[("k", DataType::Int)]);
        let mut b = TableBuilder::new("l", schema);
        b.push_row(vec![Value::Int(2)]).unwrap();
        let left = b.build();
        let schema = Schema::from_pairs(&[("k", DataType::Float)]);
        let mut b = TableBuilder::new("r", schema);
        b.push_row(vec![Value::Float(2.0)]).unwrap();
        let right = b.build();
        let joined = hash_join(&left, &right, "k", "k", JoinType::Inner).unwrap();
        assert_eq!(joined.num_rows(), 1);
    }

    #[test]
    fn unknown_key_column_is_reported() {
        let err = hash_join(
            &metadata(),
            &images(),
            "imgpath",
            "img_path",
            JoinType::Inner,
        );
        assert!(matches!(err, Err(EngineError::UnknownColumn { .. })));
    }
}
