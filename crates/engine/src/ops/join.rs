//! Hash joins.
//!
//! The paper's example plans join the metadata table with the
//! `painting_images` collection on `img_path`, and the rotowire `teams` table
//! with `team_to_games` / `game_reports`. All of those are equi-joins, which we
//! implement with a classic build/probe hash join. A left-outer variant is
//! provided for completeness.

use crate::error::{EngineError, EngineResult};
use crate::table::{Row, Table};
use crate::value::Value;
use std::collections::HashMap;

/// The supported join types.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JoinType {
    /// Inner equi-join.
    Inner,
    /// Left outer equi-join (unmatched left rows padded with NULLs).
    Left,
}

/// Hash-join `left` and `right` on equality of `left_key` and `right_key`.
///
/// The output schema is the join of both schemas with colliding column names
/// qualified by the input table names (see [`Schema::join`](crate::schema::Schema::join)).
pub fn hash_join(
    left: &Table,
    right: &Table,
    left_key: &str,
    right_key: &str,
    join_type: JoinType,
) -> EngineResult<Table> {
    let left_idx = left.schema().resolve(left_key)?;
    let right_idx = right.schema().resolve(right_key)?;

    let schema = left
        .schema()
        .join(left.name(), right.schema(), right.name());

    // Build phase: hash the right side (usually the smaller collection table).
    let mut build: HashMap<String, Vec<&Row>> = HashMap::with_capacity(right.num_rows());
    for row in right.iter() {
        let key = &row[right_idx];
        if key.is_null() {
            continue; // NULL keys never join.
        }
        build.entry(key.group_key()).or_default().push(row);
    }

    let mut rows: Vec<Row> = Vec::new();
    for lrow in left.iter() {
        let key = &lrow[left_idx];
        let matches = if key.is_null() {
            None
        } else {
            build.get(&key.group_key())
        };
        match matches {
            Some(found) if !found.is_empty() => {
                for rrow in found {
                    let mut out = Vec::with_capacity(lrow.len() + rrow.len());
                    out.extend(lrow.iter().cloned());
                    out.extend(rrow.iter().cloned());
                    rows.push(out);
                }
            }
            _ => {
                if join_type == JoinType::Left {
                    let mut out = Vec::with_capacity(lrow.len() + right.num_columns());
                    out.extend(lrow.iter().cloned());
                    out.extend(std::iter::repeat_n(Value::Null, right.num_columns()));
                    rows.push(out);
                }
            }
        }
    }

    Table::new(
        format!("{}_{}_joined", left.name(), right.name()),
        schema,
        rows,
    )
    .map_err(|e| match e {
        EngineError::ArityMismatch { .. } => EngineError::execution(
            "internal error: join produced rows that do not match the joined schema",
        ),
        other => other,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Schema;
    use crate::table::TableBuilder;
    use crate::value::DataType;

    fn metadata() -> Table {
        let schema = Schema::from_pairs(&[
            ("title", DataType::Str),
            ("img_path", DataType::Str),
        ]);
        let mut b = TableBuilder::new("paintings_metadata", schema);
        b.push_values(["Madonna", "img/1.png"]).unwrap();
        b.push_values(["Irises", "img/2.png"]).unwrap();
        b.push_values(["Lost", "img/404.png"]).unwrap();
        b.build()
    }

    fn images() -> Table {
        let schema = Schema::from_pairs(&[
            ("img_path", DataType::Str),
            ("image", DataType::Image),
        ]);
        let mut b = TableBuilder::new("painting_images", schema);
        b.push_row(vec![Value::str("img/1.png"), Value::image("img/1.png")])
            .unwrap();
        b.push_row(vec![Value::str("img/2.png"), Value::image("img/2.png")])
            .unwrap();
        b.build()
    }

    #[test]
    fn inner_join_on_img_path_matches_figure4() {
        let joined = hash_join(&metadata(), &images(), "img_path", "img_path", JoinType::Inner)
            .unwrap();
        assert_eq!(joined.num_rows(), 2);
        assert_eq!(joined.num_columns(), 4);
        assert!(joined.schema().contains("paintings_metadata.img_path"));
        assert!(joined.schema().contains("painting_images.img_path"));
        assert!(joined.schema().contains("image"));
    }

    #[test]
    fn left_join_pads_missing_matches_with_nulls() {
        let joined =
            hash_join(&metadata(), &images(), "img_path", "img_path", JoinType::Left).unwrap();
        assert_eq!(joined.num_rows(), 3);
        let lost_row = joined
            .iter()
            .find(|r| r[0] == Value::str("Lost"))
            .expect("row for 'Lost' painting");
        assert!(lost_row[2].is_null());
        assert!(lost_row[3].is_null());
    }

    #[test]
    fn null_keys_never_match() {
        let schema = Schema::from_pairs(&[("k", DataType::Str)]);
        let mut b = TableBuilder::new("l", schema.clone());
        b.push_row(vec![Value::Null]).unwrap();
        let left = b.build();
        let mut b = TableBuilder::new("r", schema);
        b.push_row(vec![Value::Null]).unwrap();
        let right = b.build();
        let joined = hash_join(&left, &right, "k", "k", JoinType::Inner).unwrap();
        assert_eq!(joined.num_rows(), 0);
        let joined = hash_join(&left, &right, "k", "k", JoinType::Left).unwrap();
        assert_eq!(joined.num_rows(), 1);
    }

    #[test]
    fn duplicate_keys_produce_cross_products_per_key() {
        let schema = Schema::from_pairs(&[("k", DataType::Int), ("v", DataType::Str)]);
        let mut b = TableBuilder::new("games", schema.clone());
        b.push_values::<_, Value>(vec![Value::Int(1), Value::str("a")]).unwrap();
        b.push_values::<_, Value>(vec![Value::Int(1), Value::str("b")]).unwrap();
        let left = b.build();
        let mut b = TableBuilder::new("reports", schema);
        b.push_values::<_, Value>(vec![Value::Int(1), Value::str("x")]).unwrap();
        b.push_values::<_, Value>(vec![Value::Int(1), Value::str("y")]).unwrap();
        let right = b.build();
        let joined = hash_join(&left, &right, "k", "k", JoinType::Inner).unwrap();
        assert_eq!(joined.num_rows(), 4);
    }

    #[test]
    fn unknown_key_column_is_reported() {
        let err = hash_join(&metadata(), &images(), "imgpath", "img_path", JoinType::Inner);
        assert!(matches!(err, Err(EngineError::UnknownColumn { .. })));
    }
}
