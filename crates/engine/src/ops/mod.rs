//! Physical relational operators.
//!
//! Each operator is a pure function from input [`Table`](crate::table::Table)s
//! to an output table. CAESURA's mapping phase composes these (via the SQL
//! front-end or directly) into executable physical plans.

mod aggregate;
mod filter;
mod join;
mod project;
mod set;
mod sort;

pub use aggregate::{aggregate, AggCall, AggFunc};
pub use filter::{filter, filter_project};
pub use join::{hash_join, JoinType};
pub use project::{project, Projection};
pub use set::{distinct, limit, union_all};
pub use sort::{sort, SortKey, SortOrder};
