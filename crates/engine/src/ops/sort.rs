//! ORDER BY: sort a table by one or more keys.

use crate::error::EngineResult;
use crate::expr::Expr;
use crate::table::Table;
use crate::value::Value;
use std::cmp::Ordering;

/// Sort direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SortOrder {
    /// Ascending (default in SQL).
    Asc,
    /// Descending.
    Desc,
}

/// One sort key.
#[derive(Debug, Clone, PartialEq)]
pub struct SortKey {
    /// Expression to sort by.
    pub expr: Expr,
    /// Direction.
    pub order: SortOrder,
}

impl SortKey {
    /// Ascending sort key on an expression.
    pub fn asc(expr: Expr) -> Self {
        SortKey {
            expr,
            order: SortOrder::Asc,
        }
    }

    /// Descending sort key on an expression.
    pub fn desc(expr: Expr) -> Self {
        SortKey {
            expr,
            order: SortOrder::Desc,
        }
    }
}

/// Sort `input` by the given keys (stable sort).
pub fn sort(input: &Table, keys: &[SortKey]) -> EngineResult<Table> {
    let schema = input.schema().clone();
    // Pre-compute the key values so evaluation errors surface before sorting.
    let mut decorated: Vec<(Vec<Value>, usize)> = Vec::with_capacity(input.num_rows());
    for (i, row) in input.iter().enumerate() {
        let mut key_values = Vec::with_capacity(keys.len());
        for key in keys {
            key_values.push(key.expr.evaluate(&schema, row)?);
        }
        decorated.push((key_values, i));
    }
    decorated.sort_by(|(a, ai), (b, bi)| {
        for (idx, key) in keys.iter().enumerate() {
            let ord = a[idx].total_cmp(&b[idx]);
            let ord = match key.order {
                SortOrder::Asc => ord,
                SortOrder::Desc => ord.reverse(),
            };
            if ord != Ordering::Equal {
                return ord;
            }
        }
        ai.cmp(bi) // stability tie-break
    });
    let rows = decorated
        .into_iter()
        .map(|(_, i)| input.rows()[i].clone())
        .collect();
    Table::new(format!("{}_sorted", input.name()), schema, rows)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Schema;
    use crate::table::TableBuilder;
    use crate::value::DataType;

    fn table() -> Table {
        let schema = Schema::from_pairs(&[
            ("century", DataType::Int),
            ("max_swords", DataType::Int),
        ]);
        let mut b = TableBuilder::new("result_table", schema);
        for (c, s) in [(19, 2), (15, 5), (17, 3), (15, 1)] {
            b.push_values::<_, Value>(vec![Value::Int(c), Value::Int(s)])
                .unwrap();
        }
        b.build()
    }

    #[test]
    fn sort_ascending_by_century() {
        let out = sort(&table(), &[SortKey::asc(Expr::col("century"))]).unwrap();
        let centuries: Vec<i64> = out
            .column("century")
            .unwrap()
            .iter()
            .map(|v| v.as_int().unwrap())
            .collect();
        assert_eq!(centuries, vec![15, 15, 17, 19]);
    }

    #[test]
    fn sort_descending_with_secondary_key() {
        let out = sort(
            &table(),
            &[
                SortKey::asc(Expr::col("century")),
                SortKey::desc(Expr::col("max_swords")),
            ],
        )
        .unwrap();
        assert_eq!(out.value(0, "max_swords").unwrap(), &Value::Int(5));
        assert_eq!(out.value(1, "max_swords").unwrap(), &Value::Int(1));
    }

    #[test]
    fn sort_is_stable_for_equal_keys() {
        let out = sort(&table(), &[SortKey::asc(Expr::lit(1))]).unwrap();
        // All keys equal → original order preserved.
        assert_eq!(out.value(0, "century").unwrap(), &Value::Int(19));
        assert_eq!(out.value(3, "century").unwrap(), &Value::Int(15));
    }

    #[test]
    fn nulls_sort_first_ascending() {
        let schema = Schema::from_pairs(&[("x", DataType::Int)]);
        let mut b = TableBuilder::new("t", schema);
        b.push_row(vec![Value::Int(5)]).unwrap();
        b.push_row(vec![Value::Null]).unwrap();
        let out = sort(&b.build(), &[SortKey::asc(Expr::col("x"))]).unwrap();
        assert!(out.value(0, "x").unwrap().is_null());
    }
}
