//! ORDER BY: sort a table by one or more keys.
//!
//! Vectorized: the key expressions are evaluated column-at-a-time, a row
//! index permutation is sorted against those key columns (a typed comparator
//! for a single integer key, materialized key rows otherwise), and the output
//! gathers every column once through the permutation.

use crate::error::EngineResult;
use crate::expr::Expr;
use crate::table::Table;
use crate::value::Value;
use std::cmp::Ordering;

/// Sort direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SortOrder {
    /// Ascending (default in SQL).
    Asc,
    /// Descending.
    Desc,
}

/// One sort key.
#[derive(Debug, Clone, PartialEq)]
pub struct SortKey {
    /// Expression to sort by.
    pub expr: Expr,
    /// Direction.
    pub order: SortOrder,
}

impl SortKey {
    /// Ascending sort key on an expression.
    pub fn asc(expr: Expr) -> Self {
        SortKey {
            expr,
            order: SortOrder::Asc,
        }
    }

    /// Descending sort key on an expression.
    pub fn desc(expr: Expr) -> Self {
        SortKey {
            expr,
            order: SortOrder::Desc,
        }
    }
}

/// Sort `input` by the given keys (stable sort).
pub fn sort(input: &Table, keys: &[SortKey]) -> EngineResult<Table> {
    let schema = input.schema();
    let num_rows = input.num_rows();

    // Evaluate every key column up front so evaluation errors surface before
    // any comparison runs.
    let mut key_columns = Vec::with_capacity(keys.len());
    for key in keys {
        key_columns.push(key.expr.evaluate_batch(schema, input.columns(), num_rows)?);
    }

    let config = crate::parallel::exec_config();

    // Typed fast path: one integer key with no NULLs.
    let typed = if keys.len() == 1 {
        key_columns[0]
            .as_int64()
            .filter(|(_, validity)| validity.is_all_valid())
    } else {
        None
    };
    // Code-native fast path: one dictionary-encoded string key. Rows compare
    // by the precomputed lexicographic rank of their entry (`u32` compares
    // instead of byte compares), which orders them exactly as comparing the
    // strings would; NULL ranks (`None`) sort first ascending and last
    // descending, matching `Value::total_cmp`.
    let dict_key = if keys.len() == 1 {
        key_columns[0].as_dict()
    } else {
        None
    };
    // All comparators end in an index tie-break, so they define a total
    // order: the sorted permutation is unique, a parallel run-sort + merge
    // (`parallel::sort_indices`) produces exactly the stable-sort result,
    // and under `threads = 1` `sort_indices` is a plain sequential sort.
    let indices = if let Some((codes, dict, validity)) = dict_key {
        let ranks = crate::dict::entry_ranks(dict);
        let rank_of = |i: usize| {
            if validity.is_valid(i) {
                Some(ranks[codes[i] as usize])
            } else {
                None
            }
        };
        match keys[0].order {
            SortOrder::Asc => crate::parallel::sort_indices(&config, num_rows, |a, b| {
                (rank_of(a), a).cmp(&(rank_of(b), b))
            }),
            SortOrder::Desc => crate::parallel::sort_indices(&config, num_rows, |a, b| {
                (std::cmp::Reverse(rank_of(a)), a).cmp(&(std::cmp::Reverse(rank_of(b)), b))
            }),
        }
    } else if let Some((data, _)) = typed {
        match keys[0].order {
            SortOrder::Asc => crate::parallel::sort_indices(&config, num_rows, |a, b| {
                (data[a], a).cmp(&(data[b], b))
            }),
            SortOrder::Desc => crate::parallel::sort_indices(&config, num_rows, |a, b| {
                (std::cmp::Reverse(data[a]), a).cmp(&(std::cmp::Reverse(data[b]), b))
            }),
        }
    } else {
        // Materialize the key rows once (decorate), then sort the indices.
        // The decoration itself is embarrassingly parallel over row morsels.
        let decorated: Vec<Vec<Value>> = if config.should_parallelize(num_rows) {
            crate::parallel::map_morsels(&config, num_rows, |range| {
                range
                    .map(|i| key_columns.iter().map(|c| c.get(i)).collect::<Vec<Value>>())
                    .collect::<Vec<_>>()
            })
            .into_iter()
            .flatten()
            .collect()
        } else {
            (0..num_rows)
                .map(|i| key_columns.iter().map(|c| c.get(i)).collect())
                .collect()
        };
        crate::parallel::sort_indices(&config, num_rows, |a, b| {
            for (idx, key) in keys.iter().enumerate() {
                let ord = decorated[a][idx].total_cmp(&decorated[b][idx]);
                let ord = match key.order {
                    SortOrder::Asc => ord,
                    SortOrder::Desc => ord.reverse(),
                };
                if ord != Ordering::Equal {
                    return ord;
                }
            }
            a.cmp(&b) // stability tie-break
        })
    };

    Ok(input
        .take(&indices)
        .renamed(format!("{}_sorted", input.name())))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Schema;
    use crate::table::TableBuilder;
    use crate::value::DataType;

    fn table() -> Table {
        let schema =
            Schema::from_pairs(&[("century", DataType::Int), ("max_swords", DataType::Int)]);
        let mut b = TableBuilder::new("result_table", schema);
        for (c, s) in [(19, 2), (15, 5), (17, 3), (15, 1)] {
            b.push_values::<_, Value>(vec![Value::Int(c), Value::Int(s)])
                .unwrap();
        }
        b.build()
    }

    #[test]
    fn sort_ascending_by_century() {
        let out = sort(&table(), &[SortKey::asc(Expr::col("century"))]).unwrap();
        let centuries: Vec<i64> = out
            .column("century")
            .unwrap()
            .iter()
            .map(|v| v.as_int().unwrap())
            .collect();
        assert_eq!(centuries, vec![15, 15, 17, 19]);
    }

    #[test]
    fn sort_descending_with_secondary_key() {
        let out = sort(
            &table(),
            &[
                SortKey::asc(Expr::col("century")),
                SortKey::desc(Expr::col("max_swords")),
            ],
        )
        .unwrap();
        assert_eq!(out.value(0, "max_swords").unwrap(), Value::Int(5));
        assert_eq!(out.value(1, "max_swords").unwrap(), Value::Int(1));
    }

    #[test]
    fn sort_is_stable_for_equal_keys() {
        let out = sort(&table(), &[SortKey::asc(Expr::lit(1))]).unwrap();
        // All keys equal → original order preserved.
        assert_eq!(out.value(0, "century").unwrap(), Value::Int(19));
        assert_eq!(out.value(3, "century").unwrap(), Value::Int(15));
    }

    #[test]
    fn nulls_sort_first_ascending() {
        let schema = Schema::from_pairs(&[("x", DataType::Int)]);
        let mut b = TableBuilder::new("t", schema);
        b.push_row(vec![Value::Int(5)]).unwrap();
        b.push_row(vec![Value::Null]).unwrap();
        let out = sort(&b.build(), &[SortKey::asc(Expr::col("x"))]).unwrap();
        assert!(out.value(0, "x").unwrap().is_null());
    }

    #[test]
    fn descending_int_fast_path_is_stable() {
        let schema = Schema::from_pairs(&[("x", DataType::Int), ("tag", DataType::Str)]);
        let mut b = TableBuilder::new("t", schema);
        for (x, tag) in [(1, "a"), (2, "b"), (1, "c"), (2, "d")] {
            b.push_values::<_, Value>(vec![Value::Int(x), Value::str(tag)])
                .unwrap();
        }
        let out = sort(&b.build(), &[SortKey::desc(Expr::col("x"))]).unwrap();
        let tags: Vec<String> = out
            .column("tag")
            .unwrap()
            .iter()
            .map(|v| v.to_string())
            .collect();
        assert_eq!(tags, vec!["b", "d", "a", "c"]);
    }
}
