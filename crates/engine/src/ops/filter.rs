//! Selection (σ): keep the rows that satisfy a predicate expression.
//!
//! Vectorized: the predicate is evaluated column-at-a-time into a selection
//! vector of surviving row indices, which is then gathered in one pass per
//! column. If every row survives, the output shares the input's columns
//! zero-copy.

use crate::error::EngineResult;
use crate::expr::Expr;
use crate::table::Table;

/// Filter `input`, keeping rows for which `predicate` evaluates to true.
///
/// NULL predicate results count as "not selected", matching SQL semantics.
pub fn filter(input: &Table, predicate: &Expr) -> EngineResult<Table> {
    let selected = predicate.selection_vector(input.schema(), input.columns(), input.num_rows())?;
    let filtered = if selected.len() == input.num_rows() {
        input.shared_copy()
    } else {
        input.take(&selected)
    };
    Ok(filtered.renamed(format!("{}_filtered", input.name())))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::BinaryOp;
    use crate::schema::Schema;
    use crate::table::TableBuilder;
    use crate::value::{DataType, Value};

    fn table() -> Table {
        let schema = Schema::from_pairs(&[("name", DataType::Str), ("points", DataType::Int)]);
        let mut b = TableBuilder::new("scores", schema);
        b.push_values::<_, Value>(vec![Value::str("Heat"), Value::Int(102)])
            .unwrap();
        b.push_values::<_, Value>(vec![Value::str("Spurs"), Value::Int(95)])
            .unwrap();
        b.push_values::<_, Value>(vec![Value::str("Bulls"), Value::Null])
            .unwrap();
        b.build()
    }

    #[test]
    fn filter_keeps_matching_rows_only() {
        let out = filter(
            &table(),
            &Expr::binary(Expr::col("points"), BinaryOp::Gt, Expr::lit(100)),
        )
        .unwrap();
        assert_eq!(out.num_rows(), 1);
        assert_eq!(out.value(0, "name").unwrap(), Value::str("Heat"));
    }

    #[test]
    fn null_predicate_rows_are_dropped() {
        let out = filter(
            &table(),
            &Expr::binary(Expr::col("points"), BinaryOp::Lt, Expr::lit(1000)),
        )
        .unwrap();
        // The Bulls row has NULL points → predicate is NULL → dropped.
        assert_eq!(out.num_rows(), 2);
    }

    #[test]
    fn filter_propagates_unknown_column_errors() {
        let err = filter(
            &table(),
            &Expr::binary(Expr::col("score"), BinaryOp::Gt, Expr::lit(1)),
        );
        assert!(err.is_err());
    }

    #[test]
    fn output_table_is_renamed() {
        let out = filter(&table(), &Expr::lit(true)).unwrap();
        assert_eq!(out.name(), "scores_filtered");
        assert_eq!(out.num_rows(), 3);
    }

    #[test]
    fn string_equality_predicate_uses_the_utf8_kernel() {
        let out = filter(
            &table(),
            &Expr::binary(Expr::col("name"), BinaryOp::Eq, Expr::lit("Spurs")),
        )
        .unwrap();
        assert_eq!(out.num_rows(), 1);
        assert_eq!(out.value(0, "points").unwrap(), Value::Int(95));
    }
}
