//! Selection (σ): keep the rows that satisfy a predicate expression.
//!
//! Vectorized: the predicate is evaluated column-at-a-time into a selection
//! vector of surviving row indices, which is then gathered in one pass per
//! column. If every row survives, the output shares the input's columns
//! zero-copy.

use crate::column::Column;
use crate::error::EngineResult;
use crate::expr::Expr;
use crate::ops::Projection;
use crate::table::Table;
use std::sync::Arc;

/// Filter `input`, keeping rows for which `predicate` evaluates to true.
///
/// NULL predicate results count as "not selected", matching SQL semantics.
pub fn filter(input: &Table, predicate: &Expr) -> EngineResult<Table> {
    let selected = predicate.selection_vector(input.schema(), input.columns(), input.num_rows())?;
    let filtered = if selected.len() == input.num_rows() {
        input.shared_copy()
    } else {
        input.take(&selected)
    };
    Ok(filtered.renamed(format!("{}_filtered", input.name())))
}

/// Fused σ→π: filter `input` by `predicate` and immediately project.
///
/// A `filter` followed by `project` gathers **every** input column through
/// the selection vector, then drops all but the projected ones. The fused
/// operator applies the selection during projection instead: only the
/// columns the projection expressions actually reference are gathered (each
/// once, shared across expressions), and everything else is never touched.
/// The output is byte-identical to
/// `project(&filter(input, predicate)?, projections)` — the same selection
/// vector feeds the same take kernels, and expression evaluation sees the
/// same gathered columns.
pub fn filter_project(
    input: &Table,
    predicate: &Expr,
    projections: &[Projection],
) -> EngineResult<Table> {
    let in_schema = input.schema();
    let num_rows = input.num_rows();
    let selected = predicate.selection_vector(in_schema, input.columns(), num_rows)?;
    let out_schema = super::project::projection_schema(in_schema, projections)?;
    let out_name = format!("{}_filtered_projected", input.name());

    // Everything survived: the filtered table would share the input's columns
    // zero-copy, so project straight off the input.
    if selected.len() == num_rows {
        let mut columns = Vec::with_capacity(projections.len());
        for p in projections {
            columns.push(
                p.expr
                    .evaluate_batch(in_schema, input.columns(), num_rows)?,
            );
        }
        return Table::from_columns(out_name, out_schema, columns);
    }

    // Gather only the referenced input columns through the selection vector,
    // each exactly once. Unreferenced positions get a shared NULL placeholder
    // that keeps the schema arity without moving any data (they are never
    // read — and an expression referencing an unknown name errors during
    // evaluation exactly as the unfused pipeline would).
    let mut referenced = vec![false; input.num_columns()];
    for p in projections {
        for name in p.expr.referenced_columns() {
            if let Ok(idx) = in_schema.resolve(&name) {
                referenced[idx] = true;
            }
        }
    }
    let config = crate::parallel::exec_config();
    let placeholder = Arc::new(Column::Null(selected.len()));
    let gathered: Vec<Arc<Column>> = input
        .columns()
        .iter()
        .zip(&referenced)
        .map(|(col, &read)| {
            if read {
                Arc::new(crate::parallel::take_column(col, &selected, &config))
            } else {
                Arc::clone(&placeholder)
            }
        })
        .collect();

    let mut columns = Vec::with_capacity(projections.len());
    for p in projections {
        columns.push(
            p.expr
                .evaluate_batch(in_schema, &gathered, selected.len())?,
        );
    }
    Table::from_columns(out_name, out_schema, columns)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::BinaryOp;
    use crate::schema::Schema;
    use crate::table::TableBuilder;
    use crate::value::{DataType, Value};

    fn table() -> Table {
        let schema = Schema::from_pairs(&[("name", DataType::Str), ("points", DataType::Int)]);
        let mut b = TableBuilder::new("scores", schema);
        b.push_values::<_, Value>(vec![Value::str("Heat"), Value::Int(102)])
            .unwrap();
        b.push_values::<_, Value>(vec![Value::str("Spurs"), Value::Int(95)])
            .unwrap();
        b.push_values::<_, Value>(vec![Value::str("Bulls"), Value::Null])
            .unwrap();
        b.build()
    }

    #[test]
    fn filter_keeps_matching_rows_only() {
        let out = filter(
            &table(),
            &Expr::binary(Expr::col("points"), BinaryOp::Gt, Expr::lit(100)),
        )
        .unwrap();
        assert_eq!(out.num_rows(), 1);
        assert_eq!(out.value(0, "name").unwrap(), Value::str("Heat"));
    }

    #[test]
    fn null_predicate_rows_are_dropped() {
        let out = filter(
            &table(),
            &Expr::binary(Expr::col("points"), BinaryOp::Lt, Expr::lit(1000)),
        )
        .unwrap();
        // The Bulls row has NULL points → predicate is NULL → dropped.
        assert_eq!(out.num_rows(), 2);
    }

    #[test]
    fn filter_propagates_unknown_column_errors() {
        let err = filter(
            &table(),
            &Expr::binary(Expr::col("score"), BinaryOp::Gt, Expr::lit(1)),
        );
        assert!(err.is_err());
    }

    #[test]
    fn output_table_is_renamed() {
        let out = filter(&table(), &Expr::lit(true)).unwrap();
        assert_eq!(out.name(), "scores_filtered");
        assert_eq!(out.num_rows(), 3);
    }

    #[test]
    fn string_equality_predicate_uses_the_utf8_kernel() {
        let out = filter(
            &table(),
            &Expr::binary(Expr::col("name"), BinaryOp::Eq, Expr::lit("Spurs")),
        )
        .unwrap();
        assert_eq!(out.num_rows(), 1);
        assert_eq!(out.value(0, "points").unwrap(), Value::Int(95));
    }
}
