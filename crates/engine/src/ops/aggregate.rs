//! Grouped aggregation (γ).
//!
//! Supports the aggregates the paper's physical plans use (`MAX(points_scored)
//! GROUP BY name`, `MAX(num_swords) GROUP BY century`, counts for the
//! Madonna-and-Child query) plus SUM/AVG/MIN and COUNT(*).
//!
//! Vectorized: the group-by expressions and every aggregated expression are
//! evaluated column-at-a-time first; the grouping pass then walks those
//! columns once, hashing `i64` keys directly when a single integer group
//! column allows it and the rendered group key otherwise.
//!
//! ## Parallel float SUM/AVG invariant
//!
//! Under the morsel-driven pool ([`crate::parallel`]) each worker folds a
//! per-morsel partial [`AggState`] and the partials are merged in morsel
//! order: deterministic for a given `ExecConfig`, but a *different addition
//! order* than the sequential row-order fold — so float `SUM`/`AVG` totals
//! can differ in the last ulp between `threads = 1` and parallel configs
//! whenever addends are not exactly representable. `threads = 1` stays
//! byte-for-byte the pre-parallel engine on purpose; the property suite uses
//! dyadic rationals to keep its cross-config comparisons exact.

use crate::column::{Column, ColumnBuilder};
use crate::error::{EngineError, EngineResult};
use crate::expr::Expr;
use crate::schema::{Field, Schema};
use crate::table::Table;
use crate::value::{DataType, Value};
use std::collections::HashMap;
use std::sync::Arc;

/// Aggregate functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggFunc {
    /// `COUNT(expr)` — non-null count — or `COUNT(*)` when the call has no expression.
    Count,
    /// `SUM(expr)`.
    Sum,
    /// `AVG(expr)`.
    Avg,
    /// `MIN(expr)`.
    Min,
    /// `MAX(expr)`.
    Max,
}

impl AggFunc {
    /// Look an aggregate up by its SQL name.
    pub fn from_name(name: &str) -> Option<AggFunc> {
        Some(match name.to_ascii_uppercase().as_str() {
            "COUNT" => AggFunc::Count,
            "SUM" => AggFunc::Sum,
            "AVG" | "MEAN" => AggFunc::Avg,
            "MIN" => AggFunc::Min,
            "MAX" => AggFunc::Max,
            _ => return None,
        })
    }

    /// SQL-facing name.
    pub fn name(&self) -> &'static str {
        match self {
            AggFunc::Count => "COUNT",
            AggFunc::Sum => "SUM",
            AggFunc::Avg => "AVG",
            AggFunc::Min => "MIN",
            AggFunc::Max => "MAX",
        }
    }
}

/// One aggregate output column.
#[derive(Debug, Clone, PartialEq)]
pub struct AggCall {
    /// The aggregate function.
    pub func: AggFunc,
    /// The aggregated expression; `None` means `COUNT(*)`.
    pub expr: Option<Expr>,
    /// Output column name.
    pub alias: String,
}

impl AggCall {
    /// Build an aggregate call.
    pub fn new(func: AggFunc, expr: Option<Expr>, alias: impl Into<String>) -> Self {
        AggCall {
            func,
            expr,
            alias: alias.into(),
        }
    }

    /// `COUNT(*)` with an alias.
    pub fn count_star(alias: impl Into<String>) -> Self {
        AggCall::new(AggFunc::Count, None, alias)
    }
}

/// Running state of one aggregate within one group.
#[derive(Debug, Clone)]
enum AggState {
    Count(i64),
    Sum {
        total: f64,
        any: bool,
        all_int: bool,
    },
    Avg {
        total: f64,
        count: i64,
    },
    Min(Option<Value>),
    Max(Option<Value>),
}

impl AggState {
    fn new(func: AggFunc) -> AggState {
        match func {
            AggFunc::Count => AggState::Count(0),
            AggFunc::Sum => AggState::Sum {
                total: 0.0,
                any: false,
                all_int: true,
            },
            AggFunc::Avg => AggState::Avg {
                total: 0.0,
                count: 0,
            },
            AggFunc::Min => AggState::Min(None),
            AggFunc::Max => AggState::Max(None),
        }
    }

    /// Fold the value at `row` of the evaluated aggregate column into the
    /// state. `column` is `None` for `COUNT(*)`.
    fn update(&mut self, column: Option<&Column>, row: usize, context: &str) -> EngineResult<()> {
        match self {
            AggState::Count(c) => {
                match column {
                    // COUNT(*): every row counts.
                    None => *c += 1,
                    // COUNT(expr): only non-null values count.
                    Some(col) if col.is_valid(row) => *c += 1,
                    Some(_) => {}
                }
            }
            AggState::Sum {
                total,
                any,
                all_int,
            } => {
                if let Some(col) = column {
                    if !col.is_valid(row) {
                        return Ok(());
                    }
                    let value = col.get(row);
                    let f = value.as_float().ok_or_else(|| {
                        EngineError::type_mismatch(
                            context,
                            "a numeric value",
                            value.data_type().prompt_name(),
                        )
                    })?;
                    *total += f;
                    *any = true;
                    if !matches!(value, Value::Int(_)) {
                        *all_int = false;
                    }
                }
            }
            AggState::Avg { total, count } => {
                if let Some(col) = column {
                    if !col.is_valid(row) {
                        return Ok(());
                    }
                    let value = col.get(row);
                    let f = value.as_float().ok_or_else(|| {
                        EngineError::type_mismatch(
                            context,
                            "a numeric value",
                            value.data_type().prompt_name(),
                        )
                    })?;
                    *total += f;
                    *count += 1;
                }
            }
            AggState::Min(best) => {
                if let Some(col) = column {
                    if !col.is_valid(row) {
                        return Ok(());
                    }
                    let value = col.get(row);
                    match best {
                        None => *best = Some(value),
                        Some(b) if value.total_cmp(b) == std::cmp::Ordering::Less => {
                            *best = Some(value)
                        }
                        _ => {}
                    }
                }
            }
            AggState::Max(best) => {
                if let Some(col) = column {
                    if !col.is_valid(row) {
                        return Ok(());
                    }
                    let value = col.get(row);
                    match best {
                        None => *best = Some(value),
                        Some(b) if value.total_cmp(b) == std::cmp::Ordering::Greater => {
                            *best = Some(value)
                        }
                        _ => {}
                    }
                }
            }
        }
        Ok(())
    }

    /// Merge another partial state for the same group into this one (the
    /// combine step of morsel-parallel aggregation). `other` must come from
    /// later rows than `self`, so first-seen semantics (MIN/MAX keep the
    /// earliest extremum) are preserved. Floating-point SUM/AVG totals are
    /// combined by adding per-morsel partial sums in morsel order —
    /// deterministic, and exact whenever the addends are exactly
    /// representable (integers below 2^53, dyadic rationals).
    fn merge(&mut self, other: AggState) {
        match (self, other) {
            (AggState::Count(a), AggState::Count(b)) => *a += b,
            (
                AggState::Sum {
                    total,
                    any,
                    all_int,
                },
                AggState::Sum {
                    total: other_total,
                    any: other_any,
                    all_int: other_all_int,
                },
            ) => {
                *total += other_total;
                *any |= other_any;
                *all_int &= other_all_int;
            }
            (
                AggState::Avg { total, count },
                AggState::Avg {
                    total: other_total,
                    count: other_count,
                },
            ) => {
                *total += other_total;
                *count += other_count;
            }
            (AggState::Min(best), AggState::Min(other)) => {
                if let Some(candidate) = other {
                    match best {
                        None => *best = Some(candidate),
                        Some(b) if candidate.total_cmp(b) == std::cmp::Ordering::Less => {
                            *best = Some(candidate)
                        }
                        _ => {}
                    }
                }
            }
            (AggState::Max(best), AggState::Max(other)) => {
                if let Some(candidate) = other {
                    match best {
                        None => *best = Some(candidate),
                        Some(b) if candidate.total_cmp(b) == std::cmp::Ordering::Greater => {
                            *best = Some(candidate)
                        }
                        _ => {}
                    }
                }
            }
            _ => unreachable!("merging mismatched aggregate states"),
        }
    }

    fn finish(self) -> Value {
        match self {
            AggState::Count(c) => Value::Int(c),
            AggState::Sum {
                total,
                any,
                all_int,
            } => {
                if !any {
                    Value::Null
                } else if all_int {
                    Value::Int(total as i64)
                } else {
                    Value::Float(total)
                }
            }
            AggState::Avg { total, count } => {
                if count == 0 {
                    Value::Null
                } else {
                    Value::Float(total / count as f64)
                }
            }
            AggState::Min(v) | AggState::Max(v) => v.unwrap_or(Value::Null),
        }
    }
}

/// One group's accumulated state: the key values plus one state per aggregate.
struct Group {
    key_values: Vec<Value>,
    states: Vec<AggState>,
}

impl Group {
    fn new(key_values: Vec<Value>, aggs: &[AggCall]) -> Group {
        Group {
            key_values,
            states: aggs.iter().map(|a| AggState::new(a.func)).collect(),
        }
    }

    /// Merge a later partial group with the same key into this one.
    fn merge(&mut self, other: Group) {
        for (state, other_state) in self.states.iter_mut().zip(other.states) {
            state.merge(other_state);
        }
    }
}

/// The lookup key a group is merged under when partial (per-morsel) results
/// are combined: the typed integer key of the single-int fast path, or the
/// rendered composite key of the generic path.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum GroupKey {
    Int(i64),
    /// A dictionary code of the single dict-encoded group column. Codes are
    /// stable across morsels (every morsel indexes the same entry table), so
    /// partial groups merge exactly like rendered string keys would.
    Code(u32),
    Null,
    Composite(String),
}

/// Group `input` by the `group_by` expressions and compute `aggs` per group.
///
/// With an empty `group_by` the whole table forms a single group (global
/// aggregation), and a single row is returned even for empty inputs, matching
/// SQL semantics (`COUNT(*)` over an empty table is 0).
pub fn aggregate(
    input: &Table,
    group_by: &[(Expr, String)],
    aggs: &[AggCall],
) -> EngineResult<Table> {
    let in_schema = input.schema();
    let num_rows = input.num_rows();

    let mut fields = Vec::with_capacity(group_by.len() + aggs.len());
    for (expr, alias) in group_by {
        fields.push(Field::new(alias.clone(), expr.output_type(in_schema)));
    }
    for agg in aggs {
        let dtype = match agg.func {
            AggFunc::Count => DataType::Int,
            AggFunc::Avg => DataType::Float,
            AggFunc::Sum => DataType::Int,
            AggFunc::Min | AggFunc::Max => agg
                .expr
                .as_ref()
                .map(|e| e.output_type(in_schema))
                .unwrap_or(DataType::Null),
        };
        let mut name = agg.alias.clone();
        let mut suffix = 1;
        while fields.iter().any(|f: &Field| f.name == name) {
            name = format!("{}_{suffix}", agg.alias);
            suffix += 1;
        }
        fields.push(Field::new(name, dtype));
    }
    let schema = Schema::new(fields)?;

    // Vectorized evaluation of every expression, once per column.
    let mut key_columns: Vec<Arc<Column>> = Vec::with_capacity(group_by.len());
    for (expr, _) in group_by {
        key_columns.push(expr.evaluate_batch(in_schema, input.columns(), num_rows)?);
    }
    let mut agg_columns: Vec<Option<Arc<Column>>> = Vec::with_capacity(aggs.len());
    let mut contexts: Vec<String> = Vec::with_capacity(aggs.len());
    for agg in aggs {
        agg_columns.push(match &agg.expr {
            Some(expr) => Some(expr.evaluate_batch(in_schema, input.columns(), num_rows)?),
            None => None,
        });
        contexts.push(format!("{}({})", agg.func.name(), agg.alias));
    }

    // Grouping pass: map each row to its group, folding aggregate states.
    // Large inputs aggregate morsel-parallel: each worker folds its row
    // range into partial groups, which are then merged in morsel order —
    // first-seen group order and all folds stay identical to a sequential
    // row-order pass.
    let config = crate::parallel::exec_config();
    let keyed_groups = if config.should_parallelize(num_rows) {
        let partials = crate::parallel::try_map_morsels(&config, num_rows, |range| {
            group_rows(range, &key_columns, &agg_columns, &contexts, aggs)
        })?;
        merge_partial_groups(partials)
    } else {
        group_rows(0..num_rows, &key_columns, &agg_columns, &contexts, aggs)?
    };
    let mut groups: Vec<Group> = keyed_groups.into_iter().map(|(_, group)| group).collect();

    // Global aggregation over an empty input still yields one row.
    if groups.is_empty() && group_by.is_empty() {
        groups.push(Group::new(Vec::new(), aggs));
    }

    // Emit columns in first-seen group order.
    let mut builders: Vec<ColumnBuilder> = schema
        .fields()
        .iter()
        .map(|f| ColumnBuilder::with_capacity(f.data_type, groups.len()))
        .collect();
    for group in groups {
        let mut slot = 0;
        for key in group.key_values {
            builders[slot].push(key);
            slot += 1;
        }
        for state in group.states {
            builders[slot].push(state.finish());
            slot += 1;
        }
    }
    Table::from_columns(
        format!("{}_aggregated", input.name()),
        schema,
        builders.into_iter().map(|b| Arc::new(b.finish())).collect(),
    )
}

/// Fold one row range into groups in first-seen order, each tagged with its
/// merge key. This is both the sequential grouping pass (over `0..num_rows`)
/// and the per-morsel partial pass of parallel aggregation.
fn group_rows(
    range: std::ops::Range<usize>,
    key_columns: &[Arc<Column>],
    agg_columns: &[Option<Arc<Column>>],
    contexts: &[String],
    aggs: &[AggCall],
) -> EngineResult<Vec<(GroupKey, Group)>> {
    let mut groups: Vec<(GroupKey, Group)> = Vec::new();

    // Single integer group column: hash i64 keys directly.
    let single_int_key = if key_columns.len() == 1 {
        key_columns[0].as_int64()
    } else {
        None
    };
    // Single dictionary-encoded group column: group by `u32` code through a
    // dense per-entry table — no hashing, no string rendering. Codes map
    // one-to-one to entry strings, so first-seen group order and the emitted
    // key values are identical to the plain string path.
    let single_dict_key = if key_columns.len() == 1 {
        key_columns[0].as_dict()
    } else {
        None
    };
    if let Some((codes, dict, validity)) = single_dict_key {
        let mut index: Vec<Option<usize>> = vec![None; dict.len()];
        let mut null_group: Option<usize> = None;
        for row in range {
            let group = if validity.is_valid(row) {
                let code = codes[row] as usize;
                match index[code] {
                    Some(g) => g,
                    None => {
                        let key = Value::Str(Arc::clone(&dict[code]));
                        groups.push((GroupKey::Code(codes[row]), Group::new(vec![key], aggs)));
                        let g = groups.len() - 1;
                        index[code] = Some(g);
                        g
                    }
                }
            } else {
                match null_group {
                    Some(g) => g,
                    None => {
                        groups.push((GroupKey::Null, Group::new(vec![Value::Null], aggs)));
                        let g = groups.len() - 1;
                        null_group = Some(g);
                        g
                    }
                }
            };
            fold_row(&mut groups[group].1, agg_columns, contexts, row)?;
        }
    } else if let Some((data, validity)) = single_int_key {
        let mut index: HashMap<i64, usize> = HashMap::new();
        let mut null_group: Option<usize> = None;
        for row in range {
            let key = data[row];
            let group = if validity.is_valid(row) {
                *index.entry(key).or_insert_with(|| {
                    groups.push((GroupKey::Int(key), Group::new(vec![Value::Int(key)], aggs)));
                    groups.len() - 1
                })
            } else {
                match null_group {
                    Some(g) => g,
                    None => {
                        groups.push((GroupKey::Null, Group::new(vec![Value::Null], aggs)));
                        let g = groups.len() - 1;
                        null_group = Some(g);
                        g
                    }
                }
            };
            fold_row(&mut groups[group].1, agg_columns, contexts, row)?;
        }
    } else {
        let mut index: HashMap<String, usize> = HashMap::new();
        let mut key_buf = String::new();
        for row in range {
            key_buf.clear();
            for col in key_columns {
                col.write_group_key(row, &mut key_buf);
                key_buf.push('\u{1}');
            }
            let group = match index.get(&key_buf) {
                Some(&g) => g,
                None => {
                    let key_values: Vec<Value> = key_columns.iter().map(|c| c.get(row)).collect();
                    groups.push((
                        GroupKey::Composite(key_buf.clone()),
                        Group::new(key_values, aggs),
                    ));
                    let g = groups.len() - 1;
                    index.insert(key_buf.clone(), g);
                    g
                }
            };
            fold_row(&mut groups[group].1, agg_columns, contexts, row)?;
        }
    }
    Ok(groups)
}

/// Merge per-morsel partial groups in morsel order. A group's first
/// occurrence over the morsel-ordered traversal is its first occurrence in
/// row order, so the merged first-seen order — and every folded state — is
/// identical to a sequential pass.
fn merge_partial_groups(partials: Vec<Vec<(GroupKey, Group)>>) -> Vec<(GroupKey, Group)> {
    let mut index: HashMap<GroupKey, usize> = HashMap::new();
    let mut merged: Vec<(GroupKey, Group)> = Vec::new();
    for partial in partials {
        for (key, group) in partial {
            match index.get(&key) {
                Some(&slot) => merged[slot].1.merge(group),
                None => {
                    index.insert(key.clone(), merged.len());
                    merged.push((key, group));
                }
            }
        }
    }
    merged
}

fn fold_row(
    group: &mut Group,
    agg_columns: &[Option<Arc<Column>>],
    contexts: &[String],
    row: usize,
) -> EngineResult<()> {
    for ((state, column), context) in group
        .states
        .iter_mut()
        .zip(agg_columns.iter())
        .zip(contexts.iter())
    {
        state.update(column.as_deref(), row, context)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Schema;
    use crate::table::TableBuilder;

    fn scores() -> Table {
        let schema = Schema::from_pairs(&[("name", DataType::Str), ("points", DataType::Int)]);
        let mut b = TableBuilder::new("final_joined_table", schema);
        for (name, points) in [
            ("Heat", 102),
            ("Heat", 95),
            ("Spurs", 110),
            ("Spurs", 99),
            ("Spurs", 87),
        ] {
            b.push_values::<_, Value>(vec![Value::str(name), Value::Int(points)])
                .unwrap();
        }
        b.build()
    }

    #[test]
    fn max_per_group_matches_figure4_query1() {
        // SELECT name, MAX(points_scored) FROM final_joined_table GROUP BY name
        let out = aggregate(
            &scores(),
            &[(Expr::col("name"), "name".to_string())],
            &[AggCall::new(
                AggFunc::Max,
                Some(Expr::col("points")),
                "max_points",
            )],
        )
        .unwrap();
        assert_eq!(out.num_rows(), 2);
        assert_eq!(out.value(0, "name").unwrap(), Value::str("Heat"));
        assert_eq!(out.value(0, "max_points").unwrap(), Value::Int(102));
        assert_eq!(out.value(1, "max_points").unwrap(), Value::Int(110));
    }

    #[test]
    fn count_star_vs_count_expr_with_nulls() {
        let schema = Schema::from_pairs(&[("x", DataType::Int)]);
        let mut b = TableBuilder::new("t", schema);
        b.push_row(vec![Value::Int(1)]).unwrap();
        b.push_row(vec![Value::Null]).unwrap();
        b.push_row(vec![Value::Int(3)]).unwrap();
        let table = b.build();
        let out = aggregate(
            &table,
            &[],
            &[
                AggCall::count_star("n"),
                AggCall::new(AggFunc::Count, Some(Expr::col("x")), "n_x"),
            ],
        )
        .unwrap();
        assert_eq!(out.value(0, "n").unwrap(), Value::Int(3));
        assert_eq!(out.value(0, "n_x").unwrap(), Value::Int(2));
    }

    #[test]
    fn sum_and_avg() {
        let out = aggregate(
            &scores(),
            &[(Expr::col("name"), "name".to_string())],
            &[
                AggCall::new(AggFunc::Sum, Some(Expr::col("points")), "total"),
                AggCall::new(AggFunc::Avg, Some(Expr::col("points")), "avg"),
                AggCall::new(AggFunc::Min, Some(Expr::col("points")), "min"),
            ],
        )
        .unwrap();
        assert_eq!(out.value(0, "total").unwrap(), Value::Int(197));
        assert_eq!(out.value(1, "total").unwrap(), Value::Int(296));
        assert_eq!(out.value(1, "min").unwrap(), Value::Int(87));
        let avg = out.value(1, "avg").unwrap().as_float().unwrap();
        assert!((avg - 296.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn global_aggregation_on_empty_table_returns_one_row() {
        let schema = Schema::from_pairs(&[("x", DataType::Int)]);
        let empty = Table::empty("t", schema);
        let out = aggregate(&empty, &[], &[AggCall::count_star("n")]).unwrap();
        assert_eq!(out.num_rows(), 1);
        assert_eq!(out.value(0, "n").unwrap(), Value::Int(0));
    }

    #[test]
    fn grouped_aggregation_on_empty_table_returns_zero_rows() {
        let schema = Schema::from_pairs(&[("x", DataType::Int)]);
        let empty = Table::empty("t", schema);
        let out = aggregate(
            &empty,
            &[(Expr::col("x"), "x".to_string())],
            &[AggCall::count_star("n")],
        )
        .unwrap();
        assert_eq!(out.num_rows(), 0);
    }

    #[test]
    fn aggregating_a_string_column_numerically_is_an_error() {
        let out = aggregate(
            &scores(),
            &[],
            &[AggCall::new(AggFunc::Sum, Some(Expr::col("name")), "s")],
        );
        assert!(matches!(out, Err(EngineError::TypeMismatch { .. })));
    }

    #[test]
    fn group_order_is_first_seen_order() {
        let out = aggregate(
            &scores(),
            &[(Expr::col("name"), "team".to_string())],
            &[AggCall::count_star("games")],
        )
        .unwrap();
        assert_eq!(out.value(0, "team").unwrap(), Value::str("Heat"));
        assert_eq!(out.value(1, "team").unwrap(), Value::str("Spurs"));
        assert_eq!(out.value(0, "games").unwrap(), Value::Int(2));
        assert_eq!(out.value(1, "games").unwrap(), Value::Int(3));
    }

    #[test]
    fn integer_group_keys_use_the_typed_path_and_group_nulls_together() {
        let schema = Schema::from_pairs(&[("x", DataType::Int)]);
        let mut b = TableBuilder::new("t", schema);
        for v in [Value::Int(1), Value::Null, Value::Int(1), Value::Null] {
            b.push_row(vec![v]).unwrap();
        }
        let out = aggregate(
            &b.build(),
            &[(Expr::col("x"), "x".to_string())],
            &[AggCall::count_star("n")],
        )
        .unwrap();
        assert_eq!(out.num_rows(), 2);
        assert_eq!(out.value(0, "n").unwrap(), Value::Int(2));
        assert_eq!(out.value(1, "n").unwrap(), Value::Int(2));
        assert!(out.value(1, "x").unwrap().is_null());
    }

    #[test]
    fn agg_func_lookup() {
        assert_eq!(AggFunc::from_name("max"), Some(AggFunc::Max));
        assert_eq!(AggFunc::from_name("COUNT"), Some(AggFunc::Count));
        assert_eq!(AggFunc::from_name("median"), None);
    }
}
