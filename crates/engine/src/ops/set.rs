//! LIMIT, DISTINCT, and UNION ALL.

use crate::error::{EngineError, EngineResult};
use crate::table::Table;
use std::collections::HashSet;

/// Keep only the first `n` rows.
pub fn limit(input: &Table, n: usize) -> EngineResult<Table> {
    let rows = input.rows().iter().take(n).cloned().collect();
    Table::new(
        format!("{}_limited", input.name()),
        input.schema().clone(),
        rows,
    )
}

/// Remove duplicate rows (keeping the first occurrence of each).
pub fn distinct(input: &Table) -> EngineResult<Table> {
    let mut seen: HashSet<String> = HashSet::with_capacity(input.num_rows());
    let mut rows = Vec::new();
    for row in input.iter() {
        let key: String = row
            .iter()
            .map(|v| v.group_key())
            .collect::<Vec<_>>()
            .join("\u{1}");
        if seen.insert(key) {
            rows.push(row.clone());
        }
    }
    Table::new(
        format!("{}_distinct", input.name()),
        input.schema().clone(),
        rows,
    )
}

/// Concatenate two tables with compatible schemas (same arity and column types).
pub fn union_all(left: &Table, right: &Table) -> EngineResult<Table> {
    if left.num_columns() != right.num_columns() {
        return Err(EngineError::schema(format!(
            "UNION ALL requires the same number of columns ({} vs {})",
            left.num_columns(),
            right.num_columns()
        )));
    }
    let mut rows = left.rows().to_vec();
    rows.extend(right.rows().iter().cloned());
    Table::new(
        format!("{}_union", left.name()),
        left.schema().clone(),
        rows,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Schema;
    use crate::table::TableBuilder;
    use crate::value::{DataType, Value};

    fn table(name: &str, values: &[i64]) -> Table {
        let schema = Schema::from_pairs(&[("x", DataType::Int)]);
        let mut b = TableBuilder::new(name, schema);
        for v in values {
            b.push_row(vec![Value::Int(*v)]).unwrap();
        }
        b.build()
    }

    #[test]
    fn limit_truncates() {
        let out = limit(&table("t", &[1, 2, 3, 4]), 2).unwrap();
        assert_eq!(out.num_rows(), 2);
        let out = limit(&table("t", &[1]), 10).unwrap();
        assert_eq!(out.num_rows(), 1);
    }

    #[test]
    fn distinct_removes_duplicates_preserving_order() {
        let out = distinct(&table("t", &[3, 1, 3, 2, 1])).unwrap();
        let values: Vec<i64> = out
            .column("x")
            .unwrap()
            .iter()
            .map(|v| v.as_int().unwrap())
            .collect();
        assert_eq!(values, vec![3, 1, 2]);
    }

    #[test]
    fn union_all_concatenates() {
        let out = union_all(&table("a", &[1, 2]), &table("b", &[3])).unwrap();
        assert_eq!(out.num_rows(), 3);
    }

    #[test]
    fn union_all_rejects_mismatched_arity() {
        let two_cols = {
            let schema = Schema::from_pairs(&[("x", DataType::Int), ("y", DataType::Int)]);
            TableBuilder::new("two", schema).build()
        };
        assert!(union_all(&table("a", &[1]), &two_cols).is_err());
    }
}
