//! LIMIT, DISTINCT, and UNION ALL — vectorized over the columnar layout.

use crate::column::Column;
use crate::error::{EngineError, EngineResult};
use crate::table::Table;
use std::collections::HashSet;
use std::sync::Arc;

/// Keep only the first `n` rows. When `n` covers the whole table the columns
/// are shared zero-copy.
pub fn limit(input: &Table, n: usize) -> EngineResult<Table> {
    let out = if n >= input.num_rows() {
        input.shared_copy()
    } else {
        let indices: Vec<usize> = (0..n).collect();
        input.take(&indices)
    };
    Ok(out.renamed(format!("{}_limited", input.name())))
}

/// Remove duplicate rows (keeping the first occurrence of each).
pub fn distinct(input: &Table) -> EngineResult<Table> {
    let mut seen: HashSet<String> = HashSet::with_capacity(input.num_rows());
    let mut indices = Vec::new();
    let mut key = String::new();
    for row in 0..input.num_rows() {
        key.clear();
        for column in input.columns() {
            column.write_group_key(row, &mut key);
            key.push('\u{1}');
        }
        if seen.insert(key.clone()) {
            indices.push(row);
        }
    }
    let out = if indices.len() == input.num_rows() {
        input.shared_copy()
    } else {
        input.take(&indices)
    };
    Ok(out.renamed(format!("{}_distinct", input.name())))
}

/// Concatenate two tables with compatible schemas (same arity and column types).
pub fn union_all(left: &Table, right: &Table) -> EngineResult<Table> {
    if left.num_columns() != right.num_columns() {
        return Err(EngineError::schema(format!(
            "UNION ALL requires the same number of columns ({} vs {})",
            left.num_columns(),
            right.num_columns()
        )));
    }
    let columns: Vec<Arc<Column>> = left
        .columns()
        .iter()
        .zip(right.columns())
        .map(|(l, r)| Arc::new(Column::concat(&[l, r])))
        .collect();
    Table::from_columns(
        format!("{}_union", left.name()),
        left.schema().clone(),
        columns,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Schema;
    use crate::table::TableBuilder;
    use crate::value::{DataType, Value};

    fn table(name: &str, values: &[i64]) -> Table {
        let schema = Schema::from_pairs(&[("x", DataType::Int)]);
        let mut b = TableBuilder::new(name, schema);
        for v in values {
            b.push_row(vec![Value::Int(*v)]).unwrap();
        }
        b.build()
    }

    #[test]
    fn limit_truncates() {
        let out = limit(&table("t", &[1, 2, 3, 4]), 2).unwrap();
        assert_eq!(out.num_rows(), 2);
        let out = limit(&table("t", &[1]), 10).unwrap();
        assert_eq!(out.num_rows(), 1);
    }

    #[test]
    fn limit_covering_all_rows_shares_columns() {
        let input = table("t", &[1, 2]);
        let out = limit(&input, 5).unwrap();
        assert!(Arc::ptr_eq(
            input.column_at(0).unwrap(),
            out.column_at(0).unwrap()
        ));
    }

    #[test]
    fn distinct_removes_duplicates_preserving_order() {
        let out = distinct(&table("t", &[3, 1, 3, 2, 1])).unwrap();
        let values: Vec<i64> = out
            .column("x")
            .unwrap()
            .iter()
            .map(|v| v.as_int().unwrap())
            .collect();
        assert_eq!(values, vec![3, 1, 2]);
    }

    #[test]
    fn union_all_concatenates() {
        let out = union_all(&table("a", &[1, 2]), &table("b", &[3])).unwrap();
        assert_eq!(out.num_rows(), 3);
    }

    #[test]
    fn union_all_rejects_mismatched_arity() {
        let two_cols = {
            let schema = Schema::from_pairs(&[("x", DataType::Int), ("y", DataType::Int)]);
            TableBuilder::new("two", schema).build()
        };
        assert!(union_all(&table("a", &[1]), &two_cols).is_err());
    }
}
