//! Projection (π): compute output columns from expressions.
//!
//! Vectorized and zero-copy where possible: a projection that simply selects
//! an existing column re-uses the input's `Arc`-shared column without copying
//! any row data; computed expressions are evaluated column-at-a-time.

use crate::error::EngineResult;
use crate::expr::Expr;
use crate::schema::{Field, Schema};
use crate::table::Table;

/// One output column of a projection: an expression plus an output name.
#[derive(Debug, Clone, PartialEq)]
pub struct Projection {
    /// Expression to evaluate per row.
    pub expr: Expr,
    /// Output column name.
    pub alias: String,
}

impl Projection {
    /// Project an expression under an explicit alias.
    pub fn new(expr: Expr, alias: impl Into<String>) -> Self {
        Projection {
            expr,
            alias: alias.into(),
        }
    }

    /// Project a column under its own name.
    pub fn column(name: impl Into<String>) -> Self {
        let name = name.into();
        Projection {
            expr: Expr::col(name.clone()),
            // Keep only the unqualified part as the output name.
            alias: name.rsplit('.').next().unwrap_or(&name).to_string(),
        }
    }
}

/// The output schema of a projection list against an input schema, with
/// duplicate aliases disambiguated by appending a counter. Shared by
/// [`project`] and the fused [`filter_project`](super::filter_project).
pub(crate) fn projection_schema(
    in_schema: &Schema,
    projections: &[Projection],
) -> EngineResult<Schema> {
    let mut fields = Vec::with_capacity(projections.len());
    for p in projections {
        let data_type = p.expr.output_type(in_schema);
        let mut name = p.alias.clone();
        let mut suffix = 1;
        while fields.iter().any(|f: &Field| f.name == name) {
            name = format!("{}_{suffix}", p.alias);
            suffix += 1;
        }
        fields.push(Field::new(name, data_type));
    }
    Schema::new(fields)
}

/// Evaluate the projections over all rows of `input` at once.
pub fn project(input: &Table, projections: &[Projection]) -> EngineResult<Table> {
    let in_schema = input.schema();
    let schema = projection_schema(in_schema, projections)?;
    let mut columns = Vec::with_capacity(projections.len());
    for p in projections {
        // evaluate_batch resolves plain column references to Arc bumps, so a
        // narrowing projection copies no row data at all.
        columns.push(
            p.expr
                .evaluate_batch(in_schema, input.columns(), input.num_rows())?,
        );
    }
    Table::from_columns(format!("{}_projected", input.name()), schema, columns)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{BinaryOp, ScalarFunc};
    use crate::schema::Schema;
    use crate::table::TableBuilder;
    use crate::value::{DataType, Value};
    use std::sync::Arc;

    fn table() -> Table {
        let schema = Schema::from_pairs(&[("title", DataType::Str), ("inception", DataType::Str)]);
        let mut b = TableBuilder::new("paintings", schema);
        b.push_values(["Madonna", "1889-01-05"]).unwrap();
        b.push_values(["Irises", "1480-05-12"]).unwrap();
        b.build()
    }

    #[test]
    fn project_selects_and_renames_columns() {
        let out = project(
            &table(),
            &[
                Projection::column("title"),
                Projection::new(
                    Expr::Func {
                        func: ScalarFunc::Century,
                        args: vec![Expr::col("inception")],
                    },
                    "century",
                ),
            ],
        )
        .unwrap();
        assert_eq!(out.schema().names(), vec!["title", "century"]);
        assert_eq!(out.value(0, "century").unwrap(), Value::Int(19));
        assert_eq!(out.value(1, "century").unwrap(), Value::Int(15));
    }

    #[test]
    fn plain_column_projection_shares_column_storage() {
        let input = table();
        let out = project(&input, &[Projection::column("title")]).unwrap();
        assert!(Arc::ptr_eq(
            input.column_at(0).unwrap(),
            out.column_at(0).unwrap()
        ));
    }

    #[test]
    fn computed_expressions_get_inferred_types() {
        let out = project(
            &table(),
            &[Projection::new(
                Expr::binary(Expr::lit(1), BinaryOp::Add, Expr::lit(2)),
                "three",
            )],
        )
        .unwrap();
        assert_eq!(out.schema().field(0).unwrap().data_type, DataType::Int);
        assert_eq!(out.value(0, "three").unwrap(), Value::Int(3));
    }

    #[test]
    fn duplicate_aliases_are_disambiguated() {
        let out = project(
            &table(),
            &[Projection::column("title"), Projection::column("title")],
        )
        .unwrap();
        assert_eq!(out.schema().names(), vec!["title", "title_1"]);
    }

    #[test]
    fn qualified_columns_project_under_base_name() {
        let schema = Schema::from_pairs(&[("m.title", DataType::Str)]);
        let mut b = TableBuilder::new("joined", schema);
        b.push_values(["Scream"]).unwrap();
        let out = project(&b.build(), &[Projection::column("m.title")]).unwrap();
        assert_eq!(out.schema().names(), vec!["title"]);
    }
}
