//! Dynamically typed values and data types.
//!
//! The engine is deliberately dynamically typed — just like the SQLite backend
//! used by the original CAESURA prototype. Two "wide" types are added on top of
//! the usual scalar types so that multi-modal collections can be presented to
//! the planner as ordinary two-column tables (see Figure 4 of the paper):
//!
//! * [`DataType::Image`] — an opaque reference into an image collection. The
//!   value stores the image key (e.g. `img/17.png`); the actual pixel data /
//!   scene annotation lives in the `caesura-modal` crate.
//! * [`DataType::Text`] — a full text document (e.g. a basketball game report)
//!   stored inline.

use std::cmp::Ordering;
use std::fmt;
use std::sync::Arc;

/// The data type of a [`Value`] or of a schema field.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DataType {
    /// Absence of a value. Only used for untyped NULL literals.
    Null,
    /// Boolean.
    Bool,
    /// 64-bit signed integer.
    Int,
    /// 64-bit IEEE float.
    Float,
    /// UTF-8 string.
    Str,
    /// Calendar date, stored as days since 1970-01-01 plus the original text.
    Date,
    /// Opaque reference to an image in an image collection.
    Image,
    /// A full text document.
    Text,
}

impl DataType {
    /// Name of the type as presented to the language model in prompts
    /// (matches the notation used in Figure 3 of the paper, e.g. `'IMAGE'`).
    pub fn prompt_name(&self) -> &'static str {
        match self {
            DataType::Null => "null",
            DataType::Bool => "bool",
            DataType::Int => "int",
            DataType::Float => "float",
            DataType::Str => "str",
            DataType::Date => "date",
            DataType::Image => "IMAGE",
            DataType::Text => "TEXT",
        }
    }

    /// Whether the type is numeric (int or float).
    pub fn is_numeric(&self) -> bool {
        matches!(self, DataType::Int | DataType::Float)
    }

    /// Whether the type is a non-relational modality (image or text document).
    pub fn is_multimodal(&self) -> bool {
        matches!(self, DataType::Image | DataType::Text)
    }
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.prompt_name())
    }
}

/// A date value: days since the Unix epoch plus the original textual form.
///
/// The artwork metadata table stores inception dates as strings in a variety of
/// formats (`1889-01-05`, `1480`, `c. 1503`), exactly like the Wikidata-derived
/// table in the paper; parsing them is the job of the Python-UDF substitute.
/// When a date has been parsed we keep both the normalized year and the
/// original text so observations remain human readable.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct DateValue {
    /// Year component (may be negative for BCE).
    pub year: i32,
    /// Month component, 1-12, or 0 if unknown.
    pub month: u8,
    /// Day component, 1-31, or 0 if unknown.
    pub day: u8,
}

impl DateValue {
    /// Build a date from a year only.
    pub fn from_year(year: i32) -> Self {
        DateValue {
            year,
            month: 0,
            day: 0,
        }
    }

    /// Build a full date.
    pub fn new(year: i32, month: u8, day: u8) -> Self {
        DateValue { year, month, day }
    }

    /// The century this date belongs to (1-based: 1889 → 19).
    pub fn century(&self) -> i32 {
        if self.year > 0 {
            (self.year - 1) / 100 + 1
        } else {
            self.year / 100 - 1
        }
    }
}

impl fmt::Display for DateValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.month == 0 {
            write!(f, "{:04}", self.year)
        } else if self.day == 0 {
            write!(f, "{:04}-{:02}", self.year, self.month)
        } else {
            write!(f, "{:04}-{:02}-{:02}", self.year, self.month, self.day)
        }
    }
}

/// A dynamically typed value stored in a table cell.
#[derive(Debug, Clone)]
pub enum Value {
    /// SQL NULL.
    Null,
    /// Boolean.
    Bool(bool),
    /// 64-bit integer.
    Int(i64),
    /// 64-bit float.
    Float(f64),
    /// String. `Arc<str>` keeps row cloning cheap during joins.
    Str(Arc<str>),
    /// Calendar date.
    Date(DateValue),
    /// Opaque reference (key) into an image collection.
    Image(Arc<str>),
    /// Inline text document.
    Text(Arc<str>),
}

impl Value {
    /// Construct a string value.
    pub fn str(s: impl AsRef<str>) -> Self {
        Value::Str(Arc::from(s.as_ref()))
    }

    /// Construct an image reference value.
    pub fn image(key: impl AsRef<str>) -> Self {
        Value::Image(Arc::from(key.as_ref()))
    }

    /// Construct a text document value.
    pub fn text(content: impl AsRef<str>) -> Self {
        Value::Text(Arc::from(content.as_ref()))
    }

    /// The [`DataType`] of this value.
    pub fn data_type(&self) -> DataType {
        match self {
            Value::Null => DataType::Null,
            Value::Bool(_) => DataType::Bool,
            Value::Int(_) => DataType::Int,
            Value::Float(_) => DataType::Float,
            Value::Str(_) => DataType::Str,
            Value::Date(_) => DataType::Date,
            Value::Image(_) => DataType::Image,
            Value::Text(_) => DataType::Text,
        }
    }

    /// Whether the value is NULL.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// View as boolean, if possible (ints are truthy when non-zero).
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            Value::Int(i) => Some(*i != 0),
            _ => None,
        }
    }

    /// View as integer, if the value is an int or an integral float.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            Value::Float(f) if f.fract() == 0.0 => Some(*f as i64),
            Value::Bool(b) => Some(i64::from(*b)),
            _ => None,
        }
    }

    /// View as float (ints are widened).
    pub fn as_float(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// View as a string slice for string-like values (str, image key, text).
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) | Value::Image(s) | Value::Text(s) => Some(s),
            _ => None,
        }
    }

    /// View as date.
    pub fn as_date(&self) -> Option<&DateValue> {
        match self {
            Value::Date(d) => Some(d),
            _ => None,
        }
    }

    /// Render the value the way it is shown to the LLM in observations
    /// (short, human-readable, truncating long documents).
    pub fn preview(&self, max_len: usize) -> String {
        let text = self.to_string();
        if text.chars().count() <= max_len {
            text
        } else {
            let truncated: String = text.chars().take(max_len.saturating_sub(3)).collect();
            format!("{truncated}...")
        }
    }

    /// Total ordering used by ORDER BY and MIN/MAX: NULLs sort first, numbers
    /// compare numerically across int/float, other types compare within their
    /// own class and by type name across classes.
    pub fn total_cmp(&self, other: &Value) -> Ordering {
        use Value::*;
        match (self, other) {
            (Null, Null) => Ordering::Equal,
            (Null, _) => Ordering::Less,
            (_, Null) => Ordering::Greater,
            (Bool(a), Bool(b)) => a.cmp(b),
            (Int(a), Int(b)) => a.cmp(b),
            (Float(a), Float(b)) => a.total_cmp(b),
            (Int(a), Float(b)) => (*a as f64).total_cmp(b),
            (Float(a), Int(b)) => a.total_cmp(&(*b as f64)),
            (Str(a), Str(b)) => a.cmp(b),
            (Date(a), Date(b)) => (a.year, a.month, a.day).cmp(&(b.year, b.month, b.day)),
            (Image(a), Image(b)) => a.cmp(b),
            (Text(a), Text(b)) => a.cmp(b),
            (a, b) => a.data_type().prompt_name().cmp(b.data_type().prompt_name()),
        }
    }

    /// SQL equality (NULL never equals anything, numbers compare across types).
    pub fn sql_eq(&self, other: &Value) -> Option<bool> {
        if self.is_null() || other.is_null() {
            return None;
        }
        Some(match (self, other) {
            (Value::Int(a), Value::Float(b)) => (*a as f64) == *b,
            (Value::Float(a), Value::Int(b)) => *a == (*b as f64),
            _ => self.total_cmp(other) == Ordering::Equal,
        })
    }

    /// A stable key usable for hashing in joins and group-by. Floats are
    /// keyed by their bit pattern; strings by content.
    pub fn group_key(&self) -> String {
        let mut out = String::new();
        self.write_group_key(&mut out);
        out
    }

    /// Append this value's grouping key to `out`. This is the single source
    /// of truth for the key encoding — the columnar kernels
    /// ([`Column::write_group_key`](crate::column::Column::write_group_key))
    /// call the same per-type writers below, so typed and mixed columns can
    /// never drift apart.
    pub fn write_group_key(&self, out: &mut String) {
        match self {
            Value::Null => key_writers::null(out),
            Value::Bool(b) => key_writers::bool(*b, out),
            Value::Int(i) => key_writers::int(*i, out),
            Value::Float(f) => key_writers::float(*f, out),
            Value::Str(s) => key_writers::str("s:", s, out),
            Value::Date(d) => key_writers::date(d, out),
            Value::Image(s) => key_writers::str("img:", s, out),
            Value::Text(s) => key_writers::str("t:", s, out),
        }
    }
}

/// The per-type grouping-key writers shared by [`Value::write_group_key`]
/// and the typed columnar kernels. Kept in one module so the encoding (and
/// in particular the float/int unification rule) cannot diverge between the
/// row and columnar paths.
pub(crate) mod key_writers {
    use super::DateValue;
    use std::fmt::Write;

    pub(crate) fn null(out: &mut String) {
        out.push_str("\u{0}null");
    }

    pub(crate) fn bool(b: bool, out: &mut String) {
        let _ = write!(out, "b:{b}");
    }

    pub(crate) fn int(i: i64, out: &mut String) {
        let _ = write!(out, "i:{i}");
    }

    pub(crate) fn float(f: f64, out: &mut String) {
        if f.fract() == 0.0 && f.abs() < 1e15 {
            // Make 2.0 group together with the integer 2.
            let _ = write!(out, "i:{}", f as i64);
        } else {
            let _ = write!(out, "f:{}", f.to_bits());
        }
    }

    pub(crate) fn str(prefix: &'static str, s: &str, out: &mut String) {
        out.push_str(prefix);
        out.push_str(s);
    }

    pub(crate) fn date(d: &DateValue, out: &mut String) {
        let _ = write!(out, "d:{d}");
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (Value::Null, Value::Null) => true,
            _ => self.sql_eq(other).unwrap_or(false),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => f.write_str("NULL"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(v) => {
                if v.fract() == 0.0 && v.abs() < 1e15 {
                    write!(f, "{:.1}", v)
                } else {
                    write!(f, "{v}")
                }
            }
            Value::Str(s) => f.write_str(s),
            Value::Date(d) => write!(f, "{d}"),
            Value::Image(s) => write!(f, "<image:{s}>"),
            Value::Text(s) => {
                let preview: String = s.chars().take(40).collect();
                if s.chars().count() > 40 {
                    write!(f, "<text:{preview}...>")
                } else {
                    write!(f, "<text:{preview}>")
                }
            }
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<i32> for Value {
    fn from(v: i32) -> Self {
        Value::Int(v as i64)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::str(v)
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::str(v)
    }
}

impl From<DateValue> for Value {
    fn from(v: DateValue) -> Self {
        Value::Date(v)
    }
}

impl<T: Into<Value>> From<Option<T>> for Value {
    fn from(v: Option<T>) -> Self {
        match v {
            Some(inner) => inner.into(),
            None => Value::Null,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn data_types_report_multimodality() {
        assert!(DataType::Image.is_multimodal());
        assert!(DataType::Text.is_multimodal());
        assert!(!DataType::Str.is_multimodal());
        assert!(DataType::Int.is_numeric());
        assert!(DataType::Float.is_numeric());
        assert!(!DataType::Bool.is_numeric());
    }

    #[test]
    fn century_computation_matches_paper_examples() {
        // Figure 1: 1889 belongs to the 19th century, 1480 to the 15th.
        assert_eq!(DateValue::from_year(1889).century(), 19);
        assert_eq!(DateValue::from_year(1480).century(), 15);
        assert_eq!(DateValue::from_year(1900).century(), 19);
        assert_eq!(DateValue::from_year(1901).century(), 20);
        assert_eq!(DateValue::from_year(2000).century(), 20);
    }

    #[test]
    fn numeric_comparison_spans_int_and_float() {
        assert_eq!(Value::Int(3).total_cmp(&Value::Float(3.0)), Ordering::Equal);
        assert_eq!(Value::Int(2).total_cmp(&Value::Float(2.5)), Ordering::Less);
        assert_eq!(
            Value::Float(10.0).total_cmp(&Value::Int(3)),
            Ordering::Greater
        );
    }

    #[test]
    fn null_never_equals_anything_under_sql_semantics() {
        assert_eq!(Value::Null.sql_eq(&Value::Null), None);
        assert_eq!(Value::Null.sql_eq(&Value::Int(1)), None);
        assert_eq!(Value::Int(1).sql_eq(&Value::Int(1)), Some(true));
    }

    #[test]
    fn group_keys_unify_integral_floats_and_ints() {
        assert_eq!(Value::Int(2).group_key(), Value::Float(2.0).group_key());
        assert_ne!(Value::Int(2).group_key(), Value::Float(2.5).group_key());
        assert_ne!(Value::str("2").group_key(), Value::Int(2).group_key());
    }

    #[test]
    fn preview_truncates_long_text() {
        let long = "x".repeat(100);
        let value = Value::text(&long);
        let preview = value.preview(20);
        assert!(preview.len() <= 20);
        assert!(preview.ends_with("..."));
    }

    #[test]
    fn display_renders_images_and_text_distinctly() {
        assert_eq!(Value::image("img/1.png").to_string(), "<image:img/1.png>");
        assert!(Value::text("The Spurs defeated the Heat")
            .to_string()
            .starts_with("<text:"));
    }

    #[test]
    fn conversions_from_primitives() {
        assert_eq!(Value::from(3i64), Value::Int(3));
        assert_eq!(Value::from(3i32), Value::Int(3));
        assert_eq!(Value::from(true), Value::Bool(true));
        assert_eq!(Value::from("abc"), Value::str("abc"));
        assert_eq!(Value::from(Option::<i64>::None), Value::Null);
        assert_eq!(Value::from(Some(7i64)), Value::Int(7));
    }

    #[test]
    fn as_int_accepts_integral_floats_only() {
        assert_eq!(Value::Float(4.0).as_int(), Some(4));
        assert_eq!(Value::Float(4.5).as_int(), None);
        assert_eq!(Value::Bool(true).as_int(), Some(1));
        assert_eq!(Value::str("4").as_int(), None);
    }
}
