//! Reference answers ("oracles") for every benchmark query, computed directly
//! from the generators' ground-truth records — *not* by running CAESURA — so
//! that physical-plan correctness can be graded against an independent source
//! of truth.

use crate::queries::BenchmarkQuery;
use caesura_data::{ArtworkData, FieldworkData, RotowireData};
use caesura_engine::Value;
use std::collections::{BTreeMap, BTreeSet};

/// A reference answer.
#[derive(Debug, Clone, PartialEq)]
pub enum Reference {
    /// A single scalar.
    Scalar(Value),
    /// A mapping from group key (rendered as text) to a numeric value.
    KeyedNumbers(BTreeMap<String, f64>),
    /// A set of strings (e.g. the titles a List query must return).
    StringSet(BTreeSet<String>),
}

impl Reference {
    /// Convenience constructor for integer scalars.
    pub fn int(value: i64) -> Reference {
        Reference::Scalar(Value::Int(value))
    }

    /// Convenience constructor for keyed numbers from an iterator.
    pub fn keyed<I, K>(entries: I) -> Reference
    where
        I: IntoIterator<Item = (K, f64)>,
        K: ToString,
    {
        Reference::KeyedNumbers(
            entries
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        )
    }
}

/// Compute the reference answer for a benchmark query.
pub fn reference_for(
    query: &BenchmarkQuery,
    artwork: &ArtworkData,
    rotowire: &RotowireData,
) -> Reference {
    match query.id {
        // ---- Artwork ----------------------------------------------------------
        "A01" => Reference::int(artwork.records.len() as i64),
        "A02" => Reference::int(
            artwork
                .records
                .iter()
                .filter(|r| r.movement == "Impressionism")
                .count() as i64,
        ),
        "A03" => Reference::int(
            artwork
                .records
                .iter()
                .map(|r| i64::from(r.year))
                .min()
                .unwrap_or(0),
        ),
        "A04" => Reference::int(
            artwork
                .records
                .iter()
                .filter(|r| r.artist == "Clara Moreau")
                .count() as i64,
        ),
        "A05" => Reference::int(
            artwork
                .records
                .iter()
                .filter(|r| r.madonna_and_child)
                .count() as i64,
        ),
        "A06" => Reference::int(
            artwork
                .records
                .iter()
                .filter(|r| r.count_of("sword") >= 2)
                .count() as i64,
        ),
        "A07" => Reference::int(
            artwork
                .records
                .iter()
                .map(|r| i64::from(r.count_of("dog")))
                .max()
                .unwrap_or(0),
        ),
        "A08" => Reference::int(
            artwork
                .records
                .iter()
                .filter(|r| r.movement == "Baroque" && r.count_of("skull") > 0)
                .count() as i64,
        ),
        "A09" => grouped_count(artwork.records.iter().map(|r| r.movement.clone())),
        "A10" => Reference::StringSet(
            artwork
                .records
                .iter()
                .filter(|r| r.movement == "Renaissance")
                .map(|r| r.title.clone())
                .collect(),
        ),
        "A11" => grouped_min(
            artwork
                .records
                .iter()
                .map(|r| (r.artist.clone(), f64::from(r.year))),
        ),
        "A12" => grouped_count(artwork.records.iter().map(|r| r.genre.clone())),
        "A13" => grouped_count(
            artwork
                .records
                .iter()
                .filter(|r| r.madonna_and_child)
                .map(|r| r.century.to_string()),
        ),
        "A14" => Reference::StringSet(
            artwork
                .records
                .iter()
                .filter(|r| r.count_of("horse") > 0)
                .map(|r| r.title.clone())
                .collect(),
        ),
        "A15" => grouped_max(
            artwork
                .records
                .iter()
                .map(|r| (r.movement.clone(), f64::from(r.count_of("flower")))),
        ),
        "A16" => Reference::StringSet(
            artwork
                .records
                .iter()
                .filter(|r| r.count_of("crown") > 0)
                .map(|r| r.title.clone())
                .collect(),
        ),
        "A17" => grouped_count(artwork.records.iter().map(|r| r.movement.clone())),
        "A18" => grouped_count(artwork.records.iter().map(|r| r.genre.clone())),
        "A19" => grouped_count(artwork.records.iter().map(|r| r.century.to_string())),
        "A20" => grouped_count(artwork.records.iter().map(|r| r.artist.clone())),
        "A21" => grouped_count(
            artwork
                .records
                .iter()
                .filter(|r| r.madonna_and_child)
                .map(|r| r.century.to_string()),
        ),
        "A22" => grouped_max(
            artwork
                .records
                .iter()
                .map(|r| (r.century.to_string(), f64::from(r.count_of("sword")))),
        ),
        "A23" => grouped_count(
            artwork
                .records
                .iter()
                .filter(|r| r.count_of("angel") > 0)
                .map(|r| r.movement.clone()),
        ),
        "A24" => grouped_avg(
            artwork
                .records
                .iter()
                .map(|r| (r.genre.clone(), f64::from(r.count_of("bird")))),
        ),
        // ---- Rotowire ---------------------------------------------------------
        "R01" => Reference::int(
            rotowire
                .teams
                .iter()
                .filter(|t| t.conference == "Eastern")
                .count() as i64,
        ),
        "R02" => Reference::int(
            rotowire
                .players
                .iter()
                .map(|p| p.height_cm)
                .max()
                .unwrap_or(0),
        ),
        "R03" => Reference::int(
            rotowire
                .players
                .iter()
                .filter(|p| p.nationality == "USA")
                .count() as i64,
        ),
        "R04" => Reference::int(rotowire.teams.len() as i64),
        "R05" => Reference::int(rotowire.max_points_of("Heat").unwrap_or(0)),
        "R06" => Reference::int(
            rotowire
                .games
                .iter()
                .filter(|g| g.winner() == "Heat")
                .count() as i64,
        ),
        "R07" => {
            let points: Vec<f64> = rotowire
                .games
                .iter()
                .filter_map(|g| g.points_of("Bulls"))
                .map(|p| p as f64)
                .collect();
            let avg = if points.is_empty() {
                0.0
            } else {
                points.iter().sum::<f64>() / points.len() as f64
            };
            Reference::Scalar(Value::Float(avg))
        }
        "R08" => Reference::int(rotowire.losses_of("Lakers")),
        "R09" => grouped_count(rotowire.teams.iter().map(|t| t.conference.clone())),
        "R10" => Reference::StringSet(
            rotowire
                .players
                .iter()
                .filter(|p| p.team == "Heat")
                .map(|p| p.name.clone())
                .collect(),
        ),
        "R11" => grouped_count(rotowire.teams.iter().map(|t| t.division.clone())),
        "R12" => grouped_avg(
            rotowire
                .players
                .iter()
                .map(|p| (p.position.clone(), p.height_cm as f64)),
        ),
        "R13" | "R21" => max_points_per_team(rotowire),
        "R14" | "R22" => avg_points_per_team(rotowire),
        "R15" | "R24" => grouped_count(rotowire.games.iter().map(|g| g.loser().to_string())),
        "R16" | "R23" => grouped_count(rotowire.games.iter().map(|g| g.winner().to_string())),
        "R17" => grouped_count(rotowire.teams.iter().map(|t| t.conference.clone())),
        "R18" => grouped_avg(
            rotowire
                .players
                .iter()
                .map(|p| (p.position.clone(), p.height_cm as f64)),
        ),
        "R19" => grouped_count(rotowire.players.iter().map(|p| p.nationality.clone())),
        "R20" => grouped_count(rotowire.teams.iter().map(|t| t.division.clone())),
        other => panic!("no oracle defined for benchmark query {other}"),
    }
}

/// Compute the reference answer for a fieldwork benchmark query from the
/// generator's ground truth. Adversarial queries whose
/// [`Expectation`](crate::queries::Expectation) is a specific failure (an
/// error category or a typed execution error) get the
/// answer a *correct* run would have produced over the clean lake — grading
/// never compares against it, but reports can show what was missed.
pub fn fieldwork_reference_for(query: &BenchmarkQuery, data: &FieldworkData) -> Reference {
    // Per-station photo-object counts keyed by an attribute of the station.
    let by = |key: &dyn Fn(&caesura_data::StationRecord) -> String,
              entity: &str|
     -> Vec<(String, f64)> {
        data.stations
            .iter()
            .map(|s| (key(s), f64::from(s.count_of(entity))))
            .collect()
    };
    // Region / terrain / climate / century accessors.
    let region = |s: &caesura_data::StationRecord| s.region.clone();
    let terrain = |s: &caesura_data::StationRecord| s.terrain.clone();
    let century = |s: &caesura_data::StationRecord| s.century.to_string();
    let climate_of = |s: &caesura_data::StationRecord| data.climate_of(&s.region);
    // Count of stations whose photo depicts the entity, grouped by a key.
    let depicting_count =
        |key: &dyn Fn(&caesura_data::StationRecord) -> String, entity: &str| -> Reference {
            grouped_count(
                data.stations
                    .iter()
                    .filter(|s| s.count_of(entity) > 0)
                    .map(key),
            )
        };
    // Log statistics keyed by station attributes.
    let log_stat = |stat: fn(&caesura_data::ExpeditionLog) -> i64| -> Vec<(String, f64)> {
        data.logs
            .iter()
            .map(|l| (l.station.clone(), stat(l) as f64))
            .collect()
    };
    let log_stat_by = |key: &dyn Fn(&caesura_data::StationRecord) -> String,
                       stat: fn(&caesura_data::ExpeditionLog) -> i64|
     -> Vec<(String, f64)> {
        data.logs
            .iter()
            .filter_map(|l| data.station(&l.station).map(|s| (key(s), stat(l) as f64)))
            .collect()
    };
    // Log statistics of the stations passing a station-level filter.
    let filtered_log_stat = |keep: &dyn Fn(&caesura_data::StationRecord) -> bool,
                             stat: fn(&caesura_data::ExpeditionLog) -> i64|
     -> Vec<(String, f64)> {
        data.logs
            .iter()
            .filter(|l| data.station(&l.station).is_some_and(keep))
            .map(|l| (l.station.clone(), stat(l) as f64))
            .collect()
    };
    let specimens = |l: &caesura_data::ExpeditionLog| l.specimens;
    let readings = |l: &caesura_data::ExpeditionLog| l.readings;
    let samples = |l: &caesura_data::ExpeditionLog| l.samples;

    match query.id {
        "F01" => depicting_count(&region, "penguin"),
        "F02" => depicting_count(&terrain, "husky"),
        "F03" => grouped_max(by(&terrain, "tent")),
        "F04" => grouped_max(by(&region, "seal")),
        "F05" => grouped_avg(by(&region, "flag")),
        "F06" => Reference::int(
            data.stations
                .iter()
                .filter(|s| s.count_of("seal") > 0)
                .count() as i64,
        ),
        "F07" => Reference::int(
            data.stations
                .iter()
                .filter(|s| s.count_of("penguin") >= 2)
                .count() as i64,
        ),
        "F08" => depicting_count(&century, "antenna"),
        "F09" => Reference::int(
            data.stations
                .iter()
                .filter(|s| s.count_of("sledge") > 0)
                .count() as i64,
        ),
        "F10" => grouped_min(by(&region, "crate")),
        "F11" => grouped_max(by(&climate_of, "lantern")),
        "F12" => Reference::int(
            data.stations
                .iter()
                .filter(|s| s.count_of("kayak") > 0)
                .count() as i64,
        ),
        "F13" => grouped_max(log_stat(specimens)),
        "F14" => grouped_avg(log_stat(readings)),
        "F15" => grouped_max(log_stat(samples)),
        "F16" => grouped_avg(log_stat(specimens)),
        "F17" => grouped_min(log_stat(readings)),
        "F18" => grouped_max(log_stat_by(&region, specimens)),
        "F19" => grouped_avg(log_stat_by(&climate_of, samples)),
        "F20" => grouped_max(log_stat(readings)),
        "F21" => grouped_avg(log_stat_by(&terrain, specimens)),
        "F22" => grouped_min(log_stat(samples)),
        "F23" => grouped_max(filtered_log_stat(&|s| s.count_of("husky") > 0, specimens)),
        "F24" => grouped_avg(filtered_log_stat(&|s| s.count_of("penguin") > 0, readings)),
        "F25" => grouped_max(filtered_log_stat(&|s| s.region == "Westfjord", samples)),
        "F26" => grouped_avg(filtered_log_stat(&|s| s.terrain == "Tundra", specimens)),
        "F27" => grouped_max(by(&century, "penguin")),
        "F28" => depicting_count(&climate_of, "crate"),
        // Dragons are never annotated: a correct plan answers zero everywhere.
        "F42" => grouped_max(by(&terrain, "dragon")),
        // Adversarial queries expecting a specific failure: the reference is
        // what a correct run over the clean lake would have answered.
        "F29" => Reference::int(
            data.stations
                .iter()
                .map(|s| i64::from(s.count_of("seal")))
                .sum(),
        ),
        "F30" | "F39" => grouped_max(by(
            &region,
            if query.id == "F30" { "tent" } else { "penguin" },
        )),
        "F31" => grouped_count(data.stations.iter().map(|s| s.name.clone())),
        "F32" => grouped_max(by(&terrain, "seal")),
        "F33" => depicting_count(&region, "flag"),
        "F34" | "F38" => grouped_max(log_stat(specimens)),
        "F35" => grouped_max(log_stat(readings)),
        "F36" => grouped_avg(log_stat_by(&region, specimens)),
        "F37" => grouped_avg(log_stat(samples)),
        "F40" => Reference::int(
            data.stations
                .iter()
                .filter(|s| s.count_of("tent") > 0)
                .count() as i64,
        ),
        "F41" => grouped_min(log_stat(specimens)),
        other => panic!("no oracle defined for fieldwork query {other}"),
    }
}

fn grouped_count<I: IntoIterator<Item = String>>(keys: I) -> Reference {
    let mut map: BTreeMap<String, f64> = BTreeMap::new();
    for key in keys {
        *map.entry(key).or_insert(0.0) += 1.0;
    }
    Reference::KeyedNumbers(map)
}

fn grouped_max<I: IntoIterator<Item = (String, f64)>>(entries: I) -> Reference {
    let mut map: BTreeMap<String, f64> = BTreeMap::new();
    for (key, value) in entries {
        let slot = map.entry(key).or_insert(f64::MIN);
        if value > *slot {
            *slot = value;
        }
    }
    Reference::KeyedNumbers(map)
}

fn grouped_min<I: IntoIterator<Item = (String, f64)>>(entries: I) -> Reference {
    let mut map: BTreeMap<String, f64> = BTreeMap::new();
    for (key, value) in entries {
        let slot = map.entry(key).or_insert(f64::MAX);
        if value < *slot {
            *slot = value;
        }
    }
    Reference::KeyedNumbers(map)
}

fn grouped_avg<I: IntoIterator<Item = (String, f64)>>(entries: I) -> Reference {
    let mut sums: BTreeMap<String, (f64, f64)> = BTreeMap::new();
    for (key, value) in entries {
        let slot = sums.entry(key).or_insert((0.0, 0.0));
        slot.0 += value;
        slot.1 += 1.0;
    }
    Reference::KeyedNumbers(
        sums.into_iter()
            .map(|(k, (sum, count))| (k, sum / count))
            .collect(),
    )
}

fn max_points_per_team(rotowire: &RotowireData) -> Reference {
    let mut map: BTreeMap<String, f64> = BTreeMap::new();
    for team in &rotowire.teams {
        if let Some(points) = rotowire.max_points_of(&team.name) {
            map.insert(team.name.clone(), points as f64);
        }
    }
    Reference::KeyedNumbers(map)
}

fn avg_points_per_team(rotowire: &RotowireData) -> Reference {
    let mut map: BTreeMap<String, f64> = BTreeMap::new();
    for team in &rotowire.teams {
        let points: Vec<f64> = rotowire
            .games
            .iter()
            .filter_map(|g| g.points_of(&team.name))
            .map(|p| p as f64)
            .collect();
        if !points.is_empty() {
            map.insert(
                team.name.clone(),
                points.iter().sum::<f64>() / points.len() as f64,
            );
        }
    }
    Reference::KeyedNumbers(map)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::queries::benchmark_queries;
    use caesura_data::{generate_artwork, generate_rotowire, ArtworkConfig, RotowireConfig};

    #[test]
    fn every_benchmark_query_has_an_oracle() {
        let artwork = generate_artwork(&ArtworkConfig::small());
        let rotowire = generate_rotowire(&RotowireConfig::small());
        for query in benchmark_queries() {
            // Must not panic.
            let _ = reference_for(&query, &artwork, &rotowire);
        }
    }

    #[test]
    fn scalar_oracles_are_consistent_with_the_generators() {
        let artwork = generate_artwork(&ArtworkConfig::small());
        let rotowire = generate_rotowire(&RotowireConfig::small());
        let queries = benchmark_queries();
        let a01 = queries.iter().find(|q| q.id == "A01").unwrap();
        assert_eq!(
            reference_for(a01, &artwork, &rotowire),
            Reference::int(artwork.records.len() as i64)
        );
        let r04 = queries.iter().find(|q| q.id == "R04").unwrap();
        assert_eq!(
            reference_for(r04, &artwork, &rotowire),
            Reference::int(rotowire.teams.len() as i64)
        );
    }

    #[test]
    fn grouped_helpers_compute_expected_statistics() {
        let max = grouped_max(vec![("a".to_string(), 1.0), ("a".to_string(), 5.0)]);
        assert_eq!(max, Reference::keyed(vec![("a", 5.0)]));
        let min = grouped_min(vec![("a".to_string(), 1.0), ("a".to_string(), 5.0)]);
        assert_eq!(min, Reference::keyed(vec![("a", 1.0)]));
        let avg = grouped_avg(vec![("a".to_string(), 1.0), ("a".to_string(), 3.0)]);
        assert_eq!(avg, Reference::keyed(vec![("a", 2.0)]));
        let count = grouped_count(vec!["x".to_string(), "x".to_string(), "y".to_string()]);
        assert_eq!(count, Reference::keyed(vec![("x", 2.0), ("y", 1.0)]));
    }

    #[test]
    fn every_fieldwork_query_has_an_oracle() {
        let data = caesura_data::generate_fieldwork(&caesura_data::FieldworkConfig::small());
        for query in crate::queries::fieldwork_queries() {
            // Must not panic.
            let _ = fieldwork_reference_for(&query, &data);
        }
    }

    #[test]
    fn fieldwork_oracles_reflect_the_ground_truth() {
        let data = caesura_data::generate_fieldwork(&caesura_data::FieldworkConfig::small());
        let queries = crate::queries::fieldwork_queries();
        let q = |id: &str| queries.iter().find(|q| q.id == id).unwrap();
        // The dragons query answers zero for every terrain.
        let Reference::KeyedNumbers(dragons) = fieldwork_reference_for(q("F42"), &data) else {
            panic!("expected keyed reference");
        };
        assert!(!dragons.is_empty());
        assert!(dragons.values().all(|&v| v == 0.0));
        // Per-station log statistics cover every station.
        let Reference::KeyedNumbers(max_specimens) = fieldwork_reference_for(q("F13"), &data)
        else {
            panic!("expected keyed reference");
        };
        assert_eq!(max_specimens.len(), data.stations.len());
        for station in &data.stations {
            let expected = data
                .logs_of(&station.name)
                .iter()
                .map(|l| l.specimens)
                .max()
                .unwrap() as f64;
            assert_eq!(max_specimens[&station.name], expected);
        }
        // The climate grouping rolls two joins into four climates at most.
        let Reference::KeyedNumbers(by_climate) = fieldwork_reference_for(q("F19"), &data) else {
            panic!("expected keyed reference");
        };
        assert!(!by_climate.is_empty());
        assert!(by_climate.len() <= 4);
    }

    #[test]
    fn wins_and_losses_partition_the_games() {
        let rotowire = generate_rotowire(&RotowireConfig::small());
        let queries = benchmark_queries();
        let wins = queries.iter().find(|q| q.id == "R16").unwrap();
        let losses = queries.iter().find(|q| q.id == "R15").unwrap();
        let artwork = generate_artwork(&ArtworkConfig::small());
        let (Reference::KeyedNumbers(wins), Reference::KeyedNumbers(losses)) = (
            reference_for(wins, &artwork, &rotowire),
            reference_for(losses, &artwork, &rotowire),
        ) else {
            panic!("expected keyed references");
        };
        // Wins and losses each account for every game exactly once.
        assert_eq!(wins.values().sum::<f64>() as usize, rotowire.games.len());
        assert_eq!(losses.values().sum::<f64>() as usize, rotowire.games.len());
    }
}
