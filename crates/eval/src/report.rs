//! The evaluation harness: run the 48-query benchmark for one or more model
//! profiles and aggregate the grades into the layouts of Table 1 and Table 2.

use crate::errors::{classify, ErrorCategory};
use crate::grade::{grade, known_identifiers, Grade};
use crate::oracle::{fieldwork_reference_for, reference_for, Reference};
use crate::queries::{
    benchmark_queries, fieldwork_queries, BenchmarkQuery, Dataset, Expectation, ExpectedOutput,
    Tier,
};
use caesura_core::{Caesura, CaesuraConfig, QueryRun};
use caesura_data::{
    generate_artwork, generate_fieldwork, generate_rotowire, ArtworkConfig, FieldworkConfig,
    RotowireConfig,
};
use caesura_llm::{ModelProfile, SimulatedLlm};
use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Configuration of one evaluation run.
#[derive(Debug, Clone)]
pub struct EvaluationConfig {
    /// Seed for data generation and the simulated model's error injection.
    pub seed: u64,
    /// Artwork-lake generator configuration.
    pub artwork: ArtworkConfig,
    /// Rotowire-lake generator configuration.
    pub rotowire: RotowireConfig,
    /// Fieldwork-lake generator configuration (the clean variant; the
    /// fieldwork drivers derive the corrupted adversarial variant from it).
    pub fieldwork: FieldworkConfig,
    /// CAESURA session configuration.
    pub caesura: CaesuraConfig,
}

impl Default for EvaluationConfig {
    fn default() -> Self {
        EvaluationConfig {
            seed: 42,
            artwork: ArtworkConfig::default(),
            rotowire: RotowireConfig::default(),
            fieldwork: FieldworkConfig::default(),
            caesura: CaesuraConfig::default(),
        }
    }
}

impl EvaluationConfig {
    /// A small configuration for fast tests.
    pub fn small() -> Self {
        EvaluationConfig {
            seed: 7,
            artwork: ArtworkConfig::small(),
            rotowire: RotowireConfig::small(),
            fieldwork: FieldworkConfig::small(),
            caesura: CaesuraConfig::default(),
        }
    }

    /// The corrupted fieldwork variant the adversarial tier runs against:
    /// identical ground-truth records (same seed and scale), plus missing
    /// images and dirty report cells.
    pub fn corrupted_fieldwork(&self) -> FieldworkConfig {
        FieldworkConfig {
            missing_images: FieldworkConfig::adversarial().missing_images,
            dirty_reports: FieldworkConfig::adversarial().dirty_reports,
            ..self.fieldwork.clone()
        }
    }
}

/// The evaluation record of one benchmark query.
#[derive(Debug, Clone)]
pub struct QueryEvaluation {
    /// Query id.
    pub id: String,
    /// Query text.
    pub text: String,
    /// Dataset.
    pub dataset: Dataset,
    /// Requested output format.
    pub output: ExpectedOutput,
    /// Whether the query needs multi-modal data.
    pub multimodal: bool,
    /// The tier the query belongs to.
    pub tier: Tier,
    /// What the run was expected to produce.
    pub expectation: Expectation,
    /// Whether the run met its expectation: the oracle answer for clean
    /// queries, the specific failure for adversarial ones.
    pub expectation_met: bool,
    /// The grade.
    pub grade: Grade,
    /// The error category, if the run was not fully correct.
    pub category: Option<ErrorCategory>,
    /// Number of LLM completions the run needed (planning/mapping/recovery
    /// conversations served; a `complete_batch` dispatch can carry several
    /// completions in one round trip).
    pub llm_calls: usize,
    /// Batched perception-operator call accounting of the run (rows walked,
    /// unique model calls, batches, calls saved by dedup).
    pub perception: caesura_core::PerceptionCalls,
    /// Plan-cache probe accounting of the run (all zero when the cache is
    /// disabled).
    pub plan_cache: caesura_core::PlanCacheCalls,
    /// Where the executed plan came from (`None` when the plan cache is
    /// disabled).
    pub plan_source: Option<caesura_core::PlanSource>,
    /// Wall clock of the run (scheduler pickup to completion), from the
    /// trace's phase timings — the same timing source the serving bench
    /// reports percentiles over.
    pub latency: Duration,
    /// Time the submission sat in the scheduler queue before a worker picked
    /// it up — negligible under the serial driver (an idle worker picks each
    /// blocking `run` up immediately); under [`evaluate_model_concurrent`]
    /// this is the scheduling-delay component of the end-to-end latency
    /// (`queue_wait + latency`).
    pub queue_wait: Duration,
    /// The execution error message, if execution failed.
    pub error: Option<String>,
}

/// The full evaluation of one model profile.
#[derive(Debug, Clone)]
pub struct EvaluationReport {
    /// Display name of the evaluated model.
    pub model: String,
    /// Per-query records, in benchmark order.
    pub results: Vec<QueryEvaluation>,
}

impl EvaluationReport {
    /// Accuracy (logical, physical) over the queries selected by `filter`.
    pub fn accuracy<F>(&self, filter: F) -> (f64, f64)
    where
        F: Fn(&QueryEvaluation) -> bool,
    {
        let selected: Vec<&QueryEvaluation> = self.results.iter().filter(|r| filter(r)).collect();
        if selected.is_empty() {
            return (0.0, 0.0);
        }
        let n = selected.len() as f64;
        let logical = selected.iter().filter(|r| r.grade.logical).count() as f64 / n;
        let physical = selected.iter().filter(|r| r.grade.physical).count() as f64 / n;
        (logical, physical)
    }

    /// Fraction of the queries selected by `filter` that met their
    /// [`Expectation`] — physical correctness for clean queries, the
    /// expected failure for adversarial ones. Zero for an empty selection.
    pub fn expectation_accuracy<F>(&self, filter: F) -> f64
    where
        F: Fn(&QueryEvaluation) -> bool,
    {
        let selected: Vec<&QueryEvaluation> = self.results.iter().filter(|r| filter(r)).collect();
        if selected.is_empty() {
            return 0.0;
        }
        selected.iter().filter(|r| r.expectation_met).count() as f64 / selected.len() as f64
    }

    /// Accuracy (logical, physical) over one tier.
    pub fn tier_accuracy(&self, tier: Tier) -> (f64, f64) {
        self.accuracy(|r| r.tier == tier)
    }

    /// Per-category adversarial outcomes: for each error category, how many
    /// queries *expect* it and how many of those observed exactly it.
    pub fn expected_category_outcomes(&self) -> BTreeMap<&'static str, (usize, usize)> {
        let mut out: BTreeMap<&'static str, (usize, usize)> = BTreeMap::new();
        for category in ErrorCategory::all() {
            let expecting: Vec<&QueryEvaluation> = self
                .results
                .iter()
                .filter(|r| r.expectation == Expectation::Category(*category))
                .collect();
            let met = expecting.iter().filter(|r| r.expectation_met).count();
            out.insert(category.name(), (expecting.len(), met));
        }
        out
    }

    /// Error counts per category (Table 2).
    pub fn error_counts(&self) -> BTreeMap<&'static str, usize> {
        let mut counts: BTreeMap<&'static str, usize> = BTreeMap::new();
        for category in ErrorCategory::all() {
            counts.insert(category.name(), 0);
        }
        for result in &self.results {
            if let Some(category) = result.category {
                *counts.entry(category.name()).or_insert(0) += 1;
            }
        }
        counts
    }

    /// Total LLM round trips across the benchmark.
    pub fn total_llm_calls(&self) -> usize {
        self.results.iter().map(|r| r.llm_calls).sum()
    }

    /// Total perception-operator model calls dispatched across the benchmark
    /// (after dedup and cache hits), and the calls dedup saved versus one
    /// call per row.
    pub fn total_perception_calls(&self) -> (usize, usize) {
        let dispatched = self.results.iter().map(|r| r.perception.calls).sum();
        let saved = self.results.iter().map(|r| r.perception.saved_calls).sum();
        (dispatched, saved)
    }

    /// Total unique perception requests served by the session-scoped answer
    /// cache instead of a backend dispatch (0 when the cache is disabled;
    /// the evaluation sessions run 48 queries each, so questions repeated
    /// across queries hit the cache).
    pub fn total_perception_cache_hits(&self) -> usize {
        self.results.iter().map(|r| r.perception.cache_hits).sum()
    }

    /// Plan-cache hits across the benchmark (0 when the cache is disabled —
    /// and also on a cold cache over the 48 distinct benchmark queries; the
    /// counter only moves on repeat traffic).
    pub fn total_plan_cache_hits(&self) -> usize {
        self.results.iter().map(|r| r.plan_cache.hits).sum()
    }

    /// Perception requests served by the persistent disk tier across the
    /// benchmark — memory-tier misses that found their answer on disk
    /// instead of dispatching to the backend. Zero unless the session was
    /// configured with a `CaesuraConfig::persist` store (e.g. via
    /// `CAESURA_CACHE_DIR`), so existing reports are unchanged.
    pub fn total_perception_disk_hits(&self) -> usize {
        self.results.iter().map(|r| r.perception.disk_hits).sum()
    }

    /// Plan-cache hits answered by the persistent disk tier across the
    /// benchmark — what a fresh process warms from after a restart. Zero
    /// unless a persistent store is configured.
    pub fn total_plan_cache_disk_hits(&self) -> usize {
        self.results.iter().map(|r| r.plan_cache.disk_hits).sum()
    }

    /// Per-query run latencies, in benchmark order.
    pub fn latencies(&self) -> Vec<Duration> {
        self.results.iter().map(|r| r.latency).collect()
    }

    /// Nearest-rank latency percentile over the per-query run latencies
    /// (`p` in `0.0..=1.0`; `0.5` is the median). Zero for an empty report.
    ///
    /// Collects and sorts the latencies on every call; when reading several
    /// percentiles of one report, [`EvaluationReport::latency_percentiles`]
    /// sorts once.
    pub fn latency_percentile(&self, p: f64) -> Duration {
        percentile(&mut self.latencies(), p)
    }

    /// Nearest-rank latency percentiles for every `p` in `ps`, sorting the
    /// per-query latencies once (unlike repeated
    /// [`EvaluationReport::latency_percentile`] calls, which re-sort a fresh
    /// copy per call).
    pub fn latency_percentiles(&self, ps: &[f64]) -> Vec<Duration> {
        let mut samples = self.latencies();
        samples.sort_unstable();
        ps.iter()
            .map(|&p| percentile_of_sorted(&samples, p))
            .collect()
    }

    /// Mean per-query run latency (zero for an empty report).
    pub fn mean_latency(&self) -> Duration {
        if self.results.is_empty() {
            return Duration::ZERO;
        }
        self.latencies().iter().sum::<Duration>() / self.results.len() as u32
    }
}

/// Nearest-rank percentile of a set of durations (`p` clamped to
/// `0.0..=1.0`; a NaN `p` is treated as `0.0` rather than poisoning the
/// clamp). Sorts in place; zero for an empty set.
pub fn percentile(samples: &mut [Duration], p: f64) -> Duration {
    if samples.is_empty() {
        return Duration::ZERO;
    }
    samples.sort_unstable();
    percentile_of_sorted(samples, p)
}

/// Nearest-rank percentile of an **already sorted** set of durations.
fn percentile_of_sorted(samples: &[Duration], p: f64) -> Duration {
    if samples.is_empty() {
        return Duration::ZERO;
    }
    // `f64::clamp` propagates NaN, so clear it first: a NaN rank would cast
    // to 0 and silently alias the minimum.
    let p = if p.is_nan() { 0.0 } else { p.clamp(0.0, 1.0) };
    let rank = ((p * samples.len() as f64).ceil() as usize).clamp(1, samples.len());
    samples[rank - 1]
}

/// Grade one finished run into its evaluation record (shared by the serial
/// and concurrent drivers so both report through identical grading).
fn grade_run(
    query: &BenchmarkQuery,
    run: &QueryRun,
    reference: &Reference,
    known: &std::collections::BTreeSet<String>,
) -> QueryEvaluation {
    let query_grade = grade(query, run, reference, known);
    let category = classify(query, run, query_grade, known);
    let expectation_met = match query.expectation {
        Expectation::Correct => query_grade.physical,
        Expectation::ExecutionError(needle) => run
            .output
            .as_ref()
            .err()
            .is_some_and(|e| e.to_string().contains(needle)),
        Expectation::Category(expected) => category == Some(expected),
    };
    QueryEvaluation {
        id: query.id.to_string(),
        text: query.text.to_string(),
        dataset: query.dataset,
        output: query.output,
        multimodal: query.multimodal,
        tier: query.tier,
        expectation: query.expectation,
        expectation_met,
        grade: query_grade,
        category,
        llm_calls: run.trace.llm_calls(),
        perception: run.trace.perception_calls(),
        plan_cache: run.trace.plan_cache_calls(),
        plan_source: run.trace.plan_source(),
        latency: run.trace.timings().total(),
        queue_wait: run.trace.timings().queue_wait(),
        error: run.output.as_ref().err().map(|e| e.to_string()),
    }
}

/// Run the 48-query benchmark for one model profile.
pub fn evaluate_model(profile: ModelProfile, config: &EvaluationConfig) -> EvaluationReport {
    let artwork = generate_artwork(&config.artwork);
    let rotowire = generate_rotowire(&config.rotowire);
    let llm = Arc::new(SimulatedLlm::new(profile, config.seed));

    let artwork_session =
        Caesura::with_config(artwork.lake.clone(), llm.clone(), config.caesura.clone());
    let rotowire_session =
        Caesura::with_config(rotowire.lake.clone(), llm.clone(), config.caesura.clone());
    let artwork_known = known_identifiers(artwork.lake.catalog());
    let rotowire_known = known_identifiers(rotowire.lake.catalog());

    let mut results = Vec::new();
    for query in benchmark_queries() {
        let (session, known) = match query.dataset {
            Dataset::Artwork => (&artwork_session, &artwork_known),
            Dataset::Rotowire => (&rotowire_session, &rotowire_known),
            Dataset::Fieldwork => unreachable!("fieldwork queries run via evaluate_fieldwork"),
        };
        let reference = reference_for(&query, &artwork, &rotowire);
        let run = session.run(query.text);
        results.push(grade_run(&query, &run, &reference, known));
    }

    EvaluationReport {
        model: profile.name().to_string(),
        results,
    }
}

/// Run the 42-query fieldwork suite for one model profile. Clean-tier
/// queries run against the clean lake; queries flagged `corrupted` run
/// against the adversarial lake variant (same ground-truth records, plus
/// missing images and dirty report cells) through a second session.
pub fn evaluate_fieldwork(profile: ModelProfile, config: &EvaluationConfig) -> EvaluationReport {
    let clean = generate_fieldwork(&config.fieldwork);
    let corrupted = generate_fieldwork(&config.corrupted_fieldwork());
    let llm = Arc::new(SimulatedLlm::new(profile, config.seed));

    let clean_session =
        Caesura::with_config(clean.lake.clone(), llm.clone(), config.caesura.clone());
    let corrupted_session =
        Caesura::with_config(corrupted.lake.clone(), llm.clone(), config.caesura.clone());
    // Both lakes share one schema, so one identifier set grades both.
    let known = known_identifiers(clean.lake.catalog());

    let mut results = Vec::new();
    for query in fieldwork_queries() {
        let session = if query.corrupted {
            &corrupted_session
        } else {
            &clean_session
        };
        let reference = fieldwork_reference_for(&query, &clean);
        let run = session.run(query.text);
        results.push(grade_run(&query, &run, &reference, &known));
    }

    EvaluationReport {
        model: profile.name().to_string(),
        results,
    }
}

/// Run the 42-query fieldwork suite through **concurrent submission**, the
/// fieldwork counterpart of [`evaluate_model_concurrent`]: every query is
/// submitted up front to its (clean or corrupted) session, then graded in
/// suite order as the handles complete.
pub fn evaluate_fieldwork_concurrent(
    profile: ModelProfile,
    config: &EvaluationConfig,
    concurrency: usize,
) -> ServingEvaluation {
    let concurrency = concurrency.max(1);
    let clean = generate_fieldwork(&config.fieldwork);
    let corrupted = generate_fieldwork(&config.corrupted_fieldwork());
    let llm = Arc::new(SimulatedLlm::new(profile, config.seed));

    let queries = fieldwork_queries();
    let mut caesura_config = config.caesura.clone();
    caesura_config.session_workers = Some(concurrency);
    caesura_config.session_queue = Some(queries.len().max(concurrency));

    let clean_session =
        Caesura::with_config(clean.lake.clone(), llm.clone(), caesura_config.clone());
    let corrupted_session =
        Caesura::with_config(corrupted.lake.clone(), llm.clone(), caesura_config);
    let known = known_identifiers(clean.lake.catalog());

    let started = Instant::now();
    let handles: Vec<_> = queries
        .iter()
        .map(|query| {
            let session = if query.corrupted {
                &corrupted_session
            } else {
                &clean_session
            };
            session.submit(query.text)
        })
        .collect();
    let runs: Vec<QueryRun> = handles.into_iter().map(|handle| handle.wait()).collect();
    let wall_clock = started.elapsed();

    let mut results = Vec::new();
    let mut end_to_end = Vec::new();
    for (query, run) in queries.iter().zip(&runs) {
        let reference = fieldwork_reference_for(query, &clean);
        results.push(grade_run(query, run, &reference, &known));
        end_to_end.push(run.trace.timings().end_to_end());
    }

    ServingEvaluation {
        report: EvaluationReport {
            model: profile.name().to_string(),
            results,
        },
        concurrency,
        wall_clock,
        end_to_end,
    }
}

/// The result of driving the 48-query benchmark through concurrent
/// submission (see [`evaluate_model_concurrent`]): the usual graded report
/// plus serving-level throughput and latency measurements.
#[derive(Debug, Clone)]
pub struct ServingEvaluation {
    /// The graded report, in benchmark order — produced by exactly the same
    /// grading as [`evaluate_model`].
    pub report: EvaluationReport,
    /// Scheduler workers the sessions served the workload with.
    pub concurrency: usize,
    /// Wall clock from the first submission to the last completion.
    pub wall_clock: Duration,
    /// Per-query submission-to-completion latencies (queue wait + run time),
    /// in benchmark order.
    pub end_to_end: Vec<Duration>,
}

impl ServingEvaluation {
    /// Benchmark throughput: completed queries per second of wall clock.
    pub fn queries_per_second(&self) -> f64 {
        if self.wall_clock.is_zero() {
            return 0.0;
        }
        self.report.results.len() as f64 / self.wall_clock.as_secs_f64()
    }

    /// Nearest-rank percentile over the submission-to-completion latencies
    /// (`p` in `0.0..=1.0`).
    pub fn latency_percentile(&self, p: f64) -> Duration {
        percentile(&mut self.end_to_end.clone(), p)
    }
}

/// Run the 48-query benchmark through **concurrent submission**: all queries
/// are submitted up front via [`Caesura::submit`] to sessions whose serving
/// scheduler runs `concurrency` workers, then graded in benchmark order as
/// their handles complete.
///
/// Grades, outputs, and plan-level accounting are identical to the serial
/// [`evaluate_model`] — the simulated models answer as deterministic
/// functions of each prompt, so interleaving cannot change results. The one
/// exception is the *distribution* of perception-cache hit counters across
/// queries: which of two racing queries warms the shared cache first is
/// scheduling-dependent (the answers themselves are not).
pub fn evaluate_model_concurrent(
    profile: ModelProfile,
    config: &EvaluationConfig,
    concurrency: usize,
) -> ServingEvaluation {
    let concurrency = concurrency.max(1);
    let artwork = generate_artwork(&config.artwork);
    let rotowire = generate_rotowire(&config.rotowire);
    let llm = Arc::new(SimulatedLlm::new(profile, config.seed));

    let queries = benchmark_queries();
    let mut caesura_config = config.caesura.clone();
    caesura_config.session_workers = Some(concurrency);
    // Deep enough to hold the whole benchmark: this driver measures worker
    // concurrency, not submission backpressure.
    caesura_config.session_queue = Some(queries.len().max(concurrency));

    let artwork_session =
        Caesura::with_config(artwork.lake.clone(), llm.clone(), caesura_config.clone());
    let rotowire_session = Caesura::with_config(rotowire.lake.clone(), llm.clone(), caesura_config);
    let artwork_known = known_identifiers(artwork.lake.catalog());
    let rotowire_known = known_identifiers(rotowire.lake.catalog());

    let started = Instant::now();
    let handles: Vec<_> = queries
        .iter()
        .map(|query| {
            let session = match query.dataset {
                Dataset::Artwork => &artwork_session,
                Dataset::Rotowire => &rotowire_session,
                Dataset::Fieldwork => unreachable!("fieldwork queries run via evaluate_fieldwork"),
            };
            session.submit(query.text)
        })
        .collect();
    let runs: Vec<QueryRun> = handles.into_iter().map(|handle| handle.wait()).collect();
    let wall_clock = started.elapsed();

    let mut results = Vec::new();
    let mut end_to_end = Vec::new();
    for (query, run) in queries.iter().zip(&runs) {
        let known = match query.dataset {
            Dataset::Artwork => &artwork_known,
            Dataset::Rotowire => &rotowire_known,
            Dataset::Fieldwork => unreachable!("fieldwork queries run via evaluate_fieldwork"),
        };
        let reference = reference_for(query, &artwork, &rotowire);
        results.push(grade_run(query, run, &reference, known));
        end_to_end.push(run.trace.timings().end_to_end());
    }

    ServingEvaluation {
        report: EvaluationReport {
            model: profile.name().to_string(),
            results,
        },
        concurrency,
        wall_clock,
        end_to_end,
    }
}

/// Evaluate both paper models (ChatGPT-3.5 and GPT-4 profiles).
pub fn evaluate_both(config: &EvaluationConfig) -> Vec<EvaluationReport> {
    vec![
        evaluate_model(ModelProfile::ChatGpt35, config),
        evaluate_model(ModelProfile::Gpt4, config),
    ]
}

/// The reference answer of a query under the default evaluation data — exposed
/// so examples and tests can show expected answers without rerunning oracles.
pub fn reference_for_default(query: &BenchmarkQuery, config: &EvaluationConfig) -> Reference {
    let artwork = generate_artwork(&config.artwork);
    let rotowire = generate_rotowire(&config.rotowire);
    reference_for(query, &artwork, &rotowire)
}

/// Render Table 1 (plan quality) for a set of reports, in the layout of the
/// paper: one row per query group, logical/physical accuracy per model.
pub fn render_table1(reports: &[EvaluationReport]) -> String {
    let mut out = String::new();
    out.push_str(
        "Table 1: Correctly translated plans per dataset, modality, and output format\n\n",
    );
    // Header.
    out.push_str(&format!("{:<24}", "Models"));
    for report in reports {
        out.push_str(&format!("| {:^23} ", report.model));
    }
    out.push('\n');
    out.push_str(&format!("{:<24}", "Plan type"));
    for _ in reports {
        out.push_str(&format!("| {:>10} {:>12} ", "logical", "physical"));
    }
    out.push('\n');
    out.push_str(&"-".repeat(24 + reports.len() * 26));
    out.push('\n');

    type RowFilter = Box<dyn Fn(&QueryEvaluation) -> bool>;
    let rows: Vec<(&str, RowFilter)> = vec![
        (
            "Artwork overall",
            Box::new(|r: &QueryEvaluation| r.dataset == Dataset::Artwork),
        ),
        (
            "Rotowire overall",
            Box::new(|r: &QueryEvaluation| r.dataset == Dataset::Rotowire),
        ),
        (
            "Single modality",
            Box::new(|r: &QueryEvaluation| !r.multimodal),
        ),
        (
            "Multiple modalities",
            Box::new(|r: &QueryEvaluation| r.multimodal),
        ),
        (
            "Single value",
            Box::new(|r: &QueryEvaluation| r.output == ExpectedOutput::SingleValue),
        ),
        (
            "Table",
            Box::new(|r: &QueryEvaluation| r.output == ExpectedOutput::Table),
        ),
        (
            "Plot",
            Box::new(|r: &QueryEvaluation| r.output == ExpectedOutput::Plot),
        ),
        ("All", Box::new(|_: &QueryEvaluation| true)),
    ];
    for (label, filter) in rows {
        out.push_str(&format!("{label:<24}"));
        for report in reports {
            let (logical, physical) = report.accuracy(&filter);
            out.push_str(&format!(
                "| {:>9.1}% {:>11.1}% ",
                logical * 100.0,
                physical * 100.0
            ));
        }
        out.push('\n');
    }
    out
}

/// Render Table 2 (error analysis) for a set of reports.
pub fn render_table2(reports: &[EvaluationReport]) -> String {
    let mut out = String::new();
    out.push_str("Table 2: Number of mistakes per category\n\n");
    out.push_str(&format!("{:<28}{:<10}", "Category", "Phase"));
    for report in reports {
        out.push_str(&format!("{:>18}", report.model));
    }
    out.push('\n');
    out.push_str(&"-".repeat(38 + reports.len() * 18));
    out.push('\n');
    for category in ErrorCategory::all() {
        out.push_str(&format!(
            "{:<28}{:<10}",
            category.name(),
            if category.is_logical() {
                "logical"
            } else {
                "physical"
            }
        ));
        for report in reports {
            let count = report
                .error_counts()
                .get(category.name())
                .copied()
                .unwrap_or(0);
            out.push_str(&format!("{count:>18}"));
        }
        out.push('\n');
    }
    out
}

/// Render Table 3 (the fieldwork multi-step suite): per-tier accuracy plus
/// per-category adversarial outcomes, extending the Table 2 machinery with
/// expectation-aware grading.
pub fn render_table3(reports: &[EvaluationReport]) -> String {
    let mut out = String::new();
    out.push_str("Table 3: Fieldwork multi-step suite — per-tier and per-category results\n\n");
    out.push_str(&format!("{:<34}", "Tier / expected category"));
    for report in reports {
        out.push_str(&format!("{:>24}", report.model));
    }
    out.push('\n');
    out.push_str(&"-".repeat(34 + reports.len() * 24));
    out.push('\n');
    for tier in [Tier::Clean, Tier::Adversarial] {
        out.push_str(&format!(
            "{:<34}",
            format!("{} tier (expectation met)", tier.name())
        ));
        for report in reports {
            let met = report.expectation_accuracy(|r| r.tier == tier);
            out.push_str(&format!("{:>23.1}%", met * 100.0));
        }
        out.push('\n');
        out.push_str(&format!(
            "{:<34}",
            format!("{} tier (logical/physical)", tier.name())
        ));
        for report in reports {
            let (logical, physical) = report.tier_accuracy(tier);
            out.push_str(&format!(
                "{:>22}",
                format!("{:.1}%/{:.1}%", logical * 100.0, physical * 100.0)
            ));
            out.push_str("  ");
        }
        out.push('\n');
    }
    for category in ErrorCategory::all() {
        out.push_str(&format!(
            "{:<34}",
            format!("  expected {}", category.name())
        ));
        for report in reports {
            let (expected, met) = report
                .expected_category_outcomes()
                .get(category.name())
                .copied()
                .unwrap_or((0, 0));
            out.push_str(&format!("{:>24}", format!("{met}/{expected} met")));
        }
        out.push('\n');
    }
    out.push_str(&format!("{:<34}", "All (expectation met)"));
    for report in reports {
        let met = report.expectation_accuracy(|_| true);
        out.push_str(&format!("{:>23.1}%", met * 100.0));
    }
    out.push('\n');
    out
}

/// Render a per-query breakdown (useful for debugging and EXPERIMENTS.md).
pub fn render_per_query(report: &EvaluationReport) -> String {
    let mut out = String::new();
    out.push_str(&format!("Per-query results for {}\n", report.model));
    for result in &report.results {
        out.push_str(&format!(
            "  {:<4} {:<9} {:<12} logical={} physical={} {}\n",
            result.id,
            result.dataset.name(),
            result.output.name(),
            if result.grade.logical { "ok " } else { "ERR" },
            if result.grade.physical { "ok " } else { "ERR" },
            result
                .category
                .map(|c| format!("[{}]", c.name()))
                .unwrap_or_default(),
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gpt4_profile_translates_most_queries_correctly() {
        let config = EvaluationConfig::small();
        let report = evaluate_model(ModelProfile::Gpt4, &config);
        assert_eq!(report.results.len(), 48);
        let (logical, physical) = report.accuracy(|_| true);
        assert!(logical >= 0.80, "GPT-4 logical accuracy too low: {logical}");
        assert!(
            physical >= 0.70,
            "GPT-4 physical accuracy too low: {physical}"
        );
        // Physical correctness requires logical correctness in our grading.
        assert!(logical >= physical);
    }

    #[test]
    fn chatgpt35_profile_is_clearly_worse_than_gpt4() {
        let config = EvaluationConfig::small();
        let gpt4 = evaluate_model(ModelProfile::Gpt4, &config);
        let gpt35 = evaluate_model(ModelProfile::ChatGpt35, &config);
        let (gpt4_logical, gpt4_physical) = gpt4.accuracy(|_| true);
        let (gpt35_logical, gpt35_physical) = gpt35.accuracy(|_| true);
        assert!(gpt4_logical > gpt35_logical);
        assert!(gpt4_physical > gpt35_physical);
        // The dominant 3.5 error category is data misunderstanding (§4.3).
        let counts = gpt35.error_counts();
        let dm = counts.get("Data Misunderstanding").copied().unwrap_or(0);
        assert!(
            dm >= 2,
            "expected several data-misunderstanding errors, got {dm}"
        );
    }

    #[test]
    fn latencies_are_recorded_and_percentiles_are_ordered() {
        let config = EvaluationConfig::small();
        let report = evaluate_model(ModelProfile::Gpt4, &config);
        assert!(report.results.iter().all(|r| r.latency > Duration::ZERO));
        let p50 = report.latency_percentile(0.5);
        let p95 = report.latency_percentile(0.95);
        assert!(p50 > Duration::ZERO);
        assert!(p95 >= p50);
        assert!(report.mean_latency() > Duration::ZERO);
        assert!(report.latency_percentile(1.0) >= p95);
    }

    #[test]
    fn percentile_uses_nearest_rank() {
        let mut samples: Vec<Duration> = (1..=10).map(Duration::from_millis).collect();
        assert_eq!(percentile(&mut samples, 0.5), Duration::from_millis(5));
        assert_eq!(percentile(&mut samples, 0.95), Duration::from_millis(10));
        assert_eq!(percentile(&mut samples, 0.0), Duration::from_millis(1));
        assert_eq!(percentile(&mut [], 0.5), Duration::ZERO);
        // Out-of-range and NaN `p` clamp instead of panicking or aliasing.
        assert_eq!(percentile(&mut samples, 2.0), Duration::from_millis(10));
        assert_eq!(percentile(&mut samples, -1.0), Duration::from_millis(1));
        assert_eq!(percentile(&mut samples, f64::NAN), Duration::from_millis(1));
    }

    #[test]
    fn latency_percentiles_match_single_percentile_calls() {
        let config = EvaluationConfig::small();
        let report = evaluate_model(ModelProfile::Gpt4, &config);
        let ps = [0.0, 0.5, 0.95, 1.0];
        let batch = report.latency_percentiles(&ps);
        for (&p, &value) in ps.iter().zip(&batch) {
            assert_eq!(value, report.latency_percentile(p));
        }
    }

    #[test]
    fn benchmark_queries_are_distinct_templates_so_cache_never_hits() {
        // The 48 benchmark queries carry no quoted strings or standalone
        // numbers, so each normalizes to its own plan-cache template: a cold
        // evaluation run records only misses/insertions, never hits — which
        // is why enabling the cache cannot change benchmark grades.
        let config = EvaluationConfig::small();
        let report = evaluate_model(ModelProfile::Gpt4, &config);
        assert_eq!(report.total_plan_cache_hits(), 0);
        if caesura_llm::PlanCacheConfig::default().is_enabled() {
            // The cache defaults on, so every run probes it and misses.
            assert!(report
                .results
                .iter()
                .all(|r| r.plan_source.is_some() && r.plan_cache.misses == 1));
        } else {
            // Under `CAESURA_PLAN_CACHE=0` nothing probes at all.
            assert!(report
                .results
                .iter()
                .all(|r| r.plan_source.is_none() && r.plan_cache == Default::default()));
        }
    }

    #[test]
    fn concurrent_evaluation_grades_identically_to_serial() {
        let config = EvaluationConfig::small();
        let serial = evaluate_model(ModelProfile::Gpt4, &config);
        let serving = evaluate_model_concurrent(ModelProfile::Gpt4, &config, 4);
        assert_eq!(serving.concurrency, 4);
        assert_eq!(serving.report.results.len(), serial.results.len());
        assert_eq!(serving.end_to_end.len(), serial.results.len());
        assert!(serving.wall_clock > Duration::ZERO);
        assert!(serving.queries_per_second() > 0.0);
        // 48 queries submitted up front onto 4 workers: most sit in the
        // queue before pickup, so some queue wait must have been recorded.
        assert!(serving
            .report
            .results
            .iter()
            .any(|r| r.queue_wait > Duration::ZERO));
        assert!(serving.latency_percentile(0.95) >= serving.latency_percentile(0.5));
        for (concurrent, reference) in serving.report.results.iter().zip(&serial.results) {
            assert_eq!(concurrent.id, reference.id);
            assert_eq!(
                concurrent.grade, reference.grade,
                "grade diverged: {}",
                reference.id
            );
            assert_eq!(
                concurrent.category, reference.category,
                "category diverged: {}",
                reference.id
            );
            assert_eq!(
                concurrent.error, reference.error,
                "error diverged: {}",
                reference.id
            );
            assert_eq!(
                concurrent.llm_calls, reference.llm_calls,
                "llm calls diverged: {}",
                reference.id
            );
            // Perception-cache hit *distribution* across queries is
            // scheduling-dependent (which racing query warms the shared
            // cache first); everything above is not.
        }
    }

    #[test]
    fn fieldwork_suite_meets_every_expectation_under_both_profiles() {
        let config = EvaluationConfig::small();
        // The fieldwork corruptions are scripted by query markers, not by the
        // profile's stochastic injector, so both paper profiles behave
        // identically and deterministically on this suite.
        for profile in [ModelProfile::Gpt4, ModelProfile::ChatGpt35] {
            let report = evaluate_fieldwork(profile, &config);
            assert_eq!(report.results.len(), 42);
            for result in &report.results {
                assert!(
                    result.expectation_met,
                    "{} ({:?}) missed its expectation: grade={:?} category={:?} error={:?}",
                    result.id, result.expectation, result.grade, result.category, result.error
                );
            }
            // The clean tier is fully correct; the adversarial tier fails in
            // exactly the scripted ways.
            let (clean_logical, clean_physical) = report.tier_accuracy(Tier::Clean);
            assert_eq!(clean_logical, 1.0);
            assert_eq!(clean_physical, 1.0);
            assert_eq!(report.expectation_accuracy(|_| true), 1.0);
        }
    }

    #[test]
    fn fieldwork_error_counts_sum_to_the_non_correct_runs() {
        let config = EvaluationConfig::small();
        let report = evaluate_fieldwork(ModelProfile::Gpt4, &config);
        let non_correct = report
            .results
            .iter()
            .filter(|r| !(r.grade.logical && r.grade.physical))
            .count();
        let counted: usize = report.error_counts().values().sum();
        assert_eq!(counted, non_correct);
        // Every entry of the five-way taxonomy is reachable from at least one
        // adversarial query — observed, not just expected.
        let counts = report.error_counts();
        for category in ErrorCategory::all() {
            let observed = counts.get(category.name()).copied().unwrap_or(0);
            assert!(observed >= 1, "{} never observed", category.name());
            let (expected, met) = report
                .expected_category_outcomes()
                .get(category.name())
                .copied()
                .unwrap();
            assert!(
                expected >= 2,
                "{} expected by too few queries",
                category.name()
            );
            assert_eq!(met, expected, "{} not always met", category.name());
        }
    }

    #[test]
    fn fieldwork_concurrent_evaluation_grades_identically_to_serial() {
        let config = EvaluationConfig::small();
        let serial = evaluate_fieldwork(ModelProfile::Gpt4, &config);
        let serving = evaluate_fieldwork_concurrent(ModelProfile::Gpt4, &config, 4);
        assert_eq!(serving.concurrency, 4);
        assert_eq!(serving.report.results.len(), serial.results.len());
        assert!(serving.queries_per_second() > 0.0);
        for (concurrent, reference) in serving.report.results.iter().zip(&serial.results) {
            assert_eq!(concurrent.id, reference.id);
            assert_eq!(concurrent.grade, reference.grade, "{}", reference.id);
            assert_eq!(concurrent.category, reference.category, "{}", reference.id);
            assert_eq!(
                concurrent.expectation_met, reference.expectation_met,
                "{}",
                reference.id
            );
        }
    }

    #[test]
    fn table3_renders_tiers_and_expected_categories() {
        let config = EvaluationConfig::small();
        let reports = vec![evaluate_fieldwork(ModelProfile::Gpt4, &config)];
        let table3 = render_table3(&reports);
        assert!(table3.contains("clean tier"));
        assert!(table3.contains("adversarial tier"));
        assert!(table3.contains("expected Wrong Tool"));
        assert!(table3.contains("expected Impossible Actions"));
        assert!(table3.contains("All (expectation met)"));
        assert!(table3.contains("100.0%"));
    }

    #[test]
    fn tables_render_with_all_rows_and_models() {
        let config = EvaluationConfig::small();
        let reports = vec![evaluate_model(ModelProfile::Gpt4, &config)];
        let table1 = render_table1(&reports);
        assert!(table1.contains("Artwork overall"));
        assert!(table1.contains("Multiple modalities"));
        assert!(table1.contains("All"));
        let table2 = render_table2(&reports);
        assert!(table2.contains("Data Misunderstanding"));
        assert!(table2.contains("Wrong Tool"));
        let per_query = render_per_query(&reports[0]);
        assert!(per_query.contains("A01"));
        assert!(per_query.contains("R24"));
    }
}
