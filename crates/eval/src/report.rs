//! The evaluation harness: run the 48-query benchmark for one or more model
//! profiles and aggregate the grades into the layouts of Table 1 and Table 2.

use crate::errors::{classify, ErrorCategory};
use crate::grade::{grade, known_identifiers, Grade};
use crate::oracle::{reference_for, Reference};
use crate::queries::{benchmark_queries, BenchmarkQuery, Dataset, ExpectedOutput};
use caesura_core::{Caesura, CaesuraConfig};
use caesura_data::{generate_artwork, generate_rotowire, ArtworkConfig, RotowireConfig};
use caesura_llm::{ModelProfile, SimulatedLlm};
use std::collections::BTreeMap;
use std::sync::Arc;

/// Configuration of one evaluation run.
#[derive(Debug, Clone)]
pub struct EvaluationConfig {
    /// Seed for data generation and the simulated model's error injection.
    pub seed: u64,
    /// Artwork-lake generator configuration.
    pub artwork: ArtworkConfig,
    /// Rotowire-lake generator configuration.
    pub rotowire: RotowireConfig,
    /// CAESURA session configuration.
    pub caesura: CaesuraConfig,
}

impl Default for EvaluationConfig {
    fn default() -> Self {
        EvaluationConfig {
            seed: 42,
            artwork: ArtworkConfig::default(),
            rotowire: RotowireConfig::default(),
            caesura: CaesuraConfig::default(),
        }
    }
}

impl EvaluationConfig {
    /// A small configuration for fast tests.
    pub fn small() -> Self {
        EvaluationConfig {
            seed: 7,
            artwork: ArtworkConfig::small(),
            rotowire: RotowireConfig::small(),
            caesura: CaesuraConfig::default(),
        }
    }
}

/// The evaluation record of one benchmark query.
#[derive(Debug, Clone)]
pub struct QueryEvaluation {
    /// Query id.
    pub id: String,
    /// Query text.
    pub text: String,
    /// Dataset.
    pub dataset: Dataset,
    /// Requested output format.
    pub output: ExpectedOutput,
    /// Whether the query needs multi-modal data.
    pub multimodal: bool,
    /// The grade.
    pub grade: Grade,
    /// The error category, if the run was not fully correct.
    pub category: Option<ErrorCategory>,
    /// Number of LLM completions the run needed (planning/mapping/recovery
    /// conversations served; a `complete_batch` dispatch can carry several
    /// completions in one round trip).
    pub llm_calls: usize,
    /// Batched perception-operator call accounting of the run (rows walked,
    /// unique model calls, batches, calls saved by dedup).
    pub perception: caesura_core::PerceptionCalls,
    /// The execution error message, if execution failed.
    pub error: Option<String>,
}

/// The full evaluation of one model profile.
#[derive(Debug, Clone)]
pub struct EvaluationReport {
    /// Display name of the evaluated model.
    pub model: String,
    /// Per-query records, in benchmark order.
    pub results: Vec<QueryEvaluation>,
}

impl EvaluationReport {
    /// Accuracy (logical, physical) over the queries selected by `filter`.
    pub fn accuracy<F>(&self, filter: F) -> (f64, f64)
    where
        F: Fn(&QueryEvaluation) -> bool,
    {
        let selected: Vec<&QueryEvaluation> = self.results.iter().filter(|r| filter(r)).collect();
        if selected.is_empty() {
            return (0.0, 0.0);
        }
        let n = selected.len() as f64;
        let logical = selected.iter().filter(|r| r.grade.logical).count() as f64 / n;
        let physical = selected.iter().filter(|r| r.grade.physical).count() as f64 / n;
        (logical, physical)
    }

    /// Error counts per category (Table 2).
    pub fn error_counts(&self) -> BTreeMap<&'static str, usize> {
        let mut counts: BTreeMap<&'static str, usize> = BTreeMap::new();
        for category in ErrorCategory::all() {
            counts.insert(category.name(), 0);
        }
        for result in &self.results {
            if let Some(category) = result.category {
                *counts.entry(category.name()).or_insert(0) += 1;
            }
        }
        counts
    }

    /// Total LLM round trips across the benchmark.
    pub fn total_llm_calls(&self) -> usize {
        self.results.iter().map(|r| r.llm_calls).sum()
    }

    /// Total perception-operator model calls dispatched across the benchmark
    /// (after dedup and cache hits), and the calls dedup saved versus one
    /// call per row.
    pub fn total_perception_calls(&self) -> (usize, usize) {
        let dispatched = self.results.iter().map(|r| r.perception.calls).sum();
        let saved = self.results.iter().map(|r| r.perception.saved_calls).sum();
        (dispatched, saved)
    }

    /// Total unique perception requests served by the session-scoped answer
    /// cache instead of a backend dispatch (0 when the cache is disabled;
    /// the evaluation sessions run 48 queries each, so questions repeated
    /// across queries hit the cache).
    pub fn total_perception_cache_hits(&self) -> usize {
        self.results.iter().map(|r| r.perception.cache_hits).sum()
    }
}

/// Run the 48-query benchmark for one model profile.
pub fn evaluate_model(profile: ModelProfile, config: &EvaluationConfig) -> EvaluationReport {
    let artwork = generate_artwork(&config.artwork);
    let rotowire = generate_rotowire(&config.rotowire);
    let llm = Arc::new(SimulatedLlm::new(profile, config.seed));

    let artwork_session =
        Caesura::with_config(artwork.lake.clone(), llm.clone(), config.caesura.clone());
    let rotowire_session =
        Caesura::with_config(rotowire.lake.clone(), llm.clone(), config.caesura.clone());
    let artwork_known = known_identifiers(artwork.lake.catalog());
    let rotowire_known = known_identifiers(rotowire.lake.catalog());

    let mut results = Vec::new();
    for query in benchmark_queries() {
        let (session, known) = match query.dataset {
            Dataset::Artwork => (&artwork_session, &artwork_known),
            Dataset::Rotowire => (&rotowire_session, &rotowire_known),
        };
        let reference = reference_for(&query, &artwork, &rotowire);
        let run = session.run(query.text);
        let query_grade = grade(&query, &run, &reference, known);
        let category = classify(&query, &run, query_grade, known);
        results.push(QueryEvaluation {
            id: query.id.to_string(),
            text: query.text.to_string(),
            dataset: query.dataset,
            output: query.output,
            multimodal: query.multimodal,
            grade: query_grade,
            category,
            llm_calls: run.trace.llm_calls(),
            perception: run.trace.perception_calls(),
            error: run.output.err().map(|e| e.to_string()),
        });
    }

    EvaluationReport {
        model: profile.name().to_string(),
        results,
    }
}

/// Evaluate both paper models (ChatGPT-3.5 and GPT-4 profiles).
pub fn evaluate_both(config: &EvaluationConfig) -> Vec<EvaluationReport> {
    vec![
        evaluate_model(ModelProfile::ChatGpt35, config),
        evaluate_model(ModelProfile::Gpt4, config),
    ]
}

/// The reference answer of a query under the default evaluation data — exposed
/// so examples and tests can show expected answers without rerunning oracles.
pub fn reference_for_default(query: &BenchmarkQuery, config: &EvaluationConfig) -> Reference {
    let artwork = generate_artwork(&config.artwork);
    let rotowire = generate_rotowire(&config.rotowire);
    reference_for(query, &artwork, &rotowire)
}

/// Render Table 1 (plan quality) for a set of reports, in the layout of the
/// paper: one row per query group, logical/physical accuracy per model.
pub fn render_table1(reports: &[EvaluationReport]) -> String {
    let mut out = String::new();
    out.push_str(
        "Table 1: Correctly translated plans per dataset, modality, and output format\n\n",
    );
    // Header.
    out.push_str(&format!("{:<24}", "Models"));
    for report in reports {
        out.push_str(&format!("| {:^23} ", report.model));
    }
    out.push('\n');
    out.push_str(&format!("{:<24}", "Plan type"));
    for _ in reports {
        out.push_str(&format!("| {:>10} {:>12} ", "logical", "physical"));
    }
    out.push('\n');
    out.push_str(&"-".repeat(24 + reports.len() * 26));
    out.push('\n');

    type RowFilter = Box<dyn Fn(&QueryEvaluation) -> bool>;
    let rows: Vec<(&str, RowFilter)> = vec![
        (
            "Artwork overall",
            Box::new(|r: &QueryEvaluation| r.dataset == Dataset::Artwork),
        ),
        (
            "Rotowire overall",
            Box::new(|r: &QueryEvaluation| r.dataset == Dataset::Rotowire),
        ),
        (
            "Single modality",
            Box::new(|r: &QueryEvaluation| !r.multimodal),
        ),
        (
            "Multiple modalities",
            Box::new(|r: &QueryEvaluation| r.multimodal),
        ),
        (
            "Single value",
            Box::new(|r: &QueryEvaluation| r.output == ExpectedOutput::SingleValue),
        ),
        (
            "Table",
            Box::new(|r: &QueryEvaluation| r.output == ExpectedOutput::Table),
        ),
        (
            "Plot",
            Box::new(|r: &QueryEvaluation| r.output == ExpectedOutput::Plot),
        ),
        ("All", Box::new(|_: &QueryEvaluation| true)),
    ];
    for (label, filter) in rows {
        out.push_str(&format!("{label:<24}"));
        for report in reports {
            let (logical, physical) = report.accuracy(&filter);
            out.push_str(&format!(
                "| {:>9.1}% {:>11.1}% ",
                logical * 100.0,
                physical * 100.0
            ));
        }
        out.push('\n');
    }
    out
}

/// Render Table 2 (error analysis) for a set of reports.
pub fn render_table2(reports: &[EvaluationReport]) -> String {
    let mut out = String::new();
    out.push_str("Table 2: Number of mistakes per category\n\n");
    out.push_str(&format!("{:<28}{:<10}", "Category", "Phase"));
    for report in reports {
        out.push_str(&format!("{:>18}", report.model));
    }
    out.push('\n');
    out.push_str(&"-".repeat(38 + reports.len() * 18));
    out.push('\n');
    for category in ErrorCategory::all() {
        out.push_str(&format!(
            "{:<28}{:<10}",
            category.name(),
            if category.is_logical() {
                "logical"
            } else {
                "physical"
            }
        ));
        for report in reports {
            let count = report
                .error_counts()
                .get(category.name())
                .copied()
                .unwrap_or(0);
            out.push_str(&format!("{count:>18}"));
        }
        out.push('\n');
    }
    out
}

/// Render a per-query breakdown (useful for debugging and EXPERIMENTS.md).
pub fn render_per_query(report: &EvaluationReport) -> String {
    let mut out = String::new();
    out.push_str(&format!("Per-query results for {}\n", report.model));
    for result in &report.results {
        out.push_str(&format!(
            "  {:<4} {:<9} {:<12} logical={} physical={} {}\n",
            result.id,
            result.dataset.name(),
            result.output.name(),
            if result.grade.logical { "ok " } else { "ERR" },
            if result.grade.physical { "ok " } else { "ERR" },
            result
                .category
                .map(|c| format!("[{}]", c.name()))
                .unwrap_or_default(),
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gpt4_profile_translates_most_queries_correctly() {
        let config = EvaluationConfig::small();
        let report = evaluate_model(ModelProfile::Gpt4, &config);
        assert_eq!(report.results.len(), 48);
        let (logical, physical) = report.accuracy(|_| true);
        assert!(logical >= 0.80, "GPT-4 logical accuracy too low: {logical}");
        assert!(
            physical >= 0.70,
            "GPT-4 physical accuracy too low: {physical}"
        );
        // Physical correctness requires logical correctness in our grading.
        assert!(logical >= physical);
    }

    #[test]
    fn chatgpt35_profile_is_clearly_worse_than_gpt4() {
        let config = EvaluationConfig::small();
        let gpt4 = evaluate_model(ModelProfile::Gpt4, &config);
        let gpt35 = evaluate_model(ModelProfile::ChatGpt35, &config);
        let (gpt4_logical, gpt4_physical) = gpt4.accuracy(|_| true);
        let (gpt35_logical, gpt35_physical) = gpt35.accuracy(|_| true);
        assert!(gpt4_logical > gpt35_logical);
        assert!(gpt4_physical > gpt35_physical);
        // The dominant 3.5 error category is data misunderstanding (§4.3).
        let counts = gpt35.error_counts();
        let dm = counts.get("Data Misunderstanding").copied().unwrap_or(0);
        assert!(
            dm >= 2,
            "expected several data-misunderstanding errors, got {dm}"
        );
    }

    #[test]
    fn tables_render_with_all_rows_and_models() {
        let config = EvaluationConfig::small();
        let reports = vec![evaluate_model(ModelProfile::Gpt4, &config)];
        let table1 = render_table1(&reports);
        assert!(table1.contains("Artwork overall"));
        assert!(table1.contains("Multiple modalities"));
        assert!(table1.contains("All"));
        let table2 = render_table2(&reports);
        assert!(table2.contains("Data Misunderstanding"));
        assert!(table2.contains("Wrong Tool"));
        let per_query = render_per_query(&reports[0]);
        assert!(per_query.contains("A01"));
        assert!(per_query.contains("R24"));
    }
}
