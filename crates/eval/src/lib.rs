//! # caesura-eval
//!
//! The evaluation suite of the CAESURA reproduction: the 48-query benchmark of
//! §4.2 (24 queries per dataset; 16 single-value / 16 table / 16 plot; half
//! multi-modal), ground-truth oracles computed from the synthetic data
//! generators, logical / physical plan grading, the five-way error taxonomy of
//! §4.3, and the report generators that reproduce Table 1 and Table 2.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod errors;
pub mod grade;
pub mod oracle;
pub mod queries;
pub mod report;

pub use errors::{classify, ErrorCategory};
pub use grade::{
    grade, grade_logical, grade_physical, known_identifiers, matches_reference, Grade,
};
pub use oracle::{fieldwork_reference_for, reference_for, Reference};
pub use queries::{
    benchmark_queries, fieldwork_queries, BenchmarkQuery, Capability, Dataset, Expectation,
    ExpectedOutput, Tier,
};
pub use report::{
    evaluate_both, evaluate_fieldwork, evaluate_fieldwork_concurrent, evaluate_model,
    evaluate_model_concurrent, percentile, render_per_query, render_table1, render_table2,
    render_table3, EvaluationConfig, EvaluationReport, QueryEvaluation, ServingEvaluation,
};
