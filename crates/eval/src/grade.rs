//! Plan grading: logical-plan correctness (does the plan do the right kind of
//! processing?) and physical-plan correctness (did execution produce the right
//! answer?), mirroring the two columns of Table 1 in the paper.

use crate::oracle::Reference;
use crate::queries::BenchmarkQuery;
use caesura_core::{QueryOutput, QueryRun};
use caesura_engine::Table;
use caesura_llm::LogicalPlan;
use std::collections::BTreeSet;

/// The grade of one benchmark run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Grade {
    /// Whether the logical plan is correct.
    pub logical: bool,
    /// Whether the physical plan (i.e. the executed result) is correct.
    pub physical: bool,
}

/// Grade a run against its reference answer. `known_identifiers` is the set of
/// table and column names of the data lake, used to detect plans that
/// reference non-existent data ("Impossible Actions" in the paper's error
/// taxonomy).
pub fn grade(
    query: &BenchmarkQuery,
    run: &QueryRun,
    reference: &Reference,
    known_identifiers: &BTreeSet<String>,
) -> Grade {
    let logical = grade_logical(query, run.logical_plan.as_ref(), known_identifiers);
    // A physical plan can only be correct if it implements a correct logical
    // plan (Table 1 of the paper: physical accuracy never exceeds logical) —
    // an accidentally-right answer obtained from a flawed plan does not count.
    let physical = logical && grade_physical(query, run, reference);
    Grade { logical, physical }
}

/// Logical-plan correctness: the plan must exist, mention every required
/// capability (join / image / text / aggregate / filter / plot), and must not
/// reference columns that exist nowhere in the lake or in the plan itself.
pub fn grade_logical(
    query: &BenchmarkQuery,
    plan: Option<&LogicalPlan>,
    known_identifiers: &BTreeSet<String>,
) -> bool {
    let Some(plan) = plan else { return false };
    if plan.is_empty() {
        return false;
    }
    let capabilities = plan.mentioned_capabilities();
    for required in query.required {
        if !capabilities.iter().any(|c| c == required.label()) {
            return false;
        }
    }
    !references_unknown_columns(plan, known_identifiers)
}

/// Whether the plan references a column that neither the lake nor the plan
/// itself defines.
pub fn references_unknown_columns(plan: &LogicalPlan, known: &BTreeSet<String>) -> bool {
    // Identifiers the plan itself introduces (new columns, output tables).
    let mut plan_defined: BTreeSet<String> = BTreeSet::new();
    for step in &plan.steps {
        for column in &step.new_columns {
            plan_defined.insert(column.to_lowercase());
        }
        if !step.output.is_empty() {
            plan_defined.insert(step.output.to_lowercase());
        }
    }
    let is_known = |identifier: &str| {
        let id = identifier.to_lowercase();
        known.contains(&id) || plan_defined.contains(&id) || id.parse::<f64>().is_ok()
    };
    for step in &plan.steps {
        let description = &step.description;
        // Check "'x' column" references.
        for reference in column_references(description) {
            if !is_known(&reference) {
                return true;
            }
        }
        // The injected impossible-action marker is also treated as unknown.
        if description.contains("category_info") || description.contains("nonexistent_") {
            return true;
        }
    }
    false
}

/// The identifiers `x` appearing as `'x' column` in a step description.
fn column_references(description: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut rest = description;
    while let Some(start) = rest.find('\'') {
        let after = &rest[start + 1..];
        let Some(end) = after.find('\'') else { break };
        let span = &after[..end];
        let following = &after[end + 1..];
        if following.trim_start().starts_with("column") && !span.contains(' ') {
            out.push(span.to_string());
        }
        rest = following;
    }
    out
}

/// Physical-plan correctness: execution succeeded, produced the requested
/// output format, and the result matches the reference answer.
pub fn grade_physical(query: &BenchmarkQuery, run: &QueryRun, reference: &Reference) -> bool {
    let Ok(output) = &run.output else {
        return false;
    };
    if output.kind() != query.output.kind() {
        return false;
    }
    matches_reference(output, reference)
}

/// Whether an output matches a reference answer.
pub fn matches_reference(output: &QueryOutput, reference: &Reference) -> bool {
    match reference {
        Reference::Scalar(expected) => match output.as_value() {
            Some(actual) => values_equal(actual, expected),
            None => false,
        },
        Reference::KeyedNumbers(expected) => match output.table() {
            Some(table) => keyed_numbers_match(table, expected),
            None => false,
        },
        Reference::StringSet(expected) => match output.table() {
            Some(table) => string_set_matches(table, expected),
            None => false,
        },
    }
}

fn values_equal(actual: &caesura_engine::Value, expected: &caesura_engine::Value) -> bool {
    match (actual.as_float(), expected.as_float()) {
        (Some(a), Some(b)) => (a - b).abs() < 1e-6,
        _ => actual.to_string() == expected.to_string(),
    }
}

fn keyed_numbers_match(table: &Table, expected: &std::collections::BTreeMap<String, f64>) -> bool {
    if table.num_columns() < 2 {
        return false;
    }
    let mut actual = std::collections::BTreeMap::new();
    for row in table.rows() {
        let key = render_key(&row.get(0));
        let Some(value) = row.get(row.len() - 1).as_float() else {
            return false;
        };
        actual.insert(key, value);
    }
    if actual.len() != expected.len() {
        return false;
    }
    expected.iter().all(|(key, expected_value)| {
        actual
            .get(key)
            .map(|v| (v - expected_value).abs() < 1e-6)
            .unwrap_or(false)
    })
}

fn string_set_matches(table: &Table, expected: &BTreeSet<String>) -> bool {
    if table.num_columns() == 0 {
        return false;
    }
    // Prefer a column named 'title' or 'name' if present, otherwise the first.
    let column_index = table
        .schema()
        .fields()
        .iter()
        .position(|f| {
            let base = f.base_name().to_lowercase();
            base == "title" || base == "name"
        })
        .unwrap_or(0);
    let actual: BTreeSet<String> = table
        .rows()
        .map(|row| row.get(column_index).to_string())
        .collect();
    actual == *expected
}

fn render_key(value: &caesura_engine::Value) -> String {
    match value {
        caesura_engine::Value::Float(f) if f.fract() == 0.0 => format!("{}", *f as i64),
        other => other.to_string(),
    }
}

/// Collect every table and column name of a catalog (lowercased) — the known
/// identifiers a plan may legitimately reference.
pub fn known_identifiers(catalog: &caesura_engine::Catalog) -> BTreeSet<String> {
    let mut out = BTreeSet::new();
    for table in catalog.tables() {
        out.insert(table.name().to_lowercase());
        for field in table.schema().fields() {
            out.insert(field.name.to_lowercase());
            out.insert(field.base_name().to_lowercase());
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::queries::{benchmark_queries, Capability, Dataset, ExpectedOutput};
    use caesura_engine::{DataType, Schema, TableBuilder, Value};
    use caesura_llm::LogicalStep;

    fn query(id: &str) -> BenchmarkQuery {
        benchmark_queries()
            .into_iter()
            .find(|q| q.id == id)
            .unwrap()
    }

    fn known() -> BTreeSet<String> {
        [
            "paintings_metadata",
            "painting_images",
            "title",
            "inception",
            "movement",
            "img_path",
            "image",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect()
    }

    fn plan_with(descriptions: &[(&str, &[&str])]) -> LogicalPlan {
        LogicalPlan {
            thought: String::new(),
            steps: descriptions
                .iter()
                .enumerate()
                .map(|(i, (d, new))| {
                    LogicalStep::new(
                        i + 1,
                        *d,
                        vec![],
                        "out",
                        new.iter().map(|s| s.to_string()).collect(),
                    )
                })
                .collect(),
        }
    }

    #[test]
    fn logical_grading_requires_all_capabilities() {
        let q = query("A21"); // join + image + aggregate + plot
        let good = plan_with(&[
            ("Join the 'paintings_metadata' and 'painting_images' tables on the 'img_path' column.", &[]),
            ("Extract whether madonna is depicted in each image from the 'image' column.", &["madonna_depicted"]),
            ("Group the table by 'century' and count the number of rows.", &["num_paintings"]),
            ("Plot the result in a bar plot.", &[]),
        ]);
        // The plan references 'century' which it never defined and the lake does
        // not contain → treat it as defined by adding it as a new column.
        let good = {
            let mut plan = good;
            plan.steps[1].new_columns.push("century".into());
            plan
        };
        assert!(grade_logical(&q, Some(&good), &known()));

        // A plan that answers from the title column misses the image capability.
        let misunderstanding = plan_with(&[
            ("Join the 'paintings_metadata' and 'painting_images' tables on the 'img_path' column.", &[]),
            ("Select only the rows where the 'title' column contains 'madonna'.", &[]),
            ("Group the table by 'century' and count the number of rows.", &["num_paintings", "century"]),
            ("Plot the result in a bar plot.", &[]),
        ]);
        assert!(!grade_logical(&q, Some(&misunderstanding), &known()));
        assert!(!grade_logical(&q, None, &known()));
    }

    #[test]
    fn unknown_column_references_fail_logical_grading() {
        let q = BenchmarkQuery {
            id: "T1",
            dataset: Dataset::Artwork,
            text: "test",
            output: ExpectedOutput::Table,
            multimodal: false,
            required: &[Capability::Filter],
            tier: crate::queries::Tier::Clean,
            expectation: crate::queries::Expectation::Correct,
            corrupted: false,
        };
        let plan = plan_with(&[(
            "Select only the rows of the 'paintings_metadata' table where the 'category_colour' column equals 'red'.",
            &[],
        )]);
        assert!(references_unknown_columns(&plan, &known()));
        assert!(!grade_logical(&q, Some(&plan), &known()));
    }

    #[test]
    fn scalar_and_keyed_matching() {
        let reference = Reference::int(5);
        let output = QueryOutput::Value(Value::Int(5));
        assert!(matches_reference(&output, &reference));
        let output = QueryOutput::Value(Value::Float(5.0));
        assert!(matches_reference(&output, &reference));
        let output = QueryOutput::Value(Value::Int(4));
        assert!(!matches_reference(&output, &reference));

        let schema = Schema::from_pairs(&[("century", DataType::Int), ("n", DataType::Int)]);
        let mut b = TableBuilder::new("result", schema);
        b.push_row(vec![Value::Int(15), Value::Int(3)]).unwrap();
        b.push_row(vec![Value::Int(19), Value::Int(7)]).unwrap();
        let table = b.build();
        let reference = Reference::keyed(vec![("15", 3.0), ("19", 7.0)]);
        assert!(matches_reference(
            &QueryOutput::Table(table.clone()),
            &reference
        ));
        let wrong = Reference::keyed(vec![("15", 3.0), ("19", 8.0)]);
        assert!(!matches_reference(
            &QueryOutput::Table(table.clone()),
            &wrong
        ));
        let missing = Reference::keyed(vec![("15", 3.0)]);
        assert!(!matches_reference(&QueryOutput::Table(table), &missing));
    }

    #[test]
    fn string_set_matching_prefers_title_columns() {
        let schema = Schema::from_pairs(&[("inception", DataType::Str), ("title", DataType::Str)]);
        let mut b = TableBuilder::new("result", schema);
        b.push_values(["1889", "Madonna"]).unwrap();
        b.push_values(["1480", "Irises"]).unwrap();
        let table = b.build();
        let expected: BTreeSet<String> = ["Madonna", "Irises"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        assert!(matches_reference(
            &QueryOutput::Table(table),
            &Reference::StringSet(expected)
        ));
    }

    #[test]
    fn known_identifier_collection_includes_base_names() {
        let mut catalog = caesura_engine::Catalog::new();
        let schema = Schema::from_pairs(&[("teams.name", DataType::Str)]);
        catalog.register(TableBuilder::new("joined", schema).build());
        let known = known_identifiers(&catalog);
        assert!(known.contains("joined"));
        assert!(known.contains("teams.name"));
        assert!(known.contains("name"));
    }
}
