//! The evaluation workload: 48 natural-language queries (24 per dataset),
//! mirroring the structure of the paper's §4.2 — 16 queries asking for a
//! single value, 16 for a table, 16 for a plot; half requiring multi-modal
//! data, half answerable from the relational tables alone.
//!
//! On top of the paper workload, [`fieldwork_queries`] adds a third suite
//! over the fieldwork lake: 42 queries whose plans all chain three or more
//! steps across at least two modalities, including an **adversarial tier**
//! (impossible columns, data misunderstandings, missing plot steps, wrong
//! tools/arguments, corrupted cells, unanswerable questions) graded against
//! per-query [`Expectation`]s rather than plain answer equality.

use crate::errors::ErrorCategory;

/// The dataset a benchmark query runs against.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Dataset {
    /// Painting metadata + image corpus.
    Artwork,
    /// Basketball tables + textual game reports.
    Rotowire,
    /// Research stations + photo corpus + expedition-log reports + regions.
    Fieldwork,
}

impl Dataset {
    /// Display name used in reports.
    pub fn name(&self) -> &'static str {
        match self {
            Dataset::Artwork => "artwork",
            Dataset::Rotowire => "rotowire",
            Dataset::Fieldwork => "fieldwork",
        }
    }
}

/// The tier a benchmark query belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Tier {
    /// Well-posed queries over clean data.
    Clean,
    /// Queries designed to trip the planner, the mapper, or execution:
    /// impossible references, misleading phrasing, corrupted cells,
    /// unanswerable questions.
    Adversarial,
}

impl Tier {
    /// Display name used in reports.
    pub fn name(&self) -> &'static str {
        match self {
            Tier::Clean => "clean",
            Tier::Adversarial => "adversarial",
        }
    }
}

/// What a run of the query is expected to produce. Clean queries expect the
/// oracle answer; adversarial queries expect a *specific failure* — a typed
/// execution error or a particular error category — and are graded as met
/// only when that failure (and not some other one) occurs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Expectation {
    /// The run must produce the oracle answer (physical correctness).
    Correct,
    /// The run must fail execution with an error message containing this
    /// substring (e.g. the typed missing-image or dirty-cell errors).
    ExecutionError(&'static str),
    /// The run must be graded into exactly this error category.
    Category(ErrorCategory),
}

/// The output format a query asks for (the rows of Table 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExpectedOutput {
    /// A single scalar value.
    SingleValue,
    /// A result table.
    Table,
    /// A plot.
    Plot,
}

impl ExpectedOutput {
    /// Display name used in reports.
    pub fn name(&self) -> &'static str {
        match self {
            ExpectedOutput::SingleValue => "single value",
            ExpectedOutput::Table => "table",
            ExpectedOutput::Plot => "plot",
        }
    }

    /// The `QueryOutput::kind()` string this output corresponds to.
    pub fn kind(&self) -> &'static str {
        match self {
            ExpectedOutput::SingleValue => "value",
            ExpectedOutput::Table => "table",
            ExpectedOutput::Plot => "plot",
        }
    }
}

/// A capability a correct logical plan must exhibit (used for logical-plan
/// grading; the capability labels match
/// [`LogicalPlan::mentioned_capabilities`](caesura_llm::LogicalPlan::mentioned_capabilities)).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Capability {
    /// A join between two data sources.
    Join,
    /// Looking at image content.
    Image,
    /// Reading text documents.
    Text,
    /// Grouping / aggregation.
    Aggregate,
    /// Row selection.
    Filter,
    /// A final plot step.
    Plot,
}

impl Capability {
    /// The label used by `mentioned_capabilities`.
    pub fn label(&self) -> &'static str {
        match self {
            Capability::Join => "join",
            Capability::Image => "image",
            Capability::Text => "text",
            Capability::Aggregate => "aggregate",
            Capability::Filter => "filter",
            Capability::Plot => "plot",
        }
    }
}

/// One benchmark query.
#[derive(Debug, Clone)]
pub struct BenchmarkQuery {
    /// Stable identifier (e.g. `A21`, `R13`).
    pub id: &'static str,
    /// Which dataset it runs against.
    pub dataset: Dataset,
    /// The natural-language query text.
    pub text: &'static str,
    /// The expected output format.
    pub output: ExpectedOutput,
    /// Whether answering requires non-relational data.
    pub multimodal: bool,
    /// Capabilities a correct logical plan must mention.
    pub required: &'static [Capability],
    /// The tier the query belongs to (the 48 paper queries are all clean).
    pub tier: Tier,
    /// What a run of the query is expected to produce.
    pub expectation: Expectation,
    /// Whether the query runs against the corrupted (adversarial) lake
    /// variant instead of the clean one.
    pub corrupted: bool,
}

use Capability::*;
use Dataset::*;
use ExpectedOutput::*;

/// The full 48-query benchmark.
pub fn benchmark_queries() -> Vec<BenchmarkQuery> {
    let q = |id, dataset, text, output, multimodal, required| BenchmarkQuery {
        id,
        dataset,
        text,
        output,
        multimodal,
        required,
        tier: Tier::Clean,
        expectation: Expectation::Correct,
        corrupted: false,
    };
    vec![
        // ---- Artwork: single value, relational --------------------------------
        q(
            "A01",
            Artwork,
            "How many paintings are in the museum?",
            SingleValue,
            false,
            &[Aggregate],
        ),
        q(
            "A02",
            Artwork,
            "How many paintings belong to the Impressionism movement?",
            SingleValue,
            false,
            &[Filter, Aggregate],
        ),
        q(
            "A03",
            Artwork,
            "What is the earliest inception year of any painting?",
            SingleValue,
            false,
            &[Aggregate],
        ),
        q(
            "A04",
            Artwork,
            "How many paintings did Clara Moreau paint?",
            SingleValue,
            false,
            &[Filter, Aggregate],
        ),
        // ---- Artwork: single value, multi-modal -------------------------------
        q(
            "A05",
            Artwork,
            "How many paintings depict Madonna and Child?",
            SingleValue,
            true,
            &[Join, Image, Aggregate],
        ),
        q(
            "A06",
            Artwork,
            "How many paintings depict at least two swords?",
            SingleValue,
            true,
            &[Join, Image, Aggregate],
        ),
        q(
            "A07",
            Artwork,
            "What is the maximum number of dogs depicted in any painting?",
            SingleValue,
            true,
            &[Join, Image, Aggregate],
        ),
        q(
            "A08",
            Artwork,
            "How many paintings of the Baroque movement depict a skull?",
            SingleValue,
            true,
            &[Join, Image, Filter, Aggregate],
        ),
        // ---- Artwork: table, relational ----------------------------------------
        q(
            "A09",
            Artwork,
            "For each movement, how many paintings are there?",
            Table,
            false,
            &[Aggregate],
        ),
        q(
            "A10",
            Artwork,
            "List the title and artist of all paintings of the Renaissance movement.",
            Table,
            false,
            &[Filter],
        ),
        q(
            "A11",
            Artwork,
            "For each artist, what is the earliest year they painted a painting?",
            Table,
            false,
            &[Aggregate],
        ),
        q(
            "A12",
            Artwork,
            "For each genre, how many paintings are there?",
            Table,
            false,
            &[Aggregate],
        ),
        // ---- Artwork: table, multi-modal ---------------------------------------
        q(
            "A13",
            Artwork,
            "For each century, how many paintings depict Madonna and Child?",
            Table,
            true,
            &[Join, Image, Aggregate],
        ),
        q(
            "A14",
            Artwork,
            "List the titles of all paintings that depict a horse.",
            Table,
            true,
            &[Join, Image, Filter],
        ),
        q(
            "A15",
            Artwork,
            "For each movement, what is the maximum number of flowers depicted in a painting?",
            Table,
            true,
            &[Join, Image, Aggregate],
        ),
        q(
            "A16",
            Artwork,
            "List the title and inception of the paintings that depict a crown.",
            Table,
            true,
            &[Join, Image, Filter],
        ),
        // ---- Artwork: plot, relational -----------------------------------------
        q(
            "A17",
            Artwork,
            "Plot the number of paintings for each movement.",
            ExpectedOutput::Plot,
            false,
            &[Aggregate, Capability::Plot],
        ),
        q(
            "A18",
            Artwork,
            "Plot the number of paintings for each genre.",
            ExpectedOutput::Plot,
            false,
            &[Aggregate, Capability::Plot],
        ),
        q(
            "A19",
            Artwork,
            "Plot the number of paintings for each century.",
            ExpectedOutput::Plot,
            false,
            &[Aggregate, Capability::Plot],
        ),
        q(
            "A20",
            Artwork,
            "Plot the number of paintings painted by each artist.",
            ExpectedOutput::Plot,
            false,
            &[Aggregate, Capability::Plot],
        ),
        // ---- Artwork: plot, multi-modal ----------------------------------------
        q(
            "A21",
            Artwork,
            "Plot the number of paintings depicting Madonna and Child for each century!",
            ExpectedOutput::Plot,
            true,
            &[Join, Image, Aggregate, Capability::Plot],
        ),
        q(
            "A22",
            Artwork,
            "Plot the maximum number of swords depicted on the paintings of each century.",
            ExpectedOutput::Plot,
            true,
            &[Join, Image, Aggregate, Capability::Plot],
        ),
        q(
            "A23",
            Artwork,
            "Plot the number of paintings that depict an angel for each movement.",
            ExpectedOutput::Plot,
            true,
            &[Join, Image, Aggregate, Capability::Plot],
        ),
        q(
            "A24",
            Artwork,
            "Plot the average number of birds depicted in the paintings of each genre.",
            ExpectedOutput::Plot,
            true,
            &[Join, Image, Aggregate, Capability::Plot],
        ),
        // ---- Rotowire: single value, relational --------------------------------
        q(
            "R01",
            Rotowire,
            "How many teams are in the Eastern conference?",
            SingleValue,
            false,
            &[Filter, Aggregate],
        ),
        q(
            "R02",
            Rotowire,
            "What is the height of the tallest player?",
            SingleValue,
            false,
            &[Aggregate],
        ),
        q(
            "R03",
            Rotowire,
            "How many players are from the USA?",
            SingleValue,
            false,
            &[Filter, Aggregate],
        ),
        q(
            "R04",
            Rotowire,
            "How many teams are there?",
            SingleValue,
            false,
            &[Aggregate],
        ),
        // ---- Rotowire: single value, multi-modal -------------------------------
        q(
            "R05",
            Rotowire,
            "What is the highest number of points the Heat scored in a game?",
            SingleValue,
            true,
            &[Join, Text, Aggregate],
        ),
        q(
            "R06",
            Rotowire,
            "How many games did the Heat win?",
            SingleValue,
            true,
            &[Join, Text, Aggregate],
        ),
        q(
            "R07",
            Rotowire,
            "What is the average number of points the Bulls scored in their games?",
            SingleValue,
            true,
            &[Join, Text, Aggregate],
        ),
        q(
            "R08",
            Rotowire,
            "How many games did the Lakers lose?",
            SingleValue,
            true,
            &[Join, Text, Aggregate],
        ),
        // ---- Rotowire: table, relational ---------------------------------------
        q(
            "R09",
            Rotowire,
            "For each conference, how many teams are there?",
            Table,
            false,
            &[Aggregate],
        ),
        q(
            "R10",
            Rotowire,
            "List the name and height of all players of the Heat team.",
            Table,
            false,
            &[Filter],
        ),
        q(
            "R11",
            Rotowire,
            "For each division, how many teams are there?",
            Table,
            false,
            &[Aggregate],
        ),
        q(
            "R12",
            Rotowire,
            "For each position, what is the average height of the players?",
            Table,
            false,
            &[Aggregate],
        ),
        // ---- Rotowire: table, multi-modal --------------------------------------
        q(
            "R13",
            Rotowire,
            "For every team, what is the highest number of points they scored in a game?",
            Table,
            true,
            &[Join, Text, Aggregate],
        ),
        q(
            "R14",
            Rotowire,
            "For each team, what is the average number of points they scored in their games?",
            Table,
            true,
            &[Join, Text, Aggregate],
        ),
        q(
            "R15",
            Rotowire,
            "How many games did each team lose?",
            Table,
            true,
            &[Join, Text, Aggregate],
        ),
        q(
            "R16",
            Rotowire,
            "For each team, how many games did they win?",
            Table,
            true,
            &[Join, Text, Aggregate],
        ),
        // ---- Rotowire: plot, relational ----------------------------------------
        q(
            "R17",
            Rotowire,
            "Plot the number of teams for each conference.",
            ExpectedOutput::Plot,
            false,
            &[Aggregate, Capability::Plot],
        ),
        q(
            "R18",
            Rotowire,
            "Plot the average height of the players for each position.",
            ExpectedOutput::Plot,
            false,
            &[Aggregate, Capability::Plot],
        ),
        q(
            "R19",
            Rotowire,
            "Plot the number of players for each nationality.",
            ExpectedOutput::Plot,
            false,
            &[Aggregate, Capability::Plot],
        ),
        q(
            "R20",
            Rotowire,
            "Plot the number of teams for each division.",
            ExpectedOutput::Plot,
            false,
            &[Aggregate, Capability::Plot],
        ),
        // ---- Rotowire: plot, multi-modal ---------------------------------------
        q(
            "R21",
            Rotowire,
            "Plot the highest number of points scored by each team.",
            ExpectedOutput::Plot,
            true,
            &[Join, Text, Aggregate, Capability::Plot],
        ),
        q(
            "R22",
            Rotowire,
            "Plot the average number of points scored by each team.",
            ExpectedOutput::Plot,
            true,
            &[Join, Text, Aggregate, Capability::Plot],
        ),
        q(
            "R23",
            Rotowire,
            "Plot the number of games won by each team.",
            ExpectedOutput::Plot,
            true,
            &[Join, Text, Aggregate, Capability::Plot],
        ),
        q(
            "R24",
            Rotowire,
            "Plot the number of games lost by each team.",
            ExpectedOutput::Plot,
            true,
            &[Join, Text, Aggregate, Capability::Plot],
        ),
    ]
}

/// The 42-query fieldwork suite: every query chains at least three plan
/// steps spanning at least two modalities (relational + image, relational +
/// text, or all three). `F01`–`F28` are the clean tier; `F29`–`F42` are the
/// adversarial tier, graded against their [`Expectation`]s.
pub fn fieldwork_queries() -> Vec<BenchmarkQuery> {
    let clean = |id, text, output, required| BenchmarkQuery {
        id,
        dataset: Fieldwork,
        text,
        output,
        multimodal: true,
        required,
        tier: Tier::Clean,
        expectation: Expectation::Correct,
        corrupted: false,
    };
    let adv = |id, text, output, required, expectation, corrupted| BenchmarkQuery {
        id,
        dataset: Fieldwork,
        text,
        output,
        multimodal: true,
        required,
        tier: Tier::Adversarial,
        expectation,
        corrupted,
    };
    use ErrorCategory::*;
    vec![
        // ---- Clean: relational + image ----------------------------------------
        clean(
            "F01",
            "Plot the number of station photos depicting a penguin for each region!",
            ExpectedOutput::Plot,
            &[Join, Image, Aggregate, Capability::Plot],
        ),
        clean(
            "F02",
            "Plot the number of station photos depicting a husky for each terrain!",
            ExpectedOutput::Plot,
            &[Join, Image, Aggregate, Capability::Plot],
        ),
        clean(
            "F03",
            "What is the maximum number of tents depicted in the station photos of each terrain?",
            Table,
            &[Join, Image, Aggregate],
        ),
        clean(
            "F04",
            "What is the maximum number of seals depicted in the station photos of each region?",
            Table,
            &[Join, Image, Aggregate],
        ),
        clean(
            "F05",
            "What is the average number of flags depicted in the station photos of each region?",
            Table,
            &[Join, Image, Aggregate],
        ),
        clean(
            "F06",
            "How many station photos depict a seal?",
            SingleValue,
            &[Join, Image, Aggregate],
        ),
        clean(
            "F07",
            "How many station photos depict at least 2 penguins?",
            SingleValue,
            &[Join, Image, Aggregate],
        ),
        clean(
            "F08",
            "Plot the number of station photos depicting an antenna for each century!",
            ExpectedOutput::Plot,
            &[Join, Image, Aggregate, Capability::Plot],
        ),
        clean(
            "F09",
            "How many station photos depict a sledge?",
            SingleValue,
            &[Join, Image, Aggregate],
        ),
        clean(
            "F10",
            "What is the minimum number of crates depicted in the station photos of each region?",
            Table,
            &[Join, Image, Aggregate],
        ),
        clean(
            "F11",
            "Plot the maximum number of lanterns depicted in the station photos of each climate!",
            ExpectedOutput::Plot,
            &[Join, Image, Aggregate, Capability::Plot],
        ),
        clean(
            "F12",
            "How many station photos depict a kayak?",
            SingleValue,
            &[Join, Image, Aggregate],
        ),
        // ---- Clean: relational + text -----------------------------------------
        clean(
            "F13",
            "What is the maximum number of specimens collected by each station?",
            Table,
            &[Join, Text, Aggregate],
        ),
        clean(
            "F14",
            "What is the average number of readings logged by each station?",
            Table,
            &[Join, Text, Aggregate],
        ),
        clean(
            "F15",
            "What is the maximum number of samples stored by each station?",
            Table,
            &[Join, Text, Aggregate],
        ),
        clean(
            "F16",
            "Plot the average number of specimens collected by each station!",
            ExpectedOutput::Plot,
            &[Join, Text, Aggregate, Capability::Plot],
        ),
        clean(
            "F17",
            "What is the minimum number of readings logged by each station?",
            Table,
            &[Join, Text, Aggregate],
        ),
        clean(
            "F18",
            "What is the maximum number of specimens collected by each region?",
            Table,
            &[Join, Text, Aggregate],
        ),
        clean(
            "F19",
            "What is the average number of samples stored by each climate?",
            Table,
            &[Join, Text, Aggregate],
        ),
        clean(
            "F20",
            "Plot the maximum number of readings logged by each station!",
            ExpectedOutput::Plot,
            &[Join, Text, Aggregate, Capability::Plot],
        ),
        clean(
            "F21",
            "What is the average number of specimens collected by each terrain?",
            Table,
            &[Join, Text, Aggregate],
        ),
        clean(
            "F22",
            "Plot the minimum number of samples stored by each station!",
            ExpectedOutput::Plot,
            &[Join, Text, Aggregate, Capability::Plot],
        ),
        // ---- Clean: all three modalities --------------------------------------
        clean(
            "F23",
            "What is the maximum number of specimens collected by each station with photos depicting a husky?",
            Table,
            &[Join, Image, Text, Aggregate],
        ),
        clean(
            "F24",
            "What is the average number of readings logged by each station with photos depicting a penguin?",
            Table,
            &[Join, Image, Text, Aggregate],
        ),
        clean(
            "F25",
            "What is the maximum number of samples stored by each station in the Westfjord region?",
            Table,
            &[Join, Text, Filter, Aggregate],
        ),
        clean(
            "F26",
            "What is the average number of specimens collected by each station on the Tundra terrain?",
            Table,
            &[Join, Text, Filter, Aggregate],
        ),
        clean(
            "F27",
            "What is the maximum number of penguins depicted in the station photos of each century?",
            Table,
            &[Join, Image, Aggregate],
        ),
        clean(
            "F28",
            "Plot the number of station photos depicting a crate for each climate!",
            ExpectedOutput::Plot,
            &[Join, Image, Aggregate, Capability::Plot],
        ),
        // ---- Adversarial: impossible actions ----------------------------------
        adv(
            "F29",
            "Using the catalog code, how many seals are depicted in the station photos?",
            SingleValue,
            &[Join, Image, Aggregate],
            Expectation::Category(ImpossibleActions),
            false,
        ),
        adv(
            "F30",
            "Using the catalog code, what is the maximum number of tents depicted in the station photos of each region?",
            Table,
            &[Join, Image, Aggregate],
            Expectation::Category(ImpossibleActions),
            false,
        ),
        // ---- Adversarial: data misunderstanding -------------------------------
        adv(
            "F31",
            "How many penguins are depicted in the photo archive of each station?",
            Table,
            &[Join, Image, Aggregate],
            Expectation::Category(DataMisunderstanding),
            false,
        ),
        adv(
            "F32",
            "What is the maximum number of seals depicted in the photo archive of each terrain?",
            Table,
            &[Join, Image, Aggregate],
            Expectation::Category(DataMisunderstanding),
            false,
        ),
        // ---- Adversarial: illogical / missing steps ---------------------------
        adv(
            "F33",
            "Graph the number of station photos depicting a flag for each region!",
            ExpectedOutput::Plot,
            &[Join, Image, Aggregate, Capability::Plot],
            Expectation::Category(IllogicalMissingSteps),
            false,
        ),
        adv(
            "F34",
            "Graph the maximum number of specimens collected by each station!",
            ExpectedOutput::Plot,
            &[Join, Text, Aggregate, Capability::Plot],
            Expectation::Category(IllogicalMissingSteps),
            false,
        ),
        // ---- Adversarial: wrong tool ------------------------------------------
        adv(
            "F35",
            "As recorded in the station ledger, what is the maximum number of readings logged by each station?",
            Table,
            &[Join, Text, Aggregate],
            Expectation::Category(WrongTool),
            false,
        ),
        adv(
            "F36",
            "As recorded in the station ledger, what is the average number of specimens collected by each region?",
            Table,
            &[Join, Text, Aggregate],
            Expectation::Category(WrongTool),
            false,
        ),
        // ---- Adversarial: wrong arguments -------------------------------------
        adv(
            "F37",
            "According to the field guide, what is the average number of samples stored by each station?",
            Table,
            &[Join, Text, Aggregate],
            Expectation::Category(WrongArguments),
            false,
        ),
        adv(
            "F38",
            "According to the field guide, what is the maximum number of specimens collected by each station?",
            Table,
            &[Join, Text, Aggregate],
            Expectation::Category(WrongArguments),
            false,
        ),
        // ---- Adversarial: corrupted lake (typed execution errors) -------------
        adv(
            "F39",
            "What is the maximum number of penguins depicted in the station photos of each region?",
            Table,
            &[Join, Image, Aggregate],
            Expectation::ExecutionError("not found in the image store"),
            true,
        ),
        adv(
            "F40",
            "How many station photos depict a tent?",
            SingleValue,
            &[Join, Image, Aggregate],
            Expectation::ExecutionError("not found in the image store"),
            true,
        ),
        adv(
            "F41",
            "What is the minimum number of specimens collected by each station?",
            Table,
            &[Join, Text, Aggregate],
            Expectation::ExecutionError("TEXT document"),
            true,
        ),
        // ---- Adversarial: unanswerable (never-depicted entity) ----------------
        adv(
            "F42",
            "What is the maximum number of dragons depicted in the station photos of each terrain?",
            Table,
            &[Join, Image, Aggregate],
            Expectation::Correct,
            false,
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn the_benchmark_matches_the_papers_workload_structure() {
        let queries = benchmark_queries();
        assert_eq!(queries.len(), 48);
        assert_eq!(queries.iter().filter(|q| q.dataset == Artwork).count(), 24);
        assert_eq!(queries.iter().filter(|q| q.dataset == Rotowire).count(), 24);
        assert_eq!(
            queries.iter().filter(|q| q.output == SingleValue).count(),
            16
        );
        assert_eq!(queries.iter().filter(|q| q.output == Table).count(), 16);
        assert_eq!(
            queries
                .iter()
                .filter(|q| q.output == ExpectedOutput::Plot)
                .count(),
            16
        );
        assert_eq!(queries.iter().filter(|q| q.multimodal).count(), 24);
        assert_eq!(queries.iter().filter(|q| !q.multimodal).count(), 24);
    }

    #[test]
    fn ids_are_unique_and_multimodal_queries_require_a_modality_capability() {
        let queries = benchmark_queries();
        let mut ids: Vec<&str> = queries.iter().map(|q| q.id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 48);
        for query in &queries {
            if query.multimodal {
                assert!(
                    query.required.contains(&Capability::Image)
                        || query.required.contains(&Capability::Text),
                    "{} is multi-modal but requires no modality capability",
                    query.id
                );
            }
            if query.output == ExpectedOutput::Plot {
                assert!(query.required.contains(&Capability::Plot));
            }
        }
    }

    #[test]
    fn capability_labels_are_stable() {
        assert_eq!(Capability::Join.label(), "join");
        assert_eq!(Capability::Image.label(), "image");
        assert_eq!(ExpectedOutput::Plot.kind(), "plot");
        assert_eq!(Dataset::Artwork.name(), "artwork");
        assert_eq!(Dataset::Fieldwork.name(), "fieldwork");
        assert_eq!(Tier::Adversarial.name(), "adversarial");
    }

    #[test]
    fn the_paper_benchmark_is_entirely_clean_tier() {
        for query in benchmark_queries() {
            assert_eq!(query.tier, Tier::Clean);
            assert_eq!(query.expectation, Expectation::Correct);
            assert!(!query.corrupted);
        }
    }

    #[test]
    fn fieldwork_suite_has_the_required_structure() {
        let queries = fieldwork_queries();
        assert_eq!(queries.len(), 42);
        let adversarial = queries
            .iter()
            .filter(|q| q.tier == Tier::Adversarial)
            .count();
        assert!(adversarial >= 12, "only {adversarial} adversarial queries");
        let mut ids: Vec<&str> = queries.iter().map(|q| q.id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 42);
        for query in &queries {
            assert_eq!(query.dataset, Dataset::Fieldwork);
            assert!(query.id.starts_with('F'));
            assert!(query.multimodal);
            // Every fieldwork query spans at least two modalities: a join plus
            // at least one perception capability.
            assert!(query.required.contains(&Capability::Join), "{}", query.id);
            assert!(
                query.required.contains(&Capability::Image)
                    || query.required.contains(&Capability::Text),
                "{} requires no modality capability",
                query.id
            );
            if query.corrupted {
                assert!(matches!(query.expectation, Expectation::ExecutionError(_)));
            }
            if query.tier == Tier::Clean {
                assert_eq!(query.expectation, Expectation::Correct);
            }
        }
    }

    #[test]
    fn every_error_category_is_expected_by_some_adversarial_query() {
        let queries = fieldwork_queries();
        for category in ErrorCategory::all() {
            assert!(
                queries
                    .iter()
                    .any(|q| q.expectation == Expectation::Category(*category)),
                "no adversarial query expects {}",
                category.name()
            );
        }
    }
}
