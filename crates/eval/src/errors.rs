//! Error categorization: assign each failed query to one of the five mistake
//! categories of Table 2 in the paper.

use crate::grade::{references_unknown_columns, Grade};
use crate::queries::{BenchmarkQuery, Capability};
use caesura_core::QueryRun;
use caesura_modal::OperatorKind;
use std::collections::BTreeSet;

/// The error taxonomy of Table 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ErrorCategory {
    /// The plan asks for something impossible (e.g. a non-existent column).
    ImpossibleActions,
    /// The model misunderstood the data (e.g. answered image questions from
    /// metadata columns, or ignored the text reports).
    DataMisunderstanding,
    /// Steps are missing or ordered illogically (e.g. a forgotten join).
    IllogicalMissingSteps,
    /// The operator arguments were wrong (wrong SQL parameters, wrong QA
    /// question, non-existent column names).
    WrongArguments,
    /// The wrong physical operator was chosen for a step.
    WrongTool,
}

impl ErrorCategory {
    /// All categories in the order Table 2 lists them.
    pub fn all() -> &'static [ErrorCategory] {
        &[
            ErrorCategory::ImpossibleActions,
            ErrorCategory::DataMisunderstanding,
            ErrorCategory::IllogicalMissingSteps,
            ErrorCategory::WrongArguments,
            ErrorCategory::WrongTool,
        ]
    }

    /// Display name (matching the paper's wording).
    pub fn name(&self) -> &'static str {
        match self {
            ErrorCategory::ImpossibleActions => "Impossible Actions",
            ErrorCategory::DataMisunderstanding => "Data Misunderstanding",
            ErrorCategory::IllogicalMissingSteps => "Illogical / Missing Steps",
            ErrorCategory::WrongArguments => "Wrong Arguments",
            ErrorCategory::WrongTool => "Wrong Tool",
        }
    }

    /// Whether the mistake happened in the planning phase (upper half of
    /// Table 2) or the mapping phase (lower half).
    pub fn is_logical(&self) -> bool {
        matches!(
            self,
            ErrorCategory::ImpossibleActions
                | ErrorCategory::DataMisunderstanding
                | ErrorCategory::IllogicalMissingSteps
        )
    }
}

/// Categorize a failed run. Returns `None` for fully correct runs.
pub fn classify(
    query: &BenchmarkQuery,
    run: &QueryRun,
    grade: Grade,
    known_identifiers: &BTreeSet<String>,
) -> Option<ErrorCategory> {
    if grade.logical && grade.physical {
        return None;
    }

    if !grade.logical {
        let Some(plan) = &run.logical_plan else {
            return Some(ErrorCategory::IllogicalMissingSteps);
        };
        let capabilities = plan.mentioned_capabilities();
        let has = |cap: Capability| capabilities.iter().any(|c| c == cap.label());
        // Missing modality on a multi-modal query → the model tried to answer
        // from the relational metadata alone.
        let needs_image = query.required.contains(&Capability::Image);
        let needs_text = query.required.contains(&Capability::Text);
        if (needs_image && !has(Capability::Image)) || (needs_text && !has(Capability::Text)) {
            return Some(ErrorCategory::DataMisunderstanding);
        }
        if references_unknown_columns(plan, known_identifiers) {
            return Some(ErrorCategory::ImpossibleActions);
        }
        return Some(ErrorCategory::IllogicalMissingSteps);
    }

    // Logical plan fine but execution / result wrong → mapping-phase mistake.
    let multimodal_step_mapped_to_sql = run.decisions.iter().any(|decision| {
        let sql_like = matches!(
            decision.operator,
            OperatorKind::Sql
                | OperatorKind::SqlJoin
                | OperatorKind::SqlSelection
                | OperatorKind::SqlAggregation
        );
        if !sql_like {
            return false;
        }
        // Find the logical step this decision belongs to and check whether it
        // talks about images or reports.
        run.logical_plan
            .as_ref()
            .and_then(|plan| plan.steps.iter().find(|s| s.number == decision.step_number))
            .map(|step| {
                let d = step.description.to_lowercase();
                d.contains("'image' column") || d.contains("'report' column")
            })
            .unwrap_or(false)
    });
    if multimodal_step_mapped_to_sql {
        return Some(ErrorCategory::WrongTool);
    }
    Some(ErrorCategory::WrongArguments)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grade::Grade;
    use crate::queries::benchmark_queries;
    use caesura_core::{CoreError, ExecutionTrace};
    use caesura_llm::{LogicalPlan, LogicalStep, OperatorDecision};

    fn query(id: &str) -> BenchmarkQuery {
        benchmark_queries()
            .into_iter()
            .find(|q| q.id == id)
            .unwrap()
    }

    fn run_with(plan: Option<LogicalPlan>, decisions: Vec<OperatorDecision>) -> QueryRun {
        QueryRun {
            query: "test".into(),
            logical_plan: plan,
            decisions,
            output: Err(CoreError::PlanningFailed {
                message: "test".into(),
            }),
            trace: ExecutionTrace::new(),
        }
    }

    fn known() -> BTreeSet<String> {
        ["paintings_metadata", "title", "image"]
            .iter()
            .map(|s| s.to_string())
            .collect()
    }

    #[test]
    fn correct_runs_are_not_categorized() {
        let q = query("A01");
        let run = run_with(None, vec![]);
        assert_eq!(
            classify(
                &q,
                &run,
                Grade {
                    logical: true,
                    physical: true
                },
                &known()
            ),
            None
        );
    }

    #[test]
    fn missing_modality_is_data_misunderstanding() {
        let q = query("A05"); // requires Image
        let plan = LogicalPlan {
            thought: String::new(),
            steps: vec![LogicalStep::new(
                1,
                "Select only the rows where the 'title' column contains 'madonna'.",
                vec![],
                "out",
                vec![],
            )],
        };
        let run = run_with(Some(plan), vec![]);
        assert_eq!(
            classify(
                &q,
                &run,
                Grade {
                    logical: false,
                    physical: false
                },
                &known()
            ),
            Some(ErrorCategory::DataMisunderstanding)
        );
    }

    #[test]
    fn unknown_columns_are_impossible_actions() {
        let q = query("A01"); // only requires Aggregate
        let plan = LogicalPlan {
            thought: String::new(),
            steps: vec![LogicalStep::new(
                1,
                "Group the 'paintings_metadata' table by the 'category_info' column and count the number of rows.",
                vec![],
                "out",
                vec![],
            )],
        };
        let run = run_with(Some(plan), vec![]);
        assert_eq!(
            classify(
                &q,
                &run,
                Grade {
                    logical: false,
                    physical: false
                },
                &known()
            ),
            Some(ErrorCategory::ImpossibleActions)
        );
    }

    #[test]
    fn sql_on_an_image_step_is_wrong_tool_otherwise_wrong_arguments() {
        let q = query("A05");
        let plan = LogicalPlan {
            thought: String::new(),
            steps: vec![LogicalStep::new(
                2,
                "Extract whether madonna is depicted in each image from the 'image' column in the 'joined_table' table.",
                vec![],
                "joined_table",
                vec!["madonna_depicted".into()],
            )],
        };
        let wrong_tool_decision = OperatorDecision {
            step_number: 2,
            reasoning: String::new(),
            operator: OperatorKind::Sql,
            arguments: vec!["SELECT * FROM joined_table".into()],
        };
        let run = run_with(Some(plan.clone()), vec![wrong_tool_decision]);
        assert_eq!(
            classify(
                &q,
                &run,
                Grade {
                    logical: true,
                    physical: false
                },
                &known()
            ),
            Some(ErrorCategory::WrongTool)
        );

        let ok_decision = OperatorDecision {
            step_number: 2,
            reasoning: String::new(),
            operator: OperatorKind::VisualQa,
            arguments: vec![
                "image".into(),
                "x".into(),
                "How many objects are depicted?".into(),
            ],
        };
        let run = run_with(Some(plan), vec![ok_decision]);
        assert_eq!(
            classify(
                &q,
                &run,
                Grade {
                    logical: true,
                    physical: false
                },
                &known()
            ),
            Some(ErrorCategory::WrongArguments)
        );
    }

    #[test]
    fn category_metadata() {
        assert!(ErrorCategory::DataMisunderstanding.is_logical());
        assert!(!ErrorCategory::WrongTool.is_logical());
        assert_eq!(ErrorCategory::all().len(), 5);
        assert_eq!(ErrorCategory::WrongArguments.name(), "Wrong Arguments");
    }
}
