//! # CAESURA-RS
//!
//! A Rust reproduction of **"CAESURA: Language Models as Multi-Modal Query
//! Planners"** (CIDR 2024): a query planner that translates natural-language
//! queries over multi-modal data lakes (tables + images + text documents) into
//! executable plans mixing relational operators with VisualQA, TextQA,
//! Python-UDF, and Plot operators.
//!
//! This crate is a thin facade that re-exports the workspace crates:
//!
//! * [`engine`] — the in-memory relational engine (the SQLite substitute),
//! * [`modal`] — annotated images / documents and the simulated perception
//!   models (the BLIP-2 / BART substitutes), the transform DSL and plotting,
//! * [`llm`] — prompts, the plan grammar, and the simulated GPT-4 /
//!   ChatGPT-3.5 backends,
//! * [`data`] — the synthetic artwork and rotowire data lakes,
//! * [`core`] — the CAESURA planner itself (discovery, planning, mapping,
//!   interleaved execution, error recovery),
//! * [`eval`] — the 48-query benchmark, grading, and Table 1/2 reports,
//! * [`store`] — the crash-safe on-disk KV store backing the optional
//!   durable tier under the perception and plan caches.
//!
//! ## Quickstart
//!
//! ```
//! use caesura::prelude::*;
//! use std::sync::Arc;
//!
//! let data = generate_artwork(&ArtworkConfig::small());
//! let caesura = Caesura::new(data.lake, Arc::new(SimulatedLlm::gpt4()));
//! let output = caesura
//!     .query("How many paintings depict Madonna and Child?")
//!     .unwrap();
//! assert_eq!(output.kind(), "value");
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub use caesura_core as core;
pub use caesura_data as data;
pub use caesura_engine as engine;
pub use caesura_eval as eval;
pub use caesura_llm as llm;
pub use caesura_modal as modal;
pub use caesura_store as store;

/// The most commonly used types, re-exported for convenience.
pub mod prelude {
    pub use caesura_core::{
        AdmissionError, Caesura, CaesuraConfig, CoreError, Priority, QueryHandle, QueryOutput,
        QueryRun, QueryStatus, ServingStats, SubmitOptions, TenantServingStats,
    };
    pub use caesura_data::{
        generate_artwork, generate_fieldwork, generate_rotowire, ArtworkConfig, DataLake,
        FieldworkConfig, RotowireConfig,
    };
    pub use caesura_engine::{Catalog, DataType, Schema, Table, TableBuilder, Value};
    pub use caesura_llm::{LlmClient, ModelProfile, SimulatedLlm};
    pub use caesura_modal::{OperatorKind, Plot, PlotKind};
}
